//! Quickstart: the smallest complete ViewSeeker session.
//!
//! Builds a synthetic dataset, carves out a query subset, and runs the
//! interactive loop with a scripted "user" until the recommendation
//! stabilizes. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use viewseeker::prelude::*;

fn main() {
    // 1. A dataset: 7 categorical dimensions (a0..a6), 8 numeric measures
    //    (m0..m7), with planted dimension→measure correlations.
    let table = generate_diab(&DiabConfig::small(10_000, 42)).expect("generate dataset");
    println!(
        "dataset: {} rows, dimensions {:?}, measures {:?}",
        table.row_count(),
        table.dimension_names(),
        table.measure_names()
    );

    // 2. The exploration subset DQ: one cohort of records.
    let query = SelectQuery::new(Predicate::eq("a0", "a0_v0"));
    let dq = query.execute(&table).expect("execute query");
    println!(
        "query selects {} rows ({:.1}% of the data)\n",
        dq.len(),
        100.0 * dq.len() as f64 / table.row_count() as f64
    );

    // 3. Start a session. The offline phase enumerates all 280 candidate
    //    views and computes their 8 utility features.
    let mut seeker =
        ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).expect("init session");
    println!(
        "view space: {} candidate views\n",
        seeker.view_space().len()
    );

    // 4. The interactive loop. A real application shows each view to a
    //    human; here a scripted user loves high-deviation (EMD) views.
    let taste = CompositeUtility::single(UtilityFeature::Emd);
    let scores = taste
        .normalized_scores(seeker.feature_matrix())
        .expect("score views");
    let mut labels = 0;
    while let Some(view) = seeker.next_views(1).expect("select view").pop() {
        let feedback = scores[view.index()];
        seeker
            .submit_feedback(view, feedback)
            .expect("record feedback");
        labels += 1;
        println!(
            "label {labels:>2}: {:<38} feedback {:.2}  [{:?} phase]",
            seeker.view_space().def(view).unwrap().to_string(),
            feedback,
            seeker.phase()
        );
        // Stop when the learned top-5 carries (almost) all the ideal top-5
        // utility mass, or after 20 labels.
        let recommended = seeker.recommend(5).expect("recommend");
        let ideal_top = taste.top_k(seeker.feature_matrix(), 5).expect("ideal");
        let ud = utility_distance(&scores, &recommended, &ideal_top);
        if ud <= 1e-9 || labels >= 20 {
            break;
        }
    }

    // 5. The result: the user's personalized top-5 views, plus the learned
    //    utility-function weights (the β of u* = Σ βᵢ·uᵢ).
    println!("\ntop-5 recommended views after {labels} labels:");
    for (rank, view) in seeker.recommend(5).expect("recommend").iter().enumerate() {
        println!(
            "  {}. {}",
            rank + 1,
            seeker.view_space().def(*view).unwrap()
        );
    }
    let weights = seeker.learned_weights().expect("fitted estimator");
    println!("\nlearned utility weights:");
    for (feature, w) in UtilityFeature::all().iter().zip(weights) {
        println!("  {feature:<10} {w:+.3}");
    }
}
