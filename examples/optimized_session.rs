//! The §3.3 optimizations in action: α-sampling plus prioritized
//! incremental refinement, with timings.
//!
//! Two sessions over the same data and the same simulated user: one computes
//! exact utility features for all views up front (optimization disabled),
//! the other starts from "rough" features over a 10% sample and refines the
//! promising views between labeling prompts. Compare offline-initialization
//! latency, labels used, and total time.
//!
//! ```text
//! cargo run --release --example optimized_session
//! ```

use viewseeker::prelude::*;

fn run(label: &str, config: ViewSeekerConfig, testbed: &Testbed) {
    let ideal = ideal_functions()[3].utility.clone(); // 0.5 EMD + 0.5 KL
    let outcome = run_session(
        &testbed.table,
        &testbed.query,
        config,
        &ideal,
        &RunnerConfig {
            k: 10,
            max_labels: 80,
            stop: StopCriterion::UtilityDistance(0.0),
        },
    )
    .expect("session");
    println!(
        "{label:<24} init {:>8.2?}   labels {:>3}   user-perceived {:>8.2?}   converged: {}",
        outcome.init_time, outcome.labels_used, outcome.system_time, outcome.converged
    );
}

fn main() {
    let testbed = diab_testbed(TestbedScale::Small(50_000), 7).expect("testbed");
    println!(
        "DIAB testbed: {} rows, DQ selectivity {:.2}%\n",
        testbed.table.row_count(),
        testbed.selectivity * 100.0
    );
    println!(
        "hidden ideal utility: {}\n",
        ideal_functions()[3].utility.name()
    );

    let exact = ViewSeekerConfig::default();
    // The paper's optimized setup: 10% rough pass, refinement inside a
    // per-iteration time budget, prioritized by the current estimator.
    let optimized = ViewSeekerConfig::optimized();

    run("optimization OFF", exact, &testbed);
    run("optimization ON (α=10%)", optimized, &testbed);

    println!(
        "\nThe optimized session trades a much cheaper offline phase for a few\n\
         extra labels; incremental refinement runs inside user think-time, so\n\
         the user never waits for it (paper: −43% runtime for +19% labels)."
    );
}
