//! Fixed-utility recommenders vs the learned one, plus CSV persistence.
//!
//! Demonstrates (1) using the SeeDB-style single-feature rankers directly —
//! what you'd do if you *knew* your utility function; (2) why a fixed choice
//! breaks down for composite tastes, quantified with the paper's precision
//! metric; (3) round-tripping a dataset through the CSV codec.
//!
//! ```text
//! cargo run --release --example custom_utility
//! ```

use std::io::Cursor;

use viewseeker::prelude::*;
use viewseeker_core::baseline::SingleFeatureRanker;
use viewseeker_core::{tie_aware_precision_at_k, utility_distance};
use viewseeker_dataset::csv::{read_csv, write_csv};

fn main() {
    let testbed = diab_testbed(TestbedScale::Small(10_000), 123).expect("testbed");

    // --- CSV round trip: persist the generated dataset and reload it. ---
    let mut buf = Vec::new();
    write_csv(&testbed.table, &mut buf).expect("write csv");
    println!(
        "dataset serializes to {:.1} MiB of CSV",
        buf.len() as f64 / (1024.0 * 1024.0)
    );
    let reloaded = read_csv(testbed.table.schema(), Cursor::new(&buf)).expect("read csv");
    assert_eq!(reloaded.row_count(), testbed.table.row_count());
    println!("CSV round trip OK: {} rows\n", reloaded.row_count());

    // --- A custom composite utility the user could define by hand. ---
    let custom = CompositeUtility::new(&[
        (UtilityFeature::MaxDiff, 0.5),
        (UtilityFeature::Usability, 0.3),
        (UtilityFeature::PValue, 0.2),
    ])
    .expect("custom composite");
    println!("user's true (hidden) utility: {}\n", custom.name());

    // Ground-truth features for the whole view space.
    let mut seeker = ViewSeeker::new(&testbed.table, &testbed.query, ViewSeekerConfig::default())
        .expect("session");
    let truth = seeker.feature_matrix().clone();
    let true_scores = custom.normalized_scores(&truth).expect("scores");

    // --- Every fixed single-feature recommender, scored against it. ---
    const K: usize = 10;
    let ideal_top = custom.top_k(&truth, K).expect("ideal top-k");
    println!("fixed SeeDB-style rankers against the hidden utility:");
    println!(
        "  {:<18} {:>12} {:>18}",
        "method", "precision@10", "utility distance"
    );
    for ranker in SingleFeatureRanker::all() {
        let top = ranker.top_k(&truth, K);
        let p = tie_aware_precision_at_k(&true_scores, &top, K);
        let ud = utility_distance(&true_scores, &top, &ideal_top);
        println!(
            "  rank by {:<10} {:>11.1}% {:>18.4}",
            ranker.feature().to_string(),
            p * 100.0,
            ud
        );
    }

    // --- ViewSeeker, learning the same utility interactively. ---
    let mut labels = 0;
    let (mut precision, mut ud) = (0.0, f64::INFINITY);
    while labels < 40 && ud > 0.0 {
        let Some(v) = seeker.next_views(1).expect("next").pop() else {
            break;
        };
        seeker
            .submit_feedback(v, true_scores[v.index()])
            .expect("feedback");
        labels += 1;
        let top = seeker.recommend(K).expect("rec");
        precision = tie_aware_precision_at_k(&true_scores, &top, K);
        ud = utility_distance(&true_scores, &top, &ideal_top);
    }
    println!(
        "\n  ViewSeeker ({labels} labels) {:>10.1}% {:>18.4}",
        precision * 100.0,
        ud
    );
    println!("\nlearned weights vs true weights:");
    let learned = seeker.learned_weights().expect("fitted");
    for (i, f) in UtilityFeature::all().iter().enumerate() {
        println!(
            "  {:<10} learned {:+.3}   true {:+.3}",
            f.to_string(),
            learned[i],
            custom.weights()[i]
        );
    }
}
