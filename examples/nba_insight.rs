//! The paper's motivating scenario (Figure 1): discovering *why* an NBA
//! team outperformed the league.
//!
//! A hand-built stats table covers several seasons of player-game records.
//! The analyst selects one team (the query subset `DQ`); one dimension —
//! player position — hides the insight: the selected team's three-point
//! attempt rate by position deviates sharply from the league's. The analyst
//! doesn't know which utility function captures "interesting" for them;
//! ViewSeeker discovers it from a handful of ratings and surfaces the
//! insight view.
//!
//! ```text
//! cargo run --release --example nba_insight
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viewseeker::prelude::*;
use viewseeker_dataset::builder::TableBuilder;
use viewseeker_dataset::row;

/// Builds the player-game table: dimensions team / position / season,
/// measures three-point attempt rate, points, rebounds.
fn nba_table(rows: usize, seed: u64) -> Table {
    let teams = ["GSW", "LAL", "BOS", "MIA", "CHI", "NYK", "SAS", "DEN"];
    let positions = ["PG", "SG", "SF", "PF", "C"];
    let seasons = ["2013-14", "2014-15", "2015-16"];
    let mut rng = StdRng::seed_from_u64(seed);

    let schema = Schema::builder()
        .categorical_dimension("team")
        .categorical_dimension("position")
        .categorical_dimension("season")
        .measure("three_pt_attempt_rate")
        .measure("points")
        .measure("rebounds")
        .build()
        .expect("schema");
    let mut builder = TableBuilder::new(schema);

    for _ in 0..rows {
        let team = teams[rng.gen_range(0..teams.len())];
        let pos = positions[rng.gen_range(0..positions.len())];
        let season = seasons[rng.gen_range(0..seasons.len())];

        // League base rates: guards shoot more threes than bigs.
        let base_3par: f64 = match pos {
            "PG" => 0.32,
            "SG" => 0.35,
            "SF" => 0.28,
            "PF" => 0.15,
            _ => 0.05,
        };
        // The insight: the selected team launches threes from EVERY
        // position — especially its bigs — and increasingly by season.
        let team_boost = if team == "GSW" {
            let season_idx = seasons.iter().position(|s| *s == season).unwrap() as f64;
            0.12 + 0.04 * season_idx + if pos == "PF" || pos == "C" { 0.10 } else { 0.0 }
        } else {
            0.0
        };
        let three_par = (base_3par + team_boost + rng.gen_range(-0.03..0.03)).clamp(0.0, 1.0);
        builder
            .push_row(row![
                team,
                pos,
                season,
                three_par,
                rng.gen_range(0.0..30.0),
                rng.gen_range(0.0..12.0),
            ])
            .expect("row matches schema");
    }
    builder.finish().expect("table")
}

/// Renders a two-series ASCII bar chart of target vs reference, Figure 1
/// style.
fn bar_chart(labels: &[String], target: &[f64], reference: &[f64]) {
    let max = target
        .iter()
        .chain(reference)
        .copied()
        .fold(f64::MIN_POSITIVE, f64::max);
    for (i, label) in labels.iter().enumerate() {
        let bar = |v: f64| "#".repeat(((v / max) * 40.0).round() as usize);
        println!(
            "  {label:<10} team   {:<42} {:.3}",
            bar(target[i]),
            target[i]
        );
        println!(
            "  {:<10} league {:<42} {:.3}",
            "",
            bar(reference[i]),
            reference[i]
        );
    }
}

fn main() {
    let table = nba_table(30_000, 2016);
    let query = SelectQuery::new(Predicate::eq("team", "GSW"));

    // Exclude `team` from the view space: the query already fixes it, so
    // team-grouped views are trivially-deviating point masses (SeeDB's
    // convention, exposed via `excluded_dimensions`).
    let config = ViewSeekerConfig {
        excluded_dimensions: vec!["team".into()],
        ..ViewSeekerConfig::default()
    };
    let mut seeker = ViewSeeker::new(&table, &query, config).expect("session");
    println!(
        "exploring {} player-game rows; candidate views: {}\n",
        table.row_count(),
        seeker.view_space().len()
    );

    // The analyst can't articulate their utility function, but their taste
    // is, in effect, "large deviations from the league, in views whose bars
    // faithfully summarize the underlying rows" — a deviation + accuracy
    // composite ViewSeeker is built to discover.
    let hidden_taste =
        CompositeUtility::new(&[(UtilityFeature::Emd, 0.5), (UtilityFeature::Accuracy, 0.5)])
            .expect("composite");
    let ratings = hidden_taste
        .normalized_scores(seeker.feature_matrix())
        .expect("scores");

    let mut labels = 0;
    while labels < 15 {
        let Some(view) = seeker.next_views(1).expect("next").pop() else {
            break;
        };
        seeker
            .submit_feedback(view, ratings[view.index()])
            .expect("feedback");
        labels += 1;
    }
    println!("analyst rated {labels} example views\n");

    let top = seeker.recommend(3).expect("recommend");
    println!("ViewSeeker's top recommendations:");
    for (rank, view) in top.iter().enumerate() {
        println!(
            "  {}. {}",
            rank + 1,
            seeker.view_space().def(*view).unwrap()
        );
    }

    // Render the #1 view as the Figure 1 style comparison.
    let best = seeker.view_space().def(top[0]).expect("view def").clone();
    let dq = seeker.dq().clone();
    let spec = viewseeker_core::viewgen::bin_spec_for(&table, &best).expect("bins");
    let data = viewseeker_core::viewgen::materialize_view(&table, &dq, &table.all_rows(), &best)
        .expect("materialize");
    println!("\n{best} — selected team (target) vs league (reference):\n");
    let labels_txt: Vec<String> = (0..spec.bin_count()).map(|b| spec.label(b)).collect();
    bar_chart(&labels_txt, data.target.masses(), data.reference.masses());
    println!("\n(The deviation concentrates where the selected team's shot profile");
    println!(" departs from the league — the Figure 1 insight.)");
}
