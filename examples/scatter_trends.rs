//! The future-work extension in action: interactive recommendation of
//! **scatter-plot views** (paper §7: "extend it to support more
//! visualization types, such as scatter plot, line chart etc.").
//!
//! A synthetic sensor dataset hides a correlation that only holds inside the
//! queried subset: within the low-temperature regime, `pressure` tracks
//! `vibration` almost linearly, while the global population shows no such
//! trend. The generic `FeedbackSession` learns a user's scatter-view taste
//! from a few ratings and surfaces the pair.
//!
//! ```text
//! cargo run --release --example scatter_trends
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viewseeker::prelude::*;
use viewseeker_core::scatter::{scatter_feature_matrix, ScatterSpace};
use viewseeker_core::FeedbackSession;
use viewseeker_dataset::Column;

fn sensor_table(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut temperature = Vec::with_capacity(rows);
    let mut vibration = Vec::with_capacity(rows);
    let mut pressure = Vec::with_capacity(rows);
    let mut humidity = Vec::with_capacity(rows);
    let mut voltage = Vec::with_capacity(rows);

    for _ in 0..rows {
        let t: f64 = rng.gen_range(-20.0..60.0);
        let v: f64 = rng.gen_range(0.0..10.0);
        // The planted insight: below 0°C, pressure follows vibration.
        let p = if t < 0.0 {
            20.0 + 3.0 * v + rng.gen_range(-1.0..1.0)
        } else {
            rng.gen_range(15.0..55.0)
        };
        temperature.push(t);
        vibration.push(v);
        pressure.push(p);
        humidity.push(rng.gen_range(10.0..90.0));
        voltage.push(rng.gen_range(220.0..240.0));
    }

    let schema = Schema::builder()
        .numeric_dimension("temperature")
        .measure("m_vibration")
        .measure("m_pressure")
        .measure("m_humidity")
        .measure("m_voltage")
        .build()
        .expect("schema");
    Table::new(
        schema,
        vec![
            Column::numeric(temperature),
            Column::numeric(vibration),
            Column::numeric(pressure),
            Column::numeric(humidity),
            Column::numeric(voltage),
        ],
    )
    .expect("table")
}

fn main() {
    let table = sensor_table(40_000, 77);
    // The analyst zooms into the freezing regime.
    let query = SelectQuery::new(Predicate::range("temperature", -20.0, 0.0));
    let dq = query.execute(&table).expect("query");
    println!(
        "sensor readings: {} rows; query (sub-zero) selects {}\n",
        table.row_count(),
        dq.len()
    );

    // Scatter view space: every pair of the 4 measures on an 8×8 grid.
    let space = ScatterSpace::enumerate(&table, 8).expect("scatter space");
    println!("scatter view space: {} measure pairs", space.len());
    let matrix =
        scatter_feature_matrix(&table, &dq, &table.all_rows(), &space, 64.0).expect("features");

    // The simulated analyst likes views whose DQ density departs from the
    // global density AND whose trend line fits tightly (EMD + Accuracy).
    let taste =
        CompositeUtility::new(&[(UtilityFeature::Emd, 0.5), (UtilityFeature::Accuracy, 0.5)])
            .expect("taste");
    let truth = taste.normalized_scores(&matrix).expect("scores");

    let mut session = FeedbackSession::new(matrix, ViewSeekerConfig::default()).expect("session");
    let mut labels = 0;
    while labels < 8 {
        let Some(item) = session.next_items(1).expect("next").pop() else {
            break;
        };
        session
            .submit_feedback(item, truth[item.index()])
            .expect("feedback");
        labels += 1;
        println!(
            "  rated {:<42} -> {:.2}",
            space.def(item).unwrap().to_string(),
            truth[item.index()]
        );
    }

    println!("\ntop-3 scatter views after {labels} ratings:");
    for (rank, item) in session.recommend(3).expect("recommend").iter().enumerate() {
        let def = space.def(*item).expect("def");
        println!("  {}. {def}", rank + 1);
    }
    println!(
        "\n(The m_vibration/m_pressure pair should rank first: inside the\n\
         sub-zero subset it has both a dense off-global distribution and a\n\
         tight linear trend — the planted insight.)"
    );
}
