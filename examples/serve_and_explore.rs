//! Drives a full interactive session over HTTP against an in-process
//! `viewseeker-server`: create a session, alternate next-view / feedback
//! (simulating a user whose hidden ideal is pure EMD), read the
//! personalized top-k, snapshot, and check server health — all through
//! real TCP sockets, exactly as an external UI would.
//!
//! ```text
//! cargo run --release --example serve_and_explore
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use viewseeker_server::{serve_app, LogFormat, LogLevel, ServerConfig};

/// One request over a fresh connection; returns `(status, body)`.
fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    // `Connection: close` because this helper reads to EOF — under the
    // event I/O path (the default) HTTP/1.1 connections otherwise stay
    // open for keep-alive and `read_to_string` would block forever.
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: example\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// Extracts the value after `"key":` from a flat JSON object.
fn json_field<'a>(body: &'a str, key: &str) -> &'a str {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle).expect("field") + needle.len();
    let rest = &body[start..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim_matches('"')
}

fn main() {
    // 1. Start the service in-process on a free port.
    let handle = serve_app(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        max_sessions: 8,
        ttl: Duration::from_secs(600),
        snapshot_dir: None,
        data_dir: None,
        catalog_mem_budget: 64 << 20,
        // Structured access logs on stderr; try LogFormat::Json here.
        log_format: LogFormat::Text,
        log_level: LogLevel::Off,
        default_executor: Default::default(),
        // Event-driven reactor with default admission limits; pass
        // IoModel::Blocking for the thread-per-connection oracle path.
        ..Default::default()
    })
    .expect("bind");
    let addr = handle.addr();
    println!("server listening on http://{addr}\n");

    // 2. Create a session over a generated DIAB-like testbed.
    let (status, body) = call(
        addr,
        "POST",
        "/sessions",
        r#"{"dataset": "diab", "rows": 2000, "seed": 7, "query": "a0 = 'a0_v0'"}"#,
    );
    assert_eq!(status, 201, "{body}");
    let id = json_field(&body, "id").to_owned();
    println!(
        "created session {id}: {} candidate views",
        json_field(&body, "views")
    );

    // 3. The interactive loop. A real deployment shows each view to a
    //    human; here a simulated user rates views by their EMD deviation,
    //    which the server has in each view's feature vector — we just rate
    //    a few views with fixed plausible scores to stand in for taste.
    let ratings = [0.95, 0.1, 0.7, 0.2, 0.85, 0.4, 0.6, 0.3];
    for (turn, score) in ratings.iter().enumerate() {
        let (status, body) = call(addr, "GET", &format!("/sessions/{id}/next?m=1"), "");
        assert_eq!(status, 200, "{body}");
        let view = json_field(&body, "id").to_owned();
        let (agg, measure, dim) = (
            json_field(&body, "aggregate").to_owned(),
            json_field(&body, "measure").to_owned(),
            json_field(&body, "dimension").to_owned(),
        );
        println!("turn {turn}: labeling view {view} [{agg}({measure}) BY {dim}] -> {score}");
        let (status, body) = call(
            addr,
            "POST",
            &format!("/sessions/{id}/feedback"),
            &format!("{{\"view\": {view}, \"score\": {score}}}"),
        );
        assert_eq!(status, 200, "{body}");
    }

    // 4. Read the personalized recommendation, plain and diversified.
    let (status, body) = call(addr, "GET", &format!("/sessions/{id}/recommend?k=5"), "");
    assert_eq!(status, 200, "{body}");
    println!("\ntop-5 (learned utility): {body}");
    let (status, body) = call(
        addr,
        "GET",
        &format!("/sessions/{id}/recommend?k=5&lambda=0.5"),
        "",
    );
    assert_eq!(status, 200, "{body}");
    println!("\ntop-5 (diversified, λ=0.5): {body}");

    // 5. Snapshot the session — the returned document restores the session
    //    (here or on another server) via POST /sessions/restore.
    let (status, snapshot) = call(addr, "POST", &format!("/sessions/{id}/snapshot"), "");
    assert_eq!(status, 200, "{snapshot}");
    println!("\nsnapshot captured ({} bytes)", snapshot.len());
    let (status, _) = call(addr, "DELETE", &format!("/sessions/{id}"), "");
    assert_eq!(status, 200);
    let (status, body) = call(addr, "POST", "/sessions/restore", &snapshot);
    assert_eq!(status, 201, "{body}");
    println!("session {} restored from snapshot", json_field(&body, "id"));

    // 6. Health: per-endpoint request counts and latency percentiles.
    let (status, body) = call(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    println!("\nhealthz: {body}");

    // 7. The same state, Prometheus-scrapeable (counters, gauges, and
    //    per-route latency histograms).
    let (status, scrape) = call(addr, "GET", "/metrics", "");
    assert_eq!(status, 200, "{scrape}");
    let interesting: Vec<&str> = scrape
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| {
            l.starts_with("viewseeker_active_sessions")
                || l.starts_with("viewseeker_feedback_labels_total")
                || l.contains("route=\"POST /sessions/:id/feedback\"")
        })
        .collect();
    println!("\nmetrics excerpt:\n{}", interesting.join("\n"));

    handle.shutdown();
    println!("\nserver stopped cleanly");
}
