//! Reproduction of the paper's DIAB exploration end to end, with the
//! full simulated-user harness: a clinician with a *three-component* hidden
//! utility function (Table 2 #11: 0.3·EMD + 0.3·KL + 0.4·Accuracy) explores
//! a patient cohort, and we watch precision climb per label.
//!
//! ```text
//! cargo run --release --example diabetes_exploration
//! ```

use viewseeker::prelude::*;

fn main() {
    // Table 1's DIAB shape at laptop scale with the ~0.5%-selectivity
    // hypercube query.
    let testbed = diab_testbed(TestbedScale::Small(20_000), 99).expect("testbed");
    println!(
        "DIAB testbed: {} rows, DQ selectivity {:.2}%",
        testbed.table.row_count(),
        testbed.selectivity * 100.0
    );

    // The clinician's hidden taste: Table 2's function #11.
    let clinician = &ideal_functions()[10];
    println!("hidden ideal utility: {}\n", clinician.utility.name());

    let outcome = run_session(
        &testbed.table,
        &testbed.query,
        ViewSeekerConfig::default(),
        &clinician.utility,
        &RunnerConfig {
            k: 10,
            max_labels: 60,
            stop: StopCriterion::Precision(1.0),
        },
    )
    .expect("session");

    println!("precision@10 after each label:");
    for (i, p) in outcome.precision_trace.iter().enumerate() {
        let bar = "#".repeat((p * 40.0).round() as usize);
        println!("  label {:>2}  {bar:<40} {:.0}%", i + 1, p * 100.0);
    }
    println!(
        "\nconverged: {} in {} labels (paper reports 7-16 on average), wall time {:.2?}",
        outcome.converged, outcome.labels_used, outcome.wall_time
    );

    // Show the final recommendation with a fresh session driven the same
    // way, so we can print the actual views.
    let mut seeker = ViewSeeker::new(&testbed.table, &testbed.query, ViewSeekerConfig::default())
        .expect("session");
    let truth = seeker.feature_matrix().clone();
    let user = SimulatedUser::new(&clinician.utility, &truth).expect("user");
    for _ in 0..outcome.labels_used {
        let Some(v) = seeker.next_views(1).expect("next").pop() else {
            break;
        };
        seeker
            .submit_feedback(v, user.label(v).expect("label"))
            .expect("feedback");
    }
    println!("\nfinal top-10 views for this clinician:");
    for (rank, v) in seeker.recommend(10).expect("recommend").iter().enumerate() {
        println!(
            "  {:>2}. {:<40} (true interest {:.2})",
            rank + 1,
            seeker.view_space().def(*v).unwrap().to_string(),
            user.label(*v).unwrap()
        );
    }
}
