//! Line-chart views — the paper's other future-work visualization type.
//!
//! A line chart is, in this system's terms, a bar-chart view over a *finely
//! binned numeric dimension* (here: hour of day, 24 bins): the existing
//! pipeline — view enumeration, the 8 utility features, the interactive
//! loop — handles it without modification; only the bin configuration and
//! the usability optimum change. A simulated on-call engineer explores why
//! a service's error rate spiked for one deployment cohort.
//!
//! ```text
//! cargo run --release --example line_chart
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viewseeker::prelude::*;
use viewseeker_dataset::Column;

fn telemetry_table(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hour = Vec::with_capacity(rows);
    let mut cohort = Vec::with_capacity(rows);
    let mut errors = Vec::with_capacity(rows);
    let mut latency = Vec::with_capacity(rows);
    let mut throughput = Vec::with_capacity(rows);

    for _ in 0..rows {
        let h: f64 = rng.gen_range(0.0..24.0);
        let c = if rng.gen_bool(0.2) {
            "canary"
        } else {
            "stable"
        };
        // The canary cohort leaks errors during the nightly batch window.
        let base_err = 0.5 + 0.2 * (h / 24.0 * std::f64::consts::TAU).sin();
        let err = if c == "canary" && (2.0..6.0).contains(&h) {
            base_err + 4.0 + rng.gen_range(0.0..1.0)
        } else {
            base_err + rng.gen_range(0.0..0.5)
        };
        hour.push(h);
        cohort.push(c);
        errors.push(err);
        latency.push(rng.gen_range(5.0..50.0));
        throughput.push(rng.gen_range(100.0..1000.0));
    }

    let schema = Schema::builder()
        .numeric_dimension("hour")
        .categorical_dimension("cohort")
        .measure("m_errors")
        .measure("m_latency")
        .measure("m_throughput")
        .build()
        .expect("schema");
    Table::new(
        schema,
        vec![
            Column::numeric(hour),
            Column::categorical_from_values(&cohort),
            Column::numeric(errors),
            Column::numeric(latency),
            Column::numeric(throughput),
        ],
    )
    .expect("table")
}

/// Renders two aligned sparklines (target over reference).
fn sparkline(series: &[f64]) -> String {
    const LEVELS: &[char] = &['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = series.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
    series
        .iter()
        .map(|v| {
            let idx = ((v / max) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

fn main() {
    let table = telemetry_table(60_000, 5150);
    let query = SelectQuery::new(Predicate::eq("cohort", "canary"));

    // Line-chart configuration: 24 one-hour bins on numeric dimensions, the
    // cohort dimension excluded (the query fixes it), and the usability
    // optimum raised to favor fine-grained series.
    let config = ViewSeekerConfig {
        bin_configs: vec![24],
        excluded_dimensions: vec!["cohort".into()],
        usability_optimal_bins: 24.0,
        ..ViewSeekerConfig::default()
    };
    let mut seeker = ViewSeeker::new(&table, &query, config).expect("session");
    println!(
        "telemetry: {} rows; canary cohort: {} rows; line-chart views: {}\n",
        table.row_count(),
        seeker.dq().len(),
        seeker.view_space().len()
    );

    // The engineer's taste: significant deviations (p-value + EMD).
    let taste = CompositeUtility::new(&[(UtilityFeature::PValue, 0.5), (UtilityFeature::Emd, 0.5)])
        .expect("taste");
    let truth = taste
        .normalized_scores(seeker.feature_matrix())
        .expect("scores");
    let mut labels = 0;
    while labels < 10 {
        let Some(v) = seeker.next_views(1).expect("next").pop() else {
            break;
        };
        seeker
            .submit_feedback(v, truth[v.index()])
            .expect("feedback");
        labels += 1;
    }

    let top = seeker.recommend(3).expect("recommend");
    println!("top line-chart views after {labels} ratings:");
    for (rank, v) in top.iter().enumerate() {
        println!("  {}. {}", rank + 1, seeker.view_space().def(*v).unwrap());
    }

    // Draw the winner as a pair of 24-point sparklines.
    let best = seeker.view_space().def(top[0]).expect("def").clone();
    let data =
        viewseeker_core::viewgen::materialize_view(&table, seeker.dq(), &table.all_rows(), &best)
            .expect("materialize");
    println!("\n{best} — hourly profile (each char = 1 hour, 00:00 → 23:00):");
    println!("  canary {}", sparkline(data.target.masses()));
    println!("  all    {}", sparkline(data.reference.masses()));
    println!("\n(The canary line should bulge in the 02:00-06:00 window — the planted incident.)");
}
