//! End-to-end integration tests spanning every crate: dataset generation →
//! query → offline initialization → interactive loop → recommendation.

use viewseeker::prelude::*;

fn small_testbed(seed: u64) -> Testbed {
    diab_testbed(TestbedScale::Small(2_500), seed).expect("testbed")
}

#[test]
fn full_pipeline_converges_for_every_table2_function() {
    let tb = small_testbed(101);
    for f in ideal_functions() {
        let outcome = run_session(
            &tb.table,
            &tb.query,
            ViewSeekerConfig::default(),
            &f.utility,
            &RunnerConfig {
                k: 10,
                max_labels: 120,
                stop: StopCriterion::UtilityDistance(0.0),
            },
        )
        .expect("session");
        assert!(
            outcome.converged,
            "ideal function #{} ({}) did not reach UD = 0 in 120 labels",
            f.number,
            f.utility.name()
        );
    }
}

#[test]
fn paper_headline_label_budget_holds_on_small_diab() {
    // The paper reports 7–16 labels on average; at laptop scale with exact
    // ties handled we allow a looser (but same order-of-magnitude) budget.
    let tb = small_testbed(202);
    let mut total = 0usize;
    let functions = ideal_functions();
    for f in &functions {
        let outcome = run_session(
            &tb.table,
            &tb.query,
            ViewSeekerConfig::default(),
            &f.utility,
            &RunnerConfig {
                k: 10,
                max_labels: 120,
                stop: StopCriterion::Precision(1.0),
            },
        )
        .expect("session");
        total += outcome.labels_used;
    }
    let mean = total as f64 / functions.len() as f64;
    assert!(
        mean <= 30.0,
        "mean labels across Table 2 functions was {mean}, expected the paper's order of magnitude"
    );
}

#[test]
fn syn_testbed_sessions_work() {
    let tb = syn_testbed(TestbedScale::Small(5_000), 303).expect("testbed");
    let ideal = &ideal_functions()[4].utility; // 0.5 EMD + 0.5 L2
    let outcome = run_session(
        &tb.table,
        &tb.query,
        ViewSeekerConfig::default(),
        ideal,
        &RunnerConfig {
            k: 10,
            max_labels: 120,
            stop: StopCriterion::UtilityDistance(0.0),
        },
    )
    .expect("session");
    assert!(
        outcome.converged,
        "SYN session used {}",
        outcome.labels_used
    );
}

#[test]
fn all_query_strategies_complete_sessions() {
    let tb = small_testbed(404);
    let ideal = &ideal_functions()[0].utility;
    for strategy in [
        QueryStrategyKind::Uncertainty,
        QueryStrategyKind::Random,
        QueryStrategyKind::QueryByCommittee { committee_size: 3 },
    ] {
        let cfg = ViewSeekerConfig {
            strategy,
            ..ViewSeekerConfig::default()
        };
        let outcome = run_session(
            &tb.table,
            &tb.query,
            cfg,
            ideal,
            &RunnerConfig {
                k: 5,
                max_labels: 150,
                stop: StopCriterion::UtilityDistance(0.0),
            },
        )
        .expect("session");
        assert!(
            outcome.converged,
            "{strategy:?} did not converge within 150 labels"
        );
    }
}

#[test]
fn optimized_and_exact_sessions_agree_once_refinement_completes() {
    let tb = small_testbed(505);
    let ideal = &ideal_functions()[1].utility;
    let exact_cfg = ViewSeekerConfig::default();
    let opt_cfg = ViewSeekerConfig {
        alpha: 0.25,
        refine_budget: RefineBudget::Views(300), // finish refinement in one tick
        ..ViewSeekerConfig::default()
    };
    for cfg in [exact_cfg, opt_cfg] {
        let outcome = run_session(
            &tb.table,
            &tb.query,
            cfg,
            ideal,
            &RunnerConfig {
                k: 10,
                max_labels: 100,
                stop: StopCriterion::UtilityDistance(0.0),
            },
        )
        .expect("session");
        assert!(outcome.converged);
    }
}

#[test]
fn recommendation_is_deterministic_per_seed() {
    let tb = small_testbed(606);
    let ideal = &ideal_functions()[6].utility;
    let run = || {
        run_session(
            &tb.table,
            &tb.query,
            ViewSeekerConfig::default(),
            ideal,
            &RunnerConfig {
                k: 10,
                max_labels: 60,
                stop: StopCriterion::UtilityDistance(0.0),
            },
        )
        .expect("session")
    };
    let a = run();
    let b = run();
    assert_eq!(a.labels_used, b.labels_used);
    assert_eq!(a.precision_trace, b.precision_trace);
    assert_eq!(a.ud_trace, b.ud_trace);
}

#[test]
fn excluded_dimensions_shrink_the_view_space() {
    let tb = small_testbed(707);
    let full = ViewSeeker::new(&tb.table, &tb.query, ViewSeekerConfig::default())
        .expect("session")
        .view_space()
        .len();
    let cfg = ViewSeekerConfig {
        excluded_dimensions: vec!["a0".into(), "a1".into()],
        ..ViewSeekerConfig::default()
    };
    let reduced = ViewSeeker::new(&tb.table, &tb.query, cfg)
        .expect("session")
        .view_space()
        .len();
    assert_eq!(full, 280);
    assert_eq!(reduced, 200, "two of seven dims excluded: 5 × 8 × 5");
}
