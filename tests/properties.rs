//! Cross-crate property-based tests: invariants that must hold for *any*
//! dataset, query, or utility combination the generators produce.

use proptest::prelude::*;
use viewseeker::prelude::*;
use viewseeker_core::features::compute_features;
use viewseeker_core::viewgen::materialize_view;
use viewseeker_core::ViewDef;
use viewseeker_dataset::aggregate::{group_by_aggregate, AggregateFunction};
use viewseeker_dataset::BinSpec;
use viewseeker_dataset::Column;

/// A small random table: one categorical dimension, one numeric dimension,
/// one measure.
fn arb_table() -> impl Strategy<Value = Table> {
    let rows = 1usize..120;
    rows.prop_flat_map(|n| {
        (
            proptest::collection::vec(0u32..4, n),
            proptest::collection::vec(-50.0f64..50.0, n),
            proptest::collection::vec(-100.0f64..100.0, n),
        )
            .prop_map(|(cats, dims, measures)| {
                let schema = Schema::builder()
                    .categorical_dimension("c")
                    .numeric_dimension("x")
                    .measure("m")
                    .build()
                    .unwrap();
                let labels: Vec<String> = (0..4).map(|i| format!("v{i}")).collect();
                Table::new(
                    schema,
                    vec![
                        Column::categorical_from_codes(cats, labels).unwrap(),
                        Column::numeric(dims),
                        Column::numeric(measures),
                    ],
                )
                .unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn group_by_counts_partition_the_selection(table in arb_table(), frac in 0.0f64..1.0) {
        let rows = viewseeker_dataset::sample::bernoulli_sample(&table.all_rows(), frac, 9);
        let spec = BinSpec::categorical_of(table.column_by_name("c").unwrap()).unwrap();
        let r = group_by_aggregate(&table, &rows, "c", &spec, "m", AggregateFunction::Count).unwrap();
        // COUNT bins partition the selected rows.
        prop_assert_eq!(r.total_rows(), rows.len() as u64);
        let sum: f64 = r.aggregates.iter().sum();
        prop_assert!((sum - rows.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn sum_aggregate_is_selection_total(table in arb_table()) {
        let spec = BinSpec::categorical_of(table.column_by_name("c").unwrap()).unwrap();
        let r = group_by_aggregate(
            &table, &table.all_rows(), "c", &spec, "m", AggregateFunction::Sum,
        ).unwrap();
        // Sum over bins with no empty-bin contribution = column total.
        let total: f64 = table.numeric_values("m").unwrap().iter().sum();
        let bins: f64 = r.aggregates.iter().sum();
        prop_assert!((bins - total).abs() < 1e-6 * (1.0 + total.abs()));
    }

    #[test]
    fn view_distributions_are_valid_probability_vectors(table in arb_table(), bins in 1usize..8) {
        for aggregate in AggregateFunction::all() {
            let def = ViewDef {
                dimension: "x".into(),
                measure: "m".into(),
                aggregate,
                bins: Some(bins),
            };
            let vd = materialize_view(&table, &table.all_rows(), &table.all_rows(), &def).unwrap();
            for d in [&vd.target, &vd.reference] {
                prop_assert_eq!(d.len(), bins);
                prop_assert!(d.masses().iter().all(|m| (0.0..=1.0 + 1e-12).contains(m)));
                prop_assert!((d.masses().iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
            // Identical target/reference row sets ⇒ identical distributions.
            prop_assert_eq!(&vd.target, &vd.reference);
        }
    }

    #[test]
    fn features_of_identical_views_have_zero_deviation(table in arb_table(), bins in 1usize..6) {
        let def = ViewDef {
            dimension: "x".into(),
            measure: "m".into(),
            aggregate: AggregateFunction::Avg,
            bins: Some(bins),
        };
        let vd = materialize_view(&table, &table.all_rows(), &table.all_rows(), &def).unwrap();
        let f = compute_features(&vd, 8.0).unwrap();
        // KL, EMD, L1, L2, MAX_DIFF all ~0 when DQ = DR.
        for (c, value) in f.iter().take(5).enumerate() {
            prop_assert!(value.abs() < 1e-6, "feature {} = {}", c, value);
        }
        prop_assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn predicate_de_morgan(table in arb_table(), split in -50.0f64..50.0) {
        let a = Predicate::eq("c", "v0");
        let b = Predicate::range("x", split, f64::INFINITY);
        let not_or = Predicate::Not(Box::new(Predicate::Or(vec![a.clone(), b.clone()])));
        let and_nots = Predicate::And(vec![
            Predicate::Not(Box::new(a)),
            Predicate::Not(Box::new(b)),
        ]);
        prop_assert_eq!(
            not_or.evaluate(&table).unwrap(),
            and_nots.evaluate(&table).unwrap()
        );
    }

    #[test]
    fn feature_matrix_is_unit_normalized(table in arb_table()) {
        let space = viewseeker_core::ViewSpace::enumerate(&table, &[3]).unwrap();
        let views = viewseeker_core::viewgen::materialize_all(
            &table, &table.all_rows(), &table.all_rows(), &space, 1,
        ).unwrap();
        let matrix = FeatureMatrix::from_views(&views, 8.0).unwrap();
        for row in matrix.rows() {
            prop_assert!(row.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn composite_scores_respect_linearity(
        w1 in 0.0f64..1.0,
        w2 in 0.0f64..1.0,
        f1 in proptest::collection::vec(0.0f64..1.0, 8),
    ) {
        let u1 = CompositeUtility::single(UtilityFeature::Kl);
        let u2 = CompositeUtility::single(UtilityFeature::Emd);
        let combo = CompositeUtility::new(&[
            (UtilityFeature::Kl, w1),
            (UtilityFeature::Emd, w2),
        ]).unwrap();
        let s1 = u1.score(&f1).unwrap();
        let s2 = u2.score(&f1).unwrap();
        let sc = combo.score(&f1).unwrap();
        prop_assert!((sc - (w1 * s1 + w2 * s2)).abs() < 1e-12);
    }

    #[test]
    fn csv_round_trip_any_table(table in arb_table()) {
        let mut buf = Vec::new();
        viewseeker_dataset::csv::write_csv(&table, &mut buf).unwrap();
        let back = viewseeker_dataset::csv::read_csv(
            table.schema(), std::io::Cursor::new(&buf),
        ).unwrap();
        prop_assert_eq!(back.row_count(), table.row_count());
        let m0 = table.numeric_values("m").unwrap();
        let m1 = back.numeric_values("m").unwrap();
        for (a, b) in m0.iter().zip(m1) {
            prop_assert_eq!(a, b, "f64 round trip must be exact");
        }
    }
}
