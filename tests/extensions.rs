//! Integration tests for the extension surface: scatter views, the generic
//! feedback session, session persistence, and line-chart-style fine binning.

use viewseeker::prelude::*;
use viewseeker_core::scatter::scatter_feature_matrix;

fn syn_table() -> Table {
    generate_syn(&SynConfig::small(4_000, 91)).unwrap()
}

#[test]
fn scatter_session_end_to_end() {
    let table = syn_table();
    let query = SelectQuery::new(Predicate::range("d0", 0.0, 30.0));
    let dq = query.execute(&table).unwrap();
    let space = ScatterSpace::enumerate(&table, 6).unwrap();
    let matrix = scatter_feature_matrix(&table, &dq, &table.all_rows(), &space, 36.0).unwrap();

    let ideal =
        CompositeUtility::new(&[(UtilityFeature::L1, 0.5), (UtilityFeature::PValue, 0.5)]).unwrap();
    let truth = ideal.normalized_scores(&matrix).unwrap();
    let mut session = FeedbackSession::new(matrix, ViewSeekerConfig::default()).unwrap();
    let mut converged = false;
    for _ in 0..space.len() {
        let Some(item) = session.next_items(1).unwrap().pop() else {
            break;
        };
        session.submit_feedback(item, truth[item.index()]).unwrap();
        let top = session.recommend(3).unwrap();
        if tie_aware_precision_at_k(&truth, &top, 3) >= 1.0 {
            converged = true;
            break;
        }
    }
    assert!(converged, "scatter session should recover the ideal top-3");
}

#[test]
fn snapshot_round_trip_through_json_and_disk_format() {
    let table = generate_diab(&DiabConfig::small(2_000, 92)).unwrap();
    let query = SelectQuery::new(Predicate::eq("a2", "a2_v0"));
    let mut seeker = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
    let ideal = CompositeUtility::single(UtilityFeature::MaxDiff);
    let scores = ideal.normalized_scores(seeker.feature_matrix()).unwrap();
    for _ in 0..6 {
        let v = seeker.next_views(1).unwrap()[0];
        seeker.submit_feedback(v, scores[v.index()]).unwrap();
    }

    let json = SessionSnapshot::from_seeker(&seeker).to_json().unwrap();
    // The snapshot is self-describing JSON a UI could store anywhere.
    assert!(json.contains("\"version\""));
    assert!(json.contains("\"labels\""));

    let restored = SessionSnapshot::from_json(&json)
        .unwrap()
        .restore_seeker(&table, &query, ViewSeekerConfig::default())
        .unwrap();
    assert_eq!(
        restored.recommend(10).unwrap(),
        seeker.recommend(10).unwrap()
    );

    // A resumed session continues seamlessly: next view differs from any
    // already-labeled one.
    let mut resumed = SessionSnapshot::from_json(&json)
        .unwrap()
        .restore_seeker(&table, &query, ViewSeekerConfig::default())
        .unwrap();
    let labeled: Vec<usize> = resumed.labels().iter().map(|l| l.view.index()).collect();
    let next = resumed.next_views(1).unwrap()[0];
    assert!(!labeled.contains(&next.index()));
}

#[test]
fn snapshot_rejects_a_mismatched_view_space() {
    let table = generate_diab(&DiabConfig::small(1_000, 93)).unwrap();
    let query = SelectQuery::new(Predicate::eq("a0", "a0_v0"));
    let seeker = ViewSeeker::new(&table, &query, ViewSeekerConfig::default()).unwrap();
    let snapshot = SessionSnapshot::from_seeker(&seeker);

    // Restoring with a different (excluded-dimension) space must fail
    // loudly rather than mis-associate labels.
    let shrunk = ViewSeekerConfig {
        excluded_dimensions: vec!["a0".into()],
        ..ViewSeekerConfig::default()
    };
    assert!(snapshot.restore_seeker(&table, &query, shrunk).is_err());
}

#[test]
fn fine_binning_acts_as_line_charts() {
    let table = syn_table();
    let query = SelectQuery::new(Predicate::range("d1", 0.0, 40.0));
    let config = ViewSeekerConfig {
        bin_configs: vec![24],
        usability_optimal_bins: 24.0,
        ..ViewSeekerConfig::default()
    };
    let seeker = ViewSeeker::new(&table, &query, config).unwrap();
    // 5 numeric dims × 5 measures × 5 aggregates × 1 bin config.
    assert_eq!(seeker.view_space().len(), 125);
    assert!(seeker
        .view_space()
        .defs()
        .iter()
        .all(|d| d.bins == Some(24)));
}

#[test]
fn equal_frequency_binning_integrates_with_aggregation() {
    use viewseeker_dataset::aggregate::{group_by_aggregate, AggregateFunction};

    let table = syn_table();
    let col = table.column_by_name("d0").unwrap();
    let spec = BinSpec::equal_frequency_of(col, 5).unwrap();
    let r = group_by_aggregate(
        &table,
        &table.all_rows(),
        "d0",
        &spec,
        "m0",
        AggregateFunction::Count,
    )
    .unwrap();
    // Quantile bins over a uniform column are near-balanced.
    let expected = table.row_count() as f64 / 5.0;
    for c in &r.aggregates {
        assert!(
            (c - expected).abs() < expected * 0.1,
            "unbalanced quantile bin: {c} vs {expected}"
        );
    }
}

#[test]
fn feedback_session_update_matrix_keeps_rankings_consistent() {
    use viewseeker_core::features::{FeatureMatrix, FEATURE_COUNT};

    let raws: Vec<[f64; FEATURE_COUNT]> = (0..20)
        .map(|i| {
            let mut r = [0.0; FEATURE_COUNT];
            r[2] = i as f64;
            r
        })
        .collect();
    let matrix = FeatureMatrix::new(raws.clone());
    let mut s = FeedbackSession::new(matrix, ViewSeekerConfig::default()).unwrap();
    let a = s.next_items(1).unwrap()[0];
    s.submit_feedback(a, 0.9).unwrap();
    let b = s.next_items(1).unwrap()[0];
    s.submit_feedback(b, 0.1).unwrap();

    // Replacing the matrix with identical contents must not change the
    // recommendation; a wrong-size replacement must be rejected.
    let before = s.recommend(5).unwrap();
    s.update_matrix(FeatureMatrix::new(raws)).unwrap();
    assert_eq!(s.recommend(5).unwrap(), before);
    assert!(s
        .update_matrix(FeatureMatrix::new(vec![[0.0; FEATURE_COUNT]]))
        .is_err());
}
