//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the narrow slice of `rand` it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), [`Rng::gen`] /
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! strong for simulation/testing purposes and fully deterministic for a
//! given seed, which is all the repo relies on (the real `rand::StdRng`
//! stream is explicitly *not* reproduced; nothing in the workspace depends
//! on the exact stream, only on determinism per seed).

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from their "standard" domain
/// (`[0, 1)` for floats, the full range for integers).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Element types [`Rng::gen_range`] can draw uniformly from a range.
pub trait SampleUniform: Sized {
    /// Draws one value from `[start, end)`.
    fn sample_range<R: RngCore + ?Sized>(range: &std::ops::Range<Self>, rng: &mut R) -> Self;
}

/// Half-open ranges that [`Rng::gen_range`] accepts. The element type is a
/// trait parameter, and `Range<T>` gets one blanket impl (both mirroring real
/// rand) so expressions like `1.0 + rng.gen_range(-0.5..0.5)` pin the float
/// type through inference instead of hitting candidate ambiguity.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(&self, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                range: &std::ops::Range<$t>,
                rng: &mut R,
            ) -> $t {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64 per
                // draw, far below anything the workspace's tests can detect.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                range: &std::ops::Range<$t>,
                rng: &mut R,
            ) -> $t {
                assert!(range.start < range.end, "gen_range: empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                range.start + unit * (range.end - range.start)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// User-facing generator methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard domain (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<f64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<f64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5..4.5f64);
            assert!((-2.5..4.5).contains(&f));
            let neg = rng.gen_range(-9i64..-2);
            assert!((-9..-2).contains(&neg));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1800..2200).contains(&hits), "hits {hits}");
    }
}
