//! Scoped threads with the crossbeam calling convention.

use std::any::Any;

/// Handle passed to [`scope`]'s closure and to every spawned closure.
///
/// A thin shim over `std::thread::Scope`; it is `Copy` so spawned closures
/// can themselves spawn.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// Join handle of a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result, or the panic payload.
    ///
    /// # Errors
    ///
    /// The boxed panic payload if the thread panicked.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope handle (so it
    /// can spawn siblings), matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Runs `f` with a scope in which borrowing, scoped threads can be spawned;
/// all are joined before `scope` returns.
///
/// # Errors
///
/// Crossbeam reports unjoined-child panics through `Err`; the std scope
/// underneath instead propagates such panics directly, so this shim's error
/// arm is never taken — callers' `.expect()` guards remain correct.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(3)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum()
        })
        .expect("scope failed");
        assert_eq!(total, 36);
    }

    #[test]
    fn nested_spawn_through_the_scope_handle() {
        let n = scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
