//! Multi-producer multi-consumer channels.
//!
//! A `Mutex<VecDeque>` + two `Condvar`s (not-empty / not-full). Semantics
//! follow crossbeam: cloning either end is cheap, `recv` blocks until a
//! message or until every `Sender` is dropped (then drains and disconnects),
//! and bounded `send` blocks while the queue is full.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error: all receivers disconnected; the message is returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error: channel is empty and all senders disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error for [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// Empty and all senders dropped.
    Disconnected,
}

/// Error for [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Empty and all senders dropped.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

/// The sending half; clonable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; clonable (crossbeam channels are MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel with unlimited buffering.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel buffering at most `cap` messages (senders block when
/// full).
#[must_use]
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        state.receivers -= 1;
        if state.receivers == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// [`SendError`] if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.shared.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self.shared.not_full.wait(state).expect("channel poisoned");
                }
                _ => break,
            }
        }
        state.queue.push_back(msg);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives or the channel
    /// disconnects.
    ///
    /// # Errors
    ///
    /// [`RecvError`] once the queue is empty and every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).expect("channel poisoned");
        }
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        if let Some(msg) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive with a deadline.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] or [`RecvTimeoutError::Disconnected`].
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("channel poisoned");
            state = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn mpmc_distributes_all_messages() {
        let (tx, rx) = unbounded::<usize>();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let mut all: Vec<usize> = workers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(0).unwrap();
        let sender = thread::spawn(move || tx.send(1).map(|()| true).unwrap_or(false));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(0));
        assert!(sender.join().unwrap());
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn try_and_timeout_variants() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
