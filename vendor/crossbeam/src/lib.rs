//! Vendored, dependency-free subset of the `crossbeam` crate API.
//!
//! Implemented over std: [`thread::scope`] wraps `std::thread::scope`
//! (available since Rust 1.63) behind crossbeam's `Result`-returning,
//! `|scope|`-passing signature, and [`channel`] provides a multi-producer
//! **multi-consumer** queue (std's `mpsc` is single-consumer) built from a
//! `Mutex<VecDeque>` + `Condvar` — exactly what a fixed worker pool needs.

pub mod channel;
pub mod thread;

pub use thread::scope;
