//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! facade.
//!
//! The offline build environment has neither `syn` nor `quote`, so this
//! crate parses the derive input by walking `proc_macro::TokenStream`
//! directly and emits impls as formatted source strings. Supported shapes —
//! everything this workspace derives on:
//!
//! * structs with named fields
//! * tuple structs (newtype and general)
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's default representation)
//!
//! Generic types and `#[serde(...)]` attributes are intentionally
//! unsupported and produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

/// The shape of a struct's or enum variant's payload.
enum Fields {
    /// `{ a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `(T, U)` — arity only.
    Tuple(usize),
    /// No payload.
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (the vendored value-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` (the vendored value-tree flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading `#[...]` attributes (incl. doc comments).
fn skip_attributes(toks: &mut Tokens) {
    while let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() != '#' {
            break;
        }
        toks.next();
        // `#![...]` inner attributes don't occur here; the next tree is the
        // bracket group of an outer attribute.
        match toks.next() {
            Some(TokenTree::Group(_)) => {}
            _ => break,
        }
    }
}

/// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_visibility(toks: &mut Tokens) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(
            toks.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            toks.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();
    skip_attributes(&mut toks);
    skip_visibility(&mut toks);

    let kind = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }

    match kind.as_str() {
        "struct" => {
            let fields = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for item kind `{other}`")),
    }
}

/// Parses `name: Type, ...` field lists; types may contain nested groups and
/// angle-bracketed generics (commas inside `<...>` are not separators).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut toks);
        skip_visibility(&mut toks);
        let Some(tree) = toks.next() else { break };
        let TokenTree::Ident(field) = tree else {
            return Err(format!("expected field name, got {tree:?}"));
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field, got {other:?}")),
        }
        fields.push(field.to_string());
        skip_type_until_comma(&mut toks);
    }
    Ok(fields)
}

/// Consumes type tokens up to (and including) the next top-level comma,
/// tracking `<`/`>` depth so generic arguments don't end the field early.
fn skip_type_until_comma(toks: &mut Tokens) {
    let mut angle_depth: u32 = 0;
    for tree in toks.by_ref() {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts tuple-struct / tuple-variant fields (top-level comma segments).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_tokens = false;
    let mut angle_depth: u32 = 0;
    for tree in stream {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut toks);
        let Some(tree) = toks.next() else { break };
        let TokenTree::Ident(vname) = tree else {
            return Err(format!("expected variant name, got {tree:?}"));
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream())?;
                toks.next();
                Fields::Named(named)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(n)
            }
            _ => Fields::Unit,
        };
        variants.push(Variant {
            name: vname.to_string(),
            fields,
        });
        // Consume the separating comma (and reject `= discriminant`, which
        // the workspace never uses on serialized enums).
        match toks.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => return Err(format!("unexpected token in enum body: {other:?}")),
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn tagged(tag: &str, inner: &str) -> String {
    format!(
        "::serde::Value::Object(::std::vec![(::std::string::String::from(\"{tag}\"), {inner})])"
    )
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let mut pairs = String::new();
                    for f in fs {
                        let _ = write!(
                            pairs,
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f})),"
                        );
                    }
                    format!("::serde::Value::Object(::std::vec![{pairs}])")
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vn} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vn}\")),"
                        );
                    }
                    Fields::Tuple(1) => {
                        let inner = "::serde::Serialize::to_value(f0)";
                        let _ = write!(arms, "{name}::{vn}(f0) => {},", tagged(vn, inner));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let inner =
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(","));
                        let _ = write!(
                            arms,
                            "{name}::{vn}({}) => {},",
                            binds.join(","),
                            tagged(vn, &inner)
                        );
                    }
                    Fields::Named(fs) => {
                        let mut pairs = String::new();
                        for f in fs {
                            let _ = write!(
                                pairs,
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f})),"
                            );
                        }
                        let inner = format!("::serde::Value::Object(::std::vec![{pairs}])");
                        let _ = write!(
                            arms,
                            "{name}::{vn} {{ {} }} => {},",
                            fs.join(","),
                            tagged(vn, &inner)
                        );
                    }
                }
            }
            (name, format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let mut inits = String::new();
                    for f in fs {
                        let _ = write!(
                            inits,
                            "{f}: ::serde::Deserialize::from_value(\
                             ::serde::obj_get(fields, \"{f}\"))?,"
                        );
                    }
                    format!(
                        "match v {{\
                             ::serde::Value::Object(fields) => \
                                 ::std::result::Result::Ok({name} {{ {inits} }}),\
                             _ => ::std::result::Result::Err(\
                                 ::serde::Error::expected(\"object\", \"{name}\")),\
                         }}"
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "match v {{\
                             ::serde::Value::Array(items) if items.len() == {n} => \
                                 ::std::result::Result::Ok({name}({})),\
                             _ => ::std::result::Result::Err(\
                                 ::serde::Error::expected(\"array of {n}\", \"{name}\")),\
                         }}",
                        items.join(",")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .collect();
            let payload: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .collect();

            let mut arms = String::new();
            if !unit.is_empty() {
                let mut string_arms = String::new();
                for v in &unit {
                    let vn = &v.name;
                    let _ = write!(
                        string_arms,
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                    );
                }
                let _ = write!(
                    arms,
                    "::serde::Value::String(s) => match s.as_str() {{\
                         {string_arms}\
                         _ => ::std::result::Result::Err(\
                             ::serde::Error::expected(\"variant of {name}\", \"{name}\")),\
                     }},"
                );
            }
            if !payload.is_empty() {
                let mut tag_arms = String::new();
                for v in &payload {
                    let vn = &v.name;
                    let arm_body = match &v.fields {
                        Fields::Tuple(1) => format!(
                            "::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(inner)?))"
                        ),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "match inner {{\
                                     ::serde::Value::Array(items) if items.len() == {n} => \
                                         ::std::result::Result::Ok({name}::{vn}({})),\
                                     _ => ::std::result::Result::Err(::serde::Error::expected(\
                                         \"array of {n}\", \"{name}::{vn}\")),\
                                 }}",
                                items.join(",")
                            )
                        }
                        Fields::Named(fs) => {
                            let mut inits = String::new();
                            for f in fs {
                                let _ = write!(
                                    inits,
                                    "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::obj_get(inner_fields, \"{f}\"))?,"
                                );
                            }
                            format!(
                                "match inner {{\
                                     ::serde::Value::Object(inner_fields) => \
                                         ::std::result::Result::Ok({name}::{vn} {{ {inits} }}),\
                                     _ => ::std::result::Result::Err(::serde::Error::expected(\
                                         \"object\", \"{name}::{vn}\")),\
                                 }}"
                            )
                        }
                        Fields::Unit => unreachable!("unit variants filtered out"),
                    };
                    let _ = write!(tag_arms, "\"{vn}\" => {arm_body},");
                }
                let _ = write!(
                    arms,
                    "::serde::Value::Object(fields) if fields.len() == 1 => {{\
                         let (tag, inner) = &fields[0];\
                         match tag.as_str() {{\
                             {tag_arms}\
                             _ => ::std::result::Result::Err(\
                                 ::serde::Error::expected(\"variant of {name}\", \"{name}\")),\
                         }}\
                     }},"
                );
            }
            let body = format!(
                "match v {{\
                     {arms}\
                     _ => ::std::result::Result::Err(\
                         ::serde::Error::expected(\"{name} representation\", \"{name}\")),\
                 }}"
            );
            (name, body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\
             fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ {body} }}\
         }}"
    )
}
