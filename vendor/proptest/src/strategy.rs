//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng as _;

/// A recipe for generating values of `Self::Value`.
///
/// The shim generates directly (no intermediate value trees), so there is no
/// shrinking: a strategy is just a deterministic function of the test rng.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::deterministic_rng;

    #[test]
    fn ranges_tuples_and_combinators_stay_in_bounds() {
        let mut rng = deterministic_rng("strategy::smoke");
        let strat = (1usize..10)
            .prop_flat_map(|n| (0.0f64..1.0, 0u32..4).prop_map(move |(x, c)| (n, x, c)));
        for _ in 0..200 {
            let (n, x, c) = strat.generate(&mut rng);
            assert!((1..10).contains(&n));
            assert!((0.0..1.0).contains(&x));
            assert!(c < 4);
        }
    }

    #[test]
    fn just_yields_the_value() {
        let mut rng = deterministic_rng("strategy::just");
        assert_eq!(Just(41).generate(&mut rng) + 1, 42);
    }
}
