//! Vendored, dependency-light subset of the `proptest` crate API.
//!
//! Supports the grammar this workspace's property tests actually use:
//! range strategies, tuples, [`collection::vec`], `prop_map` /
//! `prop_flat_map`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros with `#![proptest_config(ProptestConfig::with_cases(n))]`.
//!
//! Differences from real proptest, deliberate for an offline shim:
//! inputs are drawn from a generator seeded deterministically from the test's
//! module path and name (every run explores the same cases), and failing
//! cases are reported without shrinking.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Defines property tests over generated inputs.
///
/// Accepted grammar (a strict subset of real proptest):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]   // optional
///     #[test]
///     fn name(arg in strategy_expr, (a, b) in tuple_strategy) { body }
///     // ... more tests
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::deterministic_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body;
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest {} failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "{}\n  left: {:?}\n right: {:?}",
                ::std::format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}
