//! Test-runner configuration and the deterministic per-test rng.

use rand::rngs::StdRng;
use rand::SeedableRng as _;

/// The generator threaded through strategies (the vendored `StdRng`).
pub type TestRng = StdRng;

/// Runner configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Seeds a generator from a test's name (FNV-1a), so each test explores a
/// stable, test-specific stream of cases across runs.
#[must_use]
pub fn deterministic_rng(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn rng_is_stable_per_name_and_distinct_across_names() {
        let mut a = deterministic_rng("mod::test_a");
        let mut b = deterministic_rng("mod::test_a");
        let mut c = deterministic_rng("mod::test_b");
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
