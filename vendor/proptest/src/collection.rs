//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// Accepted length specifications for [`vec`]: an exact `usize` or a
/// half-open `Range<usize>`.
#[derive(Debug, Clone)]
pub enum SizeBounds {
    /// Exactly this many elements.
    Fixed(usize),
    /// A length drawn uniformly from the range.
    Range(std::ops::Range<usize>),
}

impl From<usize> for SizeBounds {
    fn from(n: usize) -> Self {
        SizeBounds::Fixed(n)
    }
}

impl From<std::ops::Range<usize>> for SizeBounds {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeBounds::Range(r)
    }
}

impl SizeBounds {
    fn pick(&self, rng: &mut TestRng) -> usize {
        match self {
            SizeBounds::Fixed(n) => *n,
            SizeBounds::Range(r) if r.start >= r.end => r.start,
            SizeBounds::Range(r) => rng.gen_range(r.clone()),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeBounds,
}

/// Generates vectors whose elements come from `element` and whose length is
/// governed by `size` (a `usize` or `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeBounds>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::deterministic_rng;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = deterministic_rng("collection::lengths");
        let fixed = vec(0.0f64..1.0, 7usize);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
        let ranged = vec(0u32..5, 1..4usize);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
        let empty_range = vec(0u32..5, 0..0usize);
        assert!(empty_range.generate(&mut rng).is_empty());
    }
}
