//! JSON text rendering over the shared value tree.

use serde::{write_json_number, write_json_string, Value};

/// Renders compact (single-line) JSON.
#[must_use]
pub fn render_compact(v: &Value) -> String {
    v.to_string()
}

/// Renders indented, human-readable JSON (2-space indent, like the real
/// `serde_json::to_string_pretty`).
#[must_use]
pub fn render_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_pretty(&mut out, v, 0);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_pretty(out: &mut String, v: &Value, level: usize) {
    match v {
        Value::Null | Value::Bool(_) | Value::Number(_) | Value::String(_) => {
            write_leaf(out, v);
        }
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(out, level + 1);
                write_pretty(out, item, level + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                indent(out, level + 1);
                write_json_string(out, k);
                out.push_str(": ");
                write_pretty(out, val, level + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, level);
            out.push('}');
        }
    }
}

fn write_leaf(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_json_number(out, n),
        Value::String(s) => write_json_string(out, s),
        _ => unreachable!("write_leaf only receives scalars"),
    }
}
