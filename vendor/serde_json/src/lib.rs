//! Vendored, dependency-light subset of `serde_json`.
//!
//! Renders and parses the vendored `serde` [`Value`] tree as JSON text.
//! Floats are emitted in Rust's shortest round-trip decimal form (with a
//! `.0` suffix when integral), so `f64` values — session weights included —
//! survive serialize → parse **bit-identically**.

pub use serde::{Number, Value};

mod parse;
mod render;

pub use parse::parse_value;
pub use render::{render_compact, render_pretty};

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes any [`serde::Serialize`] to compact JSON.
///
/// # Errors
///
/// Kept fallible for API compatibility; the value-tree renderer itself
/// cannot fail.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(render_compact(&value.to_value()))
}

/// Serializes any [`serde::Serialize`] to human-readable, indented JSON.
///
/// # Errors
///
/// Kept fallible for API compatibility; the value-tree renderer itself
/// cannot fail.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(render_pretty(&value.to_value()))
}

/// Converts any [`serde::Serialize`] into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into any [`serde::Deserialize`].
///
/// # Errors
///
/// [`Error`] for malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// [`Error`] on shape mismatch.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v).map_err(Error::from)
}

/// Builds a [`Value`] literal.
///
/// Subset of the real macro: object keys must be string literals and values
/// are Rust expressions (including nested `json!` calls); bare `[...]`
/// array literals and `null` are also accepted at the top level.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let v: Vec<(usize, f64)> = vec![(0, 0.25), (3, 1.0)];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "[[0,0.25],[3,1.0]]");
        let back: Vec<(usize, f64)> = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let back_pretty: Vec<(usize, f64)> = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back_pretty, v);
    }

    #[test]
    fn floats_round_trip_bit_identically() {
        let values = [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -2.5e-300,
            123_456_789.123_456_78,
            -0.0,
            1e300,
        ];
        for x in values {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn json_macro_builds_objects() {
        let count = 3usize;
        let v = json!({ "rows": count, "ratio": 0.5, "name": "syn" });
        let text = v.to_string();
        assert_eq!(text, r#"{"rows":3,"ratio":0.5,"name":"syn"}"#);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}f — ünïcode".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<f64>("not json").is_err());
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<f64>("{\"a\":}").is_err());
        assert!(from_str::<Vec<f64>>("[1.0] trailing").is_err());
    }

    #[test]
    fn integers_preserve_fidelity() {
        let big = u64::MAX;
        let back: u64 = from_str(&to_string(&big).unwrap()).unwrap();
        assert_eq!(back, big);
        let neg = i64::MIN;
        let back: i64 = from_str(&to_string(&neg).unwrap()).unwrap();
        assert_eq!(back, neg);
    }
}
