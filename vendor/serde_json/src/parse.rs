//! A recursive-descent JSON parser producing the shared value tree.

use crate::Error;
use serde::{Number, Value};

/// Parses a complete JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// [`Error`] with a byte offset for any syntax violation.
pub fn parse_value(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("JSON parse error at byte {}: {}", self.pos, msg))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a maximal run of plain characters in one go.
                    // Both delimiters (`"` and `\`) are ASCII and UTF-8
                    // continuation bytes are >= 0x80, so a bytewise scan
                    // stops on char boundaries and the run is valid UTF-8
                    // (the input is a valid &str).
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let run = &self.bytes[start..self.pos];
                    let s = std::str::from_utf8(run).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if let Ok(signed) = i64::try_from(n) {
                        return Ok(Value::Number(Number::NegInt(-signed)));
                    }
                    // i64::MIN: magnitude is i64::MAX + 1.
                    if n == i64::MAX as u64 + 1 {
                        return Ok(Value::Number(Number::NegInt(i64::MIN)));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            // Integer too large for 64 bits: fall through to float.
        }
        text.parse::<f64>()
            .map(|x| Value::Number(Number::Float(x)))
            .map_err(|_| self.err("invalid number"))
    }
}
