//! Vendored, dependency-free subset of the `criterion` crate API.
//!
//! Keeps the workspace's `[[bench]]` targets compiling and runnable offline.
//! Measurement is a plain warmup + timed-samples loop reporting mean/min per
//! iteration to stdout — no statistical analysis, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How [`Bencher::iter_batched`] amortises setup cost. The shim runs one
/// routine call per setup call regardless of the hint.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// Throughput annotation attached to a group; echoed in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id of the form `name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { id: name }
    }
}

/// Runs the measured closure and records per-iteration timings.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, called once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: stabilise caches/branch predictors before timing.
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..2 {
            std::hint::black_box(routine(setup()));
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.timings.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates the group's work-per-iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, routine: R) -> &mut Self
    where
        R: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            timings: Vec::new(),
        };
        routine(&mut bencher);
        self.report(&id.id, &bencher.timings);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        routine: R,
    ) -> &mut Self
    where
        R: FnOnce(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            timings: Vec::new(),
        };
        routine(&mut bencher, input);
        self.report(&id.id, &bencher.timings);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &str, timings: &[Duration]) {
        let _ = &self.criterion; // group lifetime is tied to the Criterion
        if timings.is_empty() {
            println!("{}/{:<40} no samples", self.name, id);
            return;
        }
        let total: Duration = timings.iter().sum();
        let mean = total / timings.len() as u32;
        let min = timings.iter().min().copied().unwrap_or_default();
        let extra = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
                format!("  ({per_sec:.0} elem/s)")
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
                format!("  ({per_sec:.0} B/s)")
            }
            None => String::new(),
        };
        println!(
            "{}/{:<40} mean {:>12?}  min {:>12?}  ({} samples){extra}",
            self.name,
            id,
            mean,
            min,
            timings.len()
        );
    }
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, routine: R) -> &mut Self
    where
        R: FnOnce(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        self
    }
}

/// Prevents the optimiser from discarding a value (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 32u32), &32u64, |b, n| {
            b.iter_batched(
                || (0..*n).collect::<Vec<u64>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            );
        });
        group.finish();
    }

    criterion_group!(unit_benches, sample_bench);

    #[test]
    fn group_macro_and_loops_run() {
        unit_benches();
    }
}
