//! Vendored, dependency-light subset of the `serde` data model.
//!
//! The build environment is fully offline, so the workspace vendors a small
//! serde-compatible facade: `#[derive(Serialize, Deserialize)]` (provided by
//! the sibling `serde_derive` proc-macro crate) plus blanket impls for the
//! std types the repo serializes. Instead of serde's visitor architecture,
//! everything funnels through an owned JSON-like [`Value`] tree — `serde_json`
//! (also vendored) renders and parses that tree. The public surface matches
//! what this workspace uses; it is not a general serde replacement.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{obj_get, write_json_number, write_json_string, Number, Value};

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// An "expected X while deserializing Y" error.
    #[must_use]
    pub fn expected(what: &str, context: &str) -> Self {
        Error(format!("expected {what} while deserializing {context}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// [`Error`] when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::PosInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::expected("smaller integer", stringify!($t))),
                    _ => Err(Error::expected("unsigned integer", stringify!($t))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::Number(Number::NegInt(n))
                } else {
                    Value::Number(Number::PosInt(n as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::PosInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::expected("smaller integer", stringify!($t))),
                    Value::Number(Number::NegInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::expected("smaller integer", stringify!($t))),
                    _ => Err(Error::expected("signed integer", stringify!($t))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(Number::Float(x)) => Ok(*x),
            Value::Number(Number::PosInt(n)) => Ok(*n as f64),
            Value::Number(Number::NegInt(n)) => Ok(*n as f64),
            _ => Err(Error::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean", "bool")),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Matches real serde's representation: a struct of secs + nanos.
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().to_value()),
            ("nanos".to_string(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => {
                let secs = u64::from_value(obj_get(fields, "secs"))?;
                let nanos = u32::from_value(obj_get(fields, "nanos"))?;
                Ok(std::time::Duration::new(secs, nanos))
            }
            _ => Err(Error::expected("object", "Duration")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            _ => Err(Error::expected("fixed-size array", "array")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == [$($idx),+].len() => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::expected("tuple array", "tuple")),
                }
            }
        }
    )+};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

impl<K: Serialize + std::fmt::Display, V: Serialize> Serialize
    for std::collections::BTreeMap<K, V>
{
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        assert_eq!(Vec::<(usize, f64)>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<Vec<f64>> = Some(vec![1.0, 2.0]);
        assert_eq!(Option::<Vec<f64>>::from_value(&o.to_value()).unwrap(), o);
        let none: Option<Vec<f64>> = None;
        assert_eq!(
            Option::<Vec<f64>>::from_value(&none.to_value()).unwrap(),
            none
        );
        let arr = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u32::from_value(&Value::String("x".into())).is_err());
        assert!(Vec::<f64>::from_value(&Value::Bool(true)).is_err());
        assert!(<[f64; 3]>::from_value(&vec![1.0f64].to_value()).is_err());
        assert!(u8::from_value(&300u32.to_value()).is_err());
    }
}
