//! The owned value tree all (de)serialization funnels through.

/// A JSON-shaped dynamic value.
///
/// Objects are stored as insertion-ordered `(key, value)` pairs so that
/// rendered output is stable and snapshots diff cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integer fidelity is preserved separately from floats).
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An insertion-ordered map.
    Object(Vec<(String, Value)>),
}

/// Numeric payload of [`Value::Number`].
///
/// Keeping integers and floats distinct preserves `u64`/`i64` exactly and
/// lets floats round-trip bit-identically through their shortest decimal
/// representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

/// Looks up `key` in an object's field list, yielding `Null` for a missing
/// key (the derive layer maps `Null` to `None` for `Option` fields).
#[must_use]
pub fn obj_get<'a>(fields: &'a [(String, Value)], key: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map_or(&NULL, |(_, v)| v)
}

impl Value {
    /// The object's field list, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Float(x)) => Some(*x),
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a `u64`, if a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// Member lookup on objects: `value.get("key")`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Writes `s` as a JSON string literal with all required escapes.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a number in JSON syntax.
///
/// Floats use Rust's shortest round-trip decimal rendering, with a `.0`
/// appended when integral so the token parses back as a float; non-finite
/// floats render as `null` (JSON has no representation for them).
pub fn write_json_number(out: &mut String, n: &Number) {
    match n {
        Number::PosInt(v) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{v}"));
        }
        Number::NegInt(v) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{v}"));
        }
        Number::Float(x) => {
            if !x.is_finite() {
                out.push_str("null");
            } else {
                let start = out.len();
                let _ = std::fmt::Write::write_fmt(out, format_args!("{x}"));
                if !out[start..].contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
        }
    }
}

impl std::fmt::Display for Value {
    /// Compact JSON rendering.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_compact(&mut out, self);
        f.write_str(&out)
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_json_number(out, n),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}
