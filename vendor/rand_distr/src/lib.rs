//! Vendored, dependency-free subset of the `rand_distr` crate API: the
//! [`Normal`] distribution and the [`Distribution`] trait, which is all the
//! workspace uses (Gaussian noise in the synthetic dataset generators).

use rand::Rng;

/// Types that can draw samples of `T` given a generator.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a [`Normal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or non-finite.
    BadVariance,
    /// The mean was non-finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev^2)`.
    ///
    /// # Errors
    ///
    /// [`NormalError`] for a negative or non-finite standard deviation or a
    /// non-finite mean.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform; one sample per draw keeps the generator
        // state independent of call pairing.
        let u1: f64 = rng.gen::<f64>().max(1e-300);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Normal::new(3.0, 2.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }
}
