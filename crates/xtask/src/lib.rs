//! `viewseeker-xtask`: workspace automation, chiefly the **vslint**
//! invariant linter.
//!
//! vslint proves, at the source level and on every CI run, the invariants
//! the rest of the workspace's tests only sample: request handlers never
//! panic, the interactive loop is deterministic, the Prometheus registry
//! is consistent, no crate admits `unsafe`, and lock acquisition is
//! disciplined. See DESIGN.md §10 for the rule catalog and suppression
//! policy.
//!
//! The implementation is deliberately dependency-free: a hand-rolled
//! token-level lexer ([`lexer`]) plus token-pattern rules. The linter
//! must build instantly, before anything else in CI, and must never be
//! broken by the code it checks.

#![forbid(unsafe_code)]

pub mod graph;
pub mod items;
pub mod lexer;
mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use lexer::{lex, Comment, Token, TokenKind};

/// One lint finding at a file/line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line (0 for file-level findings such as missing docs).
    pub line: usize,
    /// Rule id, e.g. `no-panic`.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Interprocedural findings only: the call path from an entry point
    /// to the offending function, as qualified fn names.
    pub witness: Vec<String>,
}

impl Diagnostic {
    /// A finding with no call-path witness (the file-local rules).
    #[must_use]
    pub fn new(file: String, line: usize, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            file,
            line,
            rule,
            message,
            witness: Vec::new(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        if !self.witness.is_empty() {
            write!(f, "\n    via {}", self.witness.join(" -> "))?;
        }
        Ok(())
    }
}

/// A lexed source file plus the derived facts every rule needs.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Code tokens.
    pub tokens: Vec<Token>,
    /// Comments (for suppression parsing).
    pub comments: Vec<Comment>,
    /// Per-token: true when the token sits inside `#[cfg(test)]` /
    /// `#[test]` items. Rules skip masked tokens — test code may panic.
    pub test_mask: Vec<bool>,
    /// `(first_body_token, last_body_token)` for every `fn` body,
    /// innermost-last for nested functions.
    pub fn_bodies: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes `source` and computes the derived per-file facts.
    #[must_use]
    pub fn new(path: String, source: &str) -> Self {
        let lexed = lex(source);
        let test_mask = compute_test_mask(&lexed.tokens);
        let fn_bodies = compute_fn_bodies(&lexed.tokens);
        SourceFile {
            path,
            tokens: lexed.tokens,
            comments: lexed.comments,
            test_mask,
            fn_bodies,
        }
    }

    /// Whether token `i` is inside test-only code.
    #[must_use]
    pub fn is_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// The innermost `fn` body containing token `i`, as a token range.
    #[must_use]
    pub fn enclosing_fn(&self, i: usize) -> Option<(usize, usize)> {
        self.fn_bodies
            .iter()
            .filter(|(s, e)| *s <= i && i <= *e)
            .min_by_key(|(s, e)| e - s)
            .copied()
    }

    /// Token accessor that tolerates out-of-range indices.
    #[must_use]
    pub fn tok(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    /// Whether `tokens[i..]` matches a sequence of identifiers/punctuation
    /// given as `("ident", "text")`-style pairs where kind is `i` for
    /// ident and `p` for punct.
    #[must_use]
    pub fn matches_seq(&self, i: usize, pattern: &[(char, &str)]) -> bool {
        pattern.iter().enumerate().all(|(k, (kind, text))| {
            self.tok(i + k).is_some_and(|t| match kind {
                'i' => t.kind == TokenKind::Ident && t.text == *text,
                'p' => t.kind == TokenKind::Punct && t.text == *text,
                _ => false,
            })
        })
    }
}

/// The whole workspace as seen by vslint: own-crate sources plus the two
/// documentation files rule 3 cross-checks.
pub struct Workspace {
    /// Lexed source files, sorted by path.
    pub files: Vec<SourceFile>,
    /// `(name, raw text)` for DESIGN.md / README.md when present.
    pub docs: Vec<(String, String)>,
}

impl Workspace {
    /// Loads the workspace rooted at `root`: every `.rs` file under
    /// `src/` and `crates/*/src/`, plus DESIGN.md and README.md.
    ///
    /// `vendor/` shims, `tests/`, `benches/`, and fixture trees are
    /// deliberately out of scope: vslint guards the production crates.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut sources: Vec<(String, String)> = Vec::new();
        collect_rs(&root.join("src"), root, &mut sources)?;
        let crates = root.join("crates");
        if crates.is_dir() {
            let mut members: Vec<_> = fs::read_dir(&crates)?
                .filter_map(Result::ok)
                .map(|e| e.path())
                .collect();
            members.sort();
            for member in members {
                collect_rs(&member.join("src"), root, &mut sources)?;
            }
        }
        let mut docs = Vec::new();
        for name in ["DESIGN.md", "README.md"] {
            if let Ok(text) = fs::read_to_string(root.join(name)) {
                docs.push((name.to_owned(), text));
            }
        }
        Ok(Workspace::from_sources(sources, docs))
    }

    /// Builds a workspace from in-memory sources — the fixture-test entry
    /// point. `files` holds `(workspace-relative path, source)` pairs.
    #[must_use]
    pub fn from_sources(files: Vec<(String, String)>, docs: Vec<(String, String)>) -> Workspace {
        let mut files: Vec<SourceFile> = files
            .into_iter()
            .map(|(path, src)| SourceFile::new(path, &src))
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace { files, docs }
    }

    /// Runs every rule and the suppression pipeline; returns findings
    /// sorted by `(file, line, rule)`.
    #[must_use]
    pub fn lint(&self) -> Vec<Diagnostic> {
        let mut raw: Vec<Diagnostic> = Vec::new();
        for file in &self.files {
            rules::no_panic::check(file, &mut raw);
            rules::hash_iter::check(file, &mut raw);
            rules::wall_clock::check(file, &mut raw);
            rules::float_sum::check(file, &mut raw);
            rules::forbid_unsafe::check(file, &mut raw);
            rules::lock_order::check(file, &mut raw);
        }
        rules::metric_registry::check(self, &mut raw);
        rules::span_registry::check(self, &mut raw);
        // The interprocedural rules share one call graph.
        let call_graph = graph::CallGraph::build(self);
        rules::panic_reach::check(self, &call_graph, &mut raw);
        rules::lock_graph::check(self, &call_graph, &mut raw);
        rules::reactor_blocking::check(self, &call_graph, &mut raw);

        let mut out: Vec<Diagnostic> = Vec::new();
        for file in &self.files {
            let mut allows = parse_allows(file);
            for diag in raw.iter().filter(|d| d.file == file.path) {
                let suppressed = allows
                    .iter_mut()
                    .find(|a| {
                        a.ok && a.rule == diag.rule
                            && (a.start_line..=a.end_line).contains(&diag.line)
                    })
                    .map(|a| a.used = true)
                    .is_some();
                if !suppressed {
                    out.push(diag.clone());
                }
            }
            for allow in &allows {
                if !allow.ok {
                    out.push(Diagnostic::new(
                        file.path.clone(),
                        allow.comment_line,
                        "bad-suppression",
                        format!(
                            "vslint::allow({}) requires a justification: \
                             `// vslint::allow({}): <why this is sound>`",
                            allow.rule, allow.rule
                        ),
                    ));
                } else if !allow.used {
                    out.push(Diagnostic::new(
                        file.path.clone(),
                        allow.comment_line,
                        "unused-suppression",
                        format!(
                            "vslint::allow({}) suppresses nothing on lines {}-{}; remove it",
                            allow.rule, allow.start_line, allow.end_line
                        ),
                    ));
                }
            }
        }
        // File-level findings (docs, missing-crate-root) carry paths not in
        // self.files' comment streams; pass them through unsuppressed.
        for diag in raw {
            if !self.files.iter().any(|f| f.path == diag.file) {
                out.push(diag);
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Renders diagnostics as a JSON array (`lint --json`): one object per
/// finding with `rule`, `file`, `line`, `message`, and — for
/// interprocedural findings — the call-path `witness`.
#[must_use]
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        let witness: Vec<String> = d
            .witness
            .iter()
            .map(|w| format!("\"{}\"", graph::json_escape(w)))
            .collect();
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \
             \"witness\": [{}]}}{}\n",
            graph::json_escape(d.rule),
            graph::json_escape(&d.file),
            d.line,
            graph::json_escape(&d.message),
            witness.join(", "),
            if i + 1 < diags.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

/// Recursively collects `.rs` files under `dir` into `out` with
/// root-relative forward-slash paths, sorted for determinism.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// A parsed `vslint::allow(rule)` suppression.
struct Allow {
    /// Rule id being suppressed.
    rule: String,
    /// First line the suppression applies to: the comment's own line for
    /// a trailing comment, the next code line otherwise.
    start_line: usize,
    /// Last line it applies to. A trailing comment covers exactly its own
    /// line; a standalone comment covers the whole statement that follows
    /// (through its terminating `;` or opening `{`), since diagnostics in
    /// a rustfmt-wrapped chain land on interior lines.
    end_line: usize,
    /// Line the comment itself sits on (for bad/unused diagnostics).
    comment_line: usize,
    /// Whether a non-empty justification followed the rule id.
    ok: bool,
    /// Whether any diagnostic matched.
    used: bool,
}

/// Extracts all suppression comments from a file.
fn parse_allows(file: &SourceFile) -> Vec<Allow> {
    let mut out = Vec::new();
    for comment in &file.comments {
        // Doc comments (`///`, `//!`, `/** */`) describe the suppression
        // syntax without invoking it; only plain comments suppress.
        if comment.text.starts_with('/')
            || comment.text.starts_with('!')
            || comment.text.starts_with('*')
        {
            continue;
        }
        let Some(pos) = comment.text.find("vslint::allow(") else {
            continue;
        };
        let rest = &comment.text[pos + "vslint::allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_owned();
        let after = &rest[close + 1..];
        let ok = after
            .strip_prefix(':')
            .is_some_and(|j| !j.trim().is_empty());
        let (start_line, end_line) = if comment.trailing {
            (comment.line, comment.line)
        } else {
            let first = file
                .tokens
                .iter()
                .position(|t| t.line >= comment.line)
                .unwrap_or(file.tokens.len());
            let start = file.tokens.get(first).map_or(comment.line + 1, |t| t.line);
            let end = file.tokens[first..]
                .iter()
                .find(|t| t.is_punct(';') || t.is_punct('{'))
                .map_or(start, |t| t.line);
            (start, end)
        };
        out.push(Allow {
            rule,
            start_line,
            end_line,
            comment_line: comment.line,
            ok,
            used: false,
        });
    }
    out
}

/// Marks every token belonging to a `#[cfg(test)]` or `#[test]` item
/// (including the attribute itself and the item's full body).
fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            if let Some((attr_end, is_test)) = scan_attr(tokens, i) {
                if is_test {
                    // Skip any further attributes on the same item.
                    let mut j = attr_end + 1;
                    while tokens.get(j).is_some_and(|t| t.is_punct('#'))
                        && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                    {
                        match scan_attr(tokens, j) {
                            Some((end, _)) => j = end + 1,
                            None => break,
                        }
                    }
                    let end = item_end(tokens, j);
                    for m in mask.iter_mut().take(end + 1).skip(i) {
                        *m = true;
                    }
                    i = end + 1;
                    continue;
                }
                i = attr_end + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// From a `#` at `i` followed by `[`, returns `(index of the closing ']',
/// whether the attribute is `#[test]` or contains `cfg(test)`)`.
fn scan_attr(tokens: &[Token], i: usize) -> Option<(usize, bool)> {
    let mut depth = 0usize;
    let mut j = i + 1;
    let mut inner: Vec<usize> = Vec::new();
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else {
            inner.push(j);
        }
        j += 1;
    }
    if j >= tokens.len() {
        return None;
    }
    // `#[test]`: the attribute body is the single ident `test`.
    let bare_test = inner.len() == 1 && tokens[inner[0]].is_ident("test");
    // `#[cfg(test)]`: ident `cfg`, `(`, ident `test` — `cfg(not(test))`
    // has `not` in the third slot and correctly does not match.
    let cfg_test = inner.windows(3).any(|w| {
        tokens[w[0]].is_ident("cfg") && tokens[w[1]].is_punct('(') && tokens[w[2]].is_ident("test")
    });
    Some((j, bare_test || cfg_test))
}

/// Returns the index of the token ending the item starting at `j`: the
/// matching `}` of its first body brace, or the terminating `;`.
pub(crate) fn item_end(tokens: &[Token], j: usize) -> usize {
    let mut k = j;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct(';') {
            return k;
        }
        if t.is_punct('{') {
            let mut depth = 1usize;
            let mut m = k + 1;
            while m < tokens.len() && depth > 0 {
                if tokens[m].is_punct('{') {
                    depth += 1;
                } else if tokens[m].is_punct('}') {
                    depth -= 1;
                }
                m += 1;
            }
            return m.saturating_sub(1);
        }
        k += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Finds every `fn` body as a token range `(open_brace + 1, close_brace)`.
fn compute_fn_bodies(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") {
            continue;
        }
        // Walk to the body `{`, stopping at `;` (trait method signature).
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut body = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if t.is_punct(';') && angle <= 0 {
                break;
            } else if t.is_punct('{') && angle <= 0 {
                body = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = body else { continue };
        let close = item_end(tokens, open);
        out.push((open + 1, close));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let f = SourceFile::new(
            "x.rs".into(),
            "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { b.unwrap(); }\n}\n",
        );
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| f.is_test(i))
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn test_mask_covers_test_fns_with_extra_attrs() {
        let f = SourceFile::new(
            "x.rs".into(),
            "#[test]\n#[allow(dead_code)]\nfn t() { b.unwrap(); }\nfn live() { a.unwrap(); }\n",
        );
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| f.is_test(i))
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let f = SourceFile::new(
            "x.rs".into(),
            "#[cfg(not(test))]\nfn live() { a.unwrap(); }\n",
        );
        let idx = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(!f.is_test(idx));
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let f = SourceFile::new(
            "x.rs".into(),
            "fn outer() {\n fn inner() { marker(); }\n other();\n}\n",
        );
        let marker = f.tokens.iter().position(|t| t.is_ident("marker")).unwrap();
        let other = f.tokens.iter().position(|t| t.is_ident("other")).unwrap();
        let inner = f.enclosing_fn(marker).unwrap();
        let outer = f.enclosing_fn(other).unwrap();
        assert!(inner.1 - inner.0 < outer.1 - outer.0);
        assert!(outer.0 <= inner.0 && inner.1 <= outer.1);
    }

    #[test]
    fn allows_parse_trailing_and_preceding() {
        let f = SourceFile::new(
            "x.rs".into(),
            "let a = x.foo(); // vslint::allow(no-panic): invariant holds\n\
             // vslint::allow(hash-iter): order-free aggregation\n\
             let b = y.bar();\n\
             // vslint::allow(wall-clock)\n\
             let c = now();\n",
        );
        let allows = parse_allows(&f);
        assert_eq!(allows.len(), 3);
        assert_eq!(
            (allows[0].rule.as_str(), allows[0].start_line, allows[0].ok),
            ("no-panic", 1, true)
        );
        assert_eq!(
            (allows[1].rule.as_str(), allows[1].start_line, allows[1].ok),
            ("hash-iter", 3, true)
        );
        // Missing justification → not ok.
        assert_eq!(
            (allows[2].rule.as_str(), allows[2].start_line, allows[2].ok),
            ("wall-clock", 5, false)
        );
    }

    #[test]
    fn standalone_allow_covers_the_whole_statement() {
        let f = SourceFile::new(
            "x.rs".into(),
            "// vslint::allow(hash-iter): spans the wrapped chain\n\
             let victim = self\n\
                 .entries\n\
                 .iter()\n\
                 .min_by_key(|(_, e)| e.last_used);\n",
        );
        let allows = parse_allows(&f);
        assert_eq!(allows.len(), 1);
        assert_eq!((allows[0].start_line, allows[0].end_line), (2, 5));
    }
}
