//! `viewseeker-xtask` — workspace automation.
//!
//! ```text
//! cargo run -p viewseeker-xtask -- lint [--root PATH]
//! ```
//!
//! Runs the vslint invariant linter over the workspace and exits non-zero
//! with `file:line: [rule] message` diagnostics when any rule fires. See
//! DESIGN.md §10 for the rule catalog.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use viewseeker_xtask::Workspace;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("usage: viewseeker-xtask lint [--root PATH]");
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "lint" => {
            let mut root: Option<PathBuf> = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => root = args.next().map(PathBuf::from),
                    other => {
                        eprintln!("vslint: unknown argument `{other}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let root = root.unwrap_or_else(workspace_root);
            lint(&root)
        }
        other => {
            eprintln!("viewseeker-xtask: unknown command `{other}` (try `lint`)");
            ExitCode::FAILURE
        }
    }
}

fn lint(root: &Path) -> ExitCode {
    let ws = match Workspace::load(root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "vslint: failed to load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let diags = ws.lint();
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!(
            "vslint: clean ({} files, {} docs)",
            ws.files.len(),
            ws.docs.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("vslint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the workspace root (the first
/// ancestor whose Cargo.toml declares `[workspace]`), so the linter works
/// from any subdirectory. Falls back to `.`.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
