//! `viewseeker-xtask` — workspace automation.
//!
//! ```text
//! cargo run -p viewseeker-xtask -- lint [--root PATH] [--json]
//! cargo run -p viewseeker-xtask -- graph [--root PATH] [--dot | --json]
//! ```
//!
//! `lint` runs the vslint invariant linter over the workspace and exits
//! non-zero with `file:line: [rule] message` diagnostics when any rule
//! fires (`--json` additionally writes the findings as a JSON array to
//! stdout for CI artifacts). `graph` builds the workspace call graph and
//! prints it as JSON (default, or `--json`) or Graphviz DOT (`--dot`).
//! See DESIGN.md §10 for the rule catalog and §15 for the call-graph
//! analysis.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use viewseeker_xtask::{diagnostics_json, graph::CallGraph, Workspace};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("usage: viewseeker-xtask <lint|graph> [--root PATH] [--json|--dot]");
        return ExitCode::FAILURE;
    };
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut dot = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--json" => json = true,
            "--dot" => dot = true,
            other => {
                eprintln!("viewseeker-xtask: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    match command.as_str() {
        "lint" => lint(&root, json),
        "graph" => graph(&root, dot),
        other => {
            eprintln!("viewseeker-xtask: unknown command `{other}` (try `lint` or `graph`)");
            ExitCode::FAILURE
        }
    }
}

fn load(root: &Path) -> Option<Workspace> {
    match Workspace::load(root) {
        Ok(ws) => Some(ws),
        Err(e) => {
            eprintln!(
                "viewseeker-xtask: failed to load workspace at {}: {e}",
                root.display()
            );
            None
        }
    }
}

fn lint(root: &Path, json: bool) -> ExitCode {
    let Some(ws) = load(root) else {
        return ExitCode::FAILURE;
    };
    let diags = ws.lint();
    if json {
        emit(&diagnostics_json(&diags));
    } else {
        let mut out = String::new();
        for d in &diags {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        emit(&out);
    }
    if diags.is_empty() {
        if !json {
            emit(&format!(
                "vslint: clean ({} files, {} docs)\n",
                ws.files.len(),
                ws.docs.len()
            ));
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            emit(&format!("vslint: {} violation(s)\n", diags.len()));
        }
        ExitCode::FAILURE
    }
}

fn graph(root: &Path, dot: bool) -> ExitCode {
    let Some(ws) = load(root) else {
        return ExitCode::FAILURE;
    };
    let g = CallGraph::build(&ws);
    if dot {
        emit(&g.to_dot());
    } else {
        emit(&g.to_json(&ws));
    }
    ExitCode::SUCCESS
}

/// Writes to stdout, swallowing broken-pipe errors so `graph --dot | head`
/// exits quietly instead of panicking when the reader closes early.
fn emit(text: &str) {
    use std::io::Write;
    let _ = std::io::stdout().write_all(text.as_bytes());
}

/// Walks up from the current directory to the workspace root (the first
/// ancestor whose Cargo.toml declares `[workspace]`), so the linter works
/// from any subdirectory. Falls back to `.`.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
