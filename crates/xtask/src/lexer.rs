//! A minimal token-level Rust lexer.
//!
//! This is not a parser: vslint's rules are all expressible over the token
//! stream (plus brace depth), which a few hundred lines of hand-rolled
//! lexing covers exactly — strings, raw strings, char-vs-lifetime
//! disambiguation, nested block comments — without any dependency. The
//! lexer must never panic on malformed input: worst case it produces odd
//! `Punct` tokens and a rule misses, which the workspace self-test would
//! surface as a missing diagnostic, not a crash.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#async`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (`42`, `0x1f`, `1.5e-9`, `8u64`).
    Number,
    /// String literal — `text` holds the *contents*, quotes stripped
    /// (covers `"…"`, `r"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`.`, `!`, `[`, `::` is two tokens).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text (for [`TokenKind::Str`], the unquoted contents).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// Whether this token is the identifier `word`.
    #[must_use]
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// Whether this token is the punctuation character `ch`.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }
}

/// One comment (line or block) with its 1-based starting line. `trailing`
/// is true when code tokens precede it on the same line — suppression
/// comments bind to that line; standalone comments bind to the next code
/// line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` framing.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Whether code tokens precede the comment on its line.
    pub trailing: bool,
}

/// The full lex of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in order (comments excluded).
    pub tokens: Vec<Token>,
    /// Comments in order.
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments.
#[must_use]
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut last_token_line = 0usize;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: source[start..i].to_owned(),
                    line,
                    trailing: last_token_line == line,
                });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: source[start..end].to_owned(),
                    line: start_line,
                    trailing: last_token_line == start_line,
                });
            }
            b'"' => {
                let (text, consumed, newlines) = lex_string(&source[i..]);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                });
                last_token_line = line;
                line += newlines;
                i += consumed;
            }
            b'r' | b'b' if starts_string_prefix(bytes, i) => {
                let (kind, text, consumed, newlines) = lex_prefixed_literal(&source[i..]);
                out.tokens.push(Token { kind, text, line });
                last_token_line = line;
                line += newlines;
                i += consumed;
            }
            b'\'' => {
                let (token, consumed, newlines) = lex_quote(&source[i..], line);
                out.tokens.push(token);
                last_token_line = line;
                line += newlines;
                i += consumed;
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[start..i].to_owned(),
                    line,
                });
                last_token_line = line;
            }
            b if b.is_ascii_digit() => {
                let (text, consumed) = lex_number(&source[i..]);
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text,
                    line,
                });
                last_token_line = line;
                i += consumed;
            }
            _ => {
                // Any other byte (including UTF-8 continuation bytes inside
                // punctuation-adjacent unicode) becomes a 1-char Punct.
                let ch_len = utf8_len(b);
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: source[i..(i + ch_len).min(source.len())].to_owned(),
                    line,
                });
                last_token_line = line;
                i += ch_len;
            }
        }
    }
    out
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Whether position `i` (an `r` or `b`) starts a raw/byte string or raw
/// identifier prefix rather than a plain identifier.
fn starts_string_prefix(bytes: &[u8], i: usize) -> bool {
    // Only if the previous byte can't extend an identifier into this one.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match bytes.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(bytes.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Lexes a `"…"` string starting at the quote. Returns (contents, bytes
/// consumed, newlines crossed).
fn lex_string(s: &str) -> (String, usize, usize) {
    let bytes = s.as_bytes();
    let mut i = 1usize;
    let mut newlines = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => {
                return (s[1..i].to_owned(), i + 1, newlines);
            }
            _ => i += 1,
        }
    }
    (s[1..].to_owned(), bytes.len(), newlines)
}

/// Lexes an `r`/`b`-prefixed literal (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
/// `b'x'`) or a raw identifier (`r#ident`). Returns (kind, text, consumed,
/// newlines).
fn lex_prefixed_literal(s: &str) -> (TokenKind, String, usize, usize) {
    let bytes = s.as_bytes();
    let mut i = 0usize;
    if bytes[i] == b'b' {
        i += 1;
        if bytes.get(i) == Some(&b'\'') {
            let (token, consumed, newlines) = lex_quote(&s[i..], 0);
            return (TokenKind::Char, token.text, i + consumed, newlines);
        }
    }
    if bytes.get(i) == Some(&b'r') {
        i += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        // `r#ident` raw identifier: lex the ident part.
        let start = i;
        let mut j = i;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        return (TokenKind::Ident, s[start..j].to_owned(), j, 0);
    }
    i += 1; // opening quote
    let body_start = i;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    let mut newlines = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            newlines += 1;
        }
        if bytes[i] == b'"' && bytes[i..].starts_with(&closer) {
            let text = s[body_start..i].to_owned();
            return (TokenKind::Str, text, i + closer.len(), newlines);
        }
        // Raw strings have no escapes; plain `b"…"` does.
        if hashes == 0 && bytes[i] == b'\\' && s.as_bytes().first() == Some(&b'b') {
            i += 2;
            continue;
        }
        i += 1;
    }
    (
        TokenKind::Str,
        s[body_start..].to_owned(),
        bytes.len(),
        newlines,
    )
}

/// Lexes a `'`-introduced token: lifetime or char literal.
fn lex_quote(s: &str, line: usize) -> (Token, usize, usize) {
    let bytes = s.as_bytes();
    // Lifetime: 'ident not closed by another quote.
    if bytes.len() > 1 && (bytes[1].is_ascii_alphabetic() || bytes[1] == b'_') {
        let mut j = 2usize;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if bytes.get(j) != Some(&b'\'') {
            return (
                Token {
                    kind: TokenKind::Lifetime,
                    text: s[1..j].to_owned(),
                    line,
                },
                j,
                0,
            );
        }
    }
    // Char literal: consume through the closing quote, honoring escapes.
    let mut i = 1usize;
    let mut newlines = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'\'' => {
                return (
                    Token {
                        kind: TokenKind::Char,
                        text: s[1..i].to_owned(),
                        line,
                    },
                    i + 1,
                    newlines,
                );
            }
            _ => i += 1,
        }
    }
    (
        Token {
            kind: TokenKind::Char,
            text: s[1..].to_owned(),
            line,
        },
        bytes.len(),
        newlines,
    )
}

/// Lexes a numeric literal. Returns (text, bytes consumed).
fn lex_number(s: &str) -> (String, usize) {
    let bytes = s.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphanumeric() || b == b'_' {
            // Exponent sign: `1e-9` / `1E+9`.
            if (b == b'e' || b == b'E')
                && matches!(bytes.get(i + 1), Some(b'+') | Some(b'-'))
                && bytes.get(i + 2).is_some_and(u8::is_ascii_digit)
            {
                i += 2;
            }
            i += 1;
        } else if b == b'.' {
            // Consume a fraction only when a digit follows: `1.5` yes,
            // `1..n` (range) and `1.method()` no.
            if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                i += 1;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    (s[..i].to_owned(), i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let toks = kinds("let x = a.unwrap();");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(toks[3], (TokenKind::Ident, "a".into()));
        assert_eq!(toks[4], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[5], (TokenKind::Ident, "unwrap".into()));
    }

    #[test]
    fn strings_and_raw_strings() {
        let toks = kinds(r####"("plain", r"raw", r#"ra"w"#, b"bytes")"####);
        let strs: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(strs, vec!["plain", "raw", "ra\"w", "bytes"]);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let toks = kinds(r#"x = "a\"b";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t == "a\\\"b"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "a"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Char && t == "x"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "\\n"));
    }

    #[test]
    fn comments_and_trailing_flags() {
        let lexed =
            lex("let a = 1; // trailing\n// standalone\nlet b = 2;\n/* block */ let c = 3;");
        assert_eq!(lexed.comments.len(), 3);
        assert!(lexed.comments[0].trailing);
        assert_eq!(lexed.comments[0].text.trim(), "trailing");
        assert!(!lexed.comments[1].trailing);
        assert!(!lexed.comments[2].trailing);
        assert_eq!(lexed.comments[2].text.trim(), "block");
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still */ fn x() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn line_numbers_cross_multiline_strings() {
        let lexed = lex("let a = \"one\ntwo\";\nlet b = 1;");
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn number_does_not_swallow_ranges() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "10"));
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokenKind::Punct && t == ".")
                .count(),
            2
        );
    }

    #[test]
    fn float_and_suffix_numbers() {
        let toks = kinds("let x = 1.5e-9; let y = 8u64; let z = 0x1f;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "1.5e-9"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "8u64"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "0x1f"));
    }
}
