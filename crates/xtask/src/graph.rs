//! The intra-workspace call graph: name resolution over the `fn` items
//! extracted by [`crate::items`], plus the JSON/DOT exports behind
//! `cargo run -p viewseeker-xtask -- graph`.
//!
//! Resolution is heuristic and *honest about it*: every call site ends
//! in exactly one of three buckets —
//!
//! * **resolved** — an [`Edge`] to a unique workspace `fn`;
//! * **unresolved** — the name matches workspace fns but no unique
//!   target could be picked (dyn-trait dispatch, generic receivers,
//!   ambiguous names); recorded with its candidate set, never silently
//!   dropped;
//! * **external** — the name matches nothing in the workspace (std,
//!   vendored deps); only counted.
//!
//! Method receivers are typed by a small per-function inference pass:
//! `self` through the enclosing `impl`, `self.field` through struct
//! field declarations, locals through parameter types, `let`
//! ascriptions, `Type::new(..)`-style initializers, and
//! `Some(x)`/`Ok(x)` unwraps of typed expressions. What the pass cannot
//! type falls back to unique-name matching (crate-local first), and
//! from there to the unresolved bucket. The known limits are documented
//! in DESIGN.md §15.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::items::{extract_fns, field_map, file_info, is_keyword, FileInfo, FnItem};
use crate::lexer::TokenKind;
use crate::{SourceFile, Workspace};

/// How a call site was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(..)`.
    Method,
    /// `name(..)`.
    Free,
    /// `path::name(..)` / `Type::name(..)`.
    Path,
}

impl CallKind {
    fn label(self) -> &'static str {
        match self {
            CallKind::Method => "method",
            CallKind::Free => "free",
            CallKind::Path => "path",
        }
    }
}

/// A resolved call edge. One edge per `(caller, callee)` pair; `line`
/// is the first call site.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Calling fn (index into [`CallGraph::fns`]).
    pub caller: usize,
    /// Called fn.
    pub callee: usize,
    /// Token index of the call-site name in the caller's file.
    pub token: usize,
    /// 1-based line of the call site.
    pub line: usize,
    /// How the target was picked (`self-method`, `field-type`, ...).
    pub via: &'static str,
}

/// A call whose name matches workspace fns but resolved to no unique
/// target.
#[derive(Debug, Clone)]
pub struct Unresolved {
    /// Calling fn.
    pub caller: usize,
    /// The called name.
    pub name: String,
    /// Call shape.
    pub kind: CallKind,
    /// 1-based line of the call site.
    pub line: usize,
    /// Workspace fns the name could refer to.
    pub candidates: Vec<usize>,
}

/// The workspace call graph.
pub struct CallGraph {
    /// Every `fn` item, in file order (files sorted by path).
    pub fns: Vec<FnItem>,
    /// Per-file resolution facts, parallel to `Workspace::files`.
    pub infos: Vec<FileInfo>,
    /// Resolved edges, deduplicated per `(caller, callee)`.
    pub edges: Vec<Edge>,
    /// Adjacency: outgoing edge indices per fn.
    pub out: Vec<Vec<usize>>,
    /// Ambiguous calls with their candidate sets.
    pub unresolved: Vec<Unresolved>,
    /// Calls whose names match nothing in the workspace (std/vendored).
    pub external_calls: usize,
    /// Every `(file index, token index)` call site that resolved to a
    /// workspace fn — including sites deduplicated out of `edges`.
    pub resolved_sites: BTreeSet<(usize, usize)>,
}

impl CallGraph {
    /// Builds the graph for `ws`.
    #[must_use]
    pub fn build(ws: &Workspace) -> CallGraph {
        Builder::new(ws).build()
    }

    /// The innermost fn of `file` whose body contains token `i` — the fn
    /// a token-level finding is attributed to.
    pub(crate) fn innermost_fn(&self, file_index: usize, i: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file_index && f.body.is_some_and(|(s, e)| s <= i && i <= e))
            .min_by_key(|(_, f)| f.body.map_or(usize::MAX, |(s, e)| e - s))
            .map(|(idx, _)| idx)
    }

    /// BFS over resolved edges from `entries`; returns, per reached fn,
    /// the `(parent fn, edge)` it was first reached through (`None` for
    /// entries themselves).
    #[must_use]
    pub fn reach(&self, entries: &[usize]) -> BTreeMap<usize, Option<(usize, usize)>> {
        let mut seen: BTreeMap<usize, Option<(usize, usize)>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &e in entries {
            if seen.insert(e, None).is_none() {
                queue.push_back(e);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &ei in &self.out[f] {
                let edge = &self.edges[ei];
                if let std::collections::btree_map::Entry::Vacant(v) = seen.entry(edge.callee) {
                    v.insert(Some((f, ei)));
                    queue.push_back(edge.callee);
                }
            }
        }
        seen
    }

    /// The call path from an entry to `target` under a [`CallGraph::reach`]
    /// tree, as qualified fn names.
    #[must_use]
    pub fn witness(
        &self,
        tree: &BTreeMap<usize, Option<(usize, usize)>>,
        target: usize,
    ) -> Vec<String> {
        let mut path = vec![self.fns[target].qualified()];
        let mut cur = target;
        while let Some(Some((parent, _))) = tree.get(&cur) {
            path.push(self.fns[*parent].qualified());
            cur = *parent;
        }
        path.reverse();
        path
    }

    /// Renders the graph as JSON (stable field and element order).
    #[must_use]
    pub fn to_json(&self, ws: &Workspace) -> String {
        let mut out = String::from("{\n  \"fns\": [\n");
        for (i, f) in self.fns.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {i}, \"fn\": \"{}\", \"file\": \"{}\", \"line\": {}, \
                 \"test\": {}}}{}\n",
                json_escape(&f.qualified()),
                json_escape(&ws.files[f.file].path),
                f.line,
                f.is_test,
                comma(i, self.fns.len()),
            ));
        }
        out.push_str("  ],\n  \"edges\": [\n");
        for (i, e) in self.edges.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"from\": {}, \"to\": {}, \"line\": {}, \"via\": \"{}\"}}{}\n",
                e.caller,
                e.callee,
                e.line,
                e.via,
                comma(i, self.edges.len()),
            ));
        }
        out.push_str("  ],\n  \"unresolved\": [\n");
        for (i, u) in self.unresolved.iter().enumerate() {
            let cands: Vec<String> = u.candidates.iter().map(ToString::to_string).collect();
            out.push_str(&format!(
                "    {{\"from\": {}, \"call\": \"{}\", \"kind\": \"{}\", \"line\": {}, \
                 \"candidates\": [{}]}}{}\n",
                u.caller,
                json_escape(&u.name),
                u.kind.label(),
                u.line,
                cands.join(", "),
                comma(i, self.unresolved.len()),
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"external_calls\": {}\n}}\n",
            self.external_calls
        ));
        out
    }

    /// Renders the resolved graph as Graphviz DOT (non-test fns with at
    /// least one edge).
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut used: BTreeSet<usize> = BTreeSet::new();
        for e in &self.edges {
            used.insert(e.caller);
            used.insert(e.callee);
        }
        let mut out = String::from("digraph viewseeker_calls {\n  rankdir=LR;\n");
        for &i in &used {
            out.push_str(&format!(
                "  n{i} [label=\"{}\"];\n",
                self.fns[i].qualified().replace('"', "\\\"")
            ));
        }
        for e in &self.edges {
            out.push_str(&format!("  n{} -> n{};\n", e.caller, e.callee));
        }
        out.push_str("}\n");
        out
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// Escapes a string for a JSON literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Builder<'w> {
    ws: &'w Workspace,
    fns: Vec<FnItem>,
    infos: Vec<FileInfo>,
    /// All capitalized names the workspace defines (impl targets and
    /// structs) — the filter for "is this type ours".
    ws_types: BTreeSet<String>,
    /// `(self_ty, name)` -> fn indices.
    by_type: BTreeMap<(String, String), Vec<usize>>,
    /// `(module, name)` -> free fn indices.
    by_module: BTreeMap<(String, String), Vec<usize>>,
    /// method name -> fn indices (fns with a self type).
    methods: BTreeMap<String, Vec<usize>>,
    /// free fn name -> fn indices.
    frees: BTreeMap<String, Vec<usize>>,
    /// `(owner, field)` -> type idents.
    fields: BTreeMap<(String, String), Vec<String>>,
    /// Known crate segments (`net`, `server`, ...).
    crates: BTreeSet<String>,
}

impl<'w> Builder<'w> {
    fn new(ws: &'w Workspace) -> Builder<'w> {
        let mut fns = Vec::new();
        let mut infos = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            fns.extend(extract_fns(file, fi));
            infos.push(file_info(file));
        }
        let fields = field_map(&infos);
        let mut ws_types: BTreeSet<String> = fields.keys().map(|(o, _)| o.clone()).collect();
        let mut by_type = BTreeMap::new();
        let mut by_module = BTreeMap::new();
        let mut methods: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut frees: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            match &f.self_ty {
                Some(ty) => {
                    ws_types.insert(ty.clone());
                    by_type
                        .entry((ty.clone(), f.name.clone()))
                        .or_insert_with(Vec::new)
                        .push(i);
                    methods.entry(f.name.clone()).or_default().push(i);
                }
                None => {
                    by_module
                        .entry((f.module.clone(), f.name.clone()))
                        .or_insert_with(Vec::new)
                        .push(i);
                    frees.entry(f.name.clone()).or_default().push(i);
                }
            }
        }
        let crates = infos.iter().map(|i| i.crate_name.clone()).collect();
        Builder {
            ws,
            fns,
            infos,
            ws_types,
            by_type,
            by_module,
            methods,
            frees,
            fields,
            crates,
        }
    }

    fn build(mut self) -> CallGraph {
        let mut edges: Vec<Edge> = Vec::new();
        let mut edge_set: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut resolved_sites: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut unresolved: Vec<Unresolved> = Vec::new();
        let mut external = 0usize;
        // Per file: body intervals for call-site attribution.
        let fn_count = self.fns.len();
        for caller in 0..fn_count {
            let Some((bs, be)) = self.fns[caller].body else {
                continue;
            };
            if self.fns[caller].is_test {
                continue;
            }
            let file_index = self.fns[caller].file;
            let file = &self.ws.files[file_index];
            let locals = self.local_types(file, caller);
            let mut i = bs;
            while i <= be && i < file.tokens.len() {
                let site = self.call_site(file, i);
                let Some((name, kind)) = site else {
                    i += 1;
                    continue;
                };
                // Attribute to the innermost fn: skip sites belonging to
                // a nested fn item.
                if !self.innermost_is(file_index, i, caller) || file.is_test(i) {
                    i += 1;
                    continue;
                }
                match self.resolve(file, caller, i, &name, kind, &locals) {
                    Resolution::Target(callee, via) => {
                        resolved_sites.insert((file_index, i));
                        if edge_set.insert((caller, callee)) {
                            edges.push(Edge {
                                caller,
                                callee,
                                token: i,
                                line: file.tokens[i].line,
                                via,
                            });
                        }
                    }
                    Resolution::Ambiguous(candidates) => unresolved.push(Unresolved {
                        caller,
                        name,
                        kind,
                        line: file.tokens[i].line,
                        candidates,
                    }),
                    Resolution::External => external += 1,
                }
                i += 1;
            }
        }
        edges.sort_by_key(|e| (e.caller, e.callee));
        let mut out = vec![Vec::new(); self.fns.len()];
        for (i, e) in edges.iter().enumerate() {
            out[e.caller].push(i);
        }
        unresolved.sort_by_key(|a| (a.caller, a.line));
        CallGraph {
            fns: std::mem::take(&mut self.fns),
            infos: std::mem::take(&mut self.infos),
            edges,
            out,
            unresolved,
            external_calls: external,
            resolved_sites,
        }
    }

    /// Whether `caller` is the innermost fn containing token `i`.
    fn innermost_is(&self, file_index: usize, i: usize, caller: usize) -> bool {
        let mut best = usize::MAX;
        let mut best_idx = caller;
        for (idx, f) in self.fns.iter().enumerate() {
            if f.file != file_index {
                continue;
            }
            if let Some((s, e)) = f.body {
                if s <= i && i <= e && e - s < best {
                    best = e - s;
                    best_idx = idx;
                }
            }
        }
        best_idx == caller
    }

    /// Classifies token `i` as a call-site name, if it is one.
    fn call_site(&self, file: &SourceFile, i: usize) -> Option<(String, CallKind)> {
        let t = file.tok(i)?;
        if t.kind != TokenKind::Ident || is_keyword(&t.text) {
            return None;
        }
        if !file.tok(i + 1).is_some_and(|p| p.is_punct('(')) {
            return None;
        }
        let prev = if i > 0 {
            Some(&file.tokens[i - 1])
        } else {
            None
        };
        match prev {
            Some(p) if p.is_punct('.') => Some((t.text.clone(), CallKind::Method)),
            Some(p) if p.is_punct(':') && i >= 2 && file.tokens[i - 2].is_punct(':') => {
                Some((t.text.clone(), CallKind::Path))
            }
            Some(p) if p.is_ident("fn") => None,
            _ => {
                // Bare call. Uppercase-initial names are tuple-struct or
                // enum-variant constructors, not fns.
                if t.text.chars().next().is_some_and(char::is_uppercase) {
                    return None;
                }
                Some((t.text.clone(), CallKind::Free))
            }
        }
    }

    /// Resolves the call at token `i`.
    fn resolve(
        &self,
        file: &SourceFile,
        caller: usize,
        i: usize,
        name: &str,
        kind: CallKind,
        locals: &BTreeMap<String, Vec<String>>,
    ) -> Resolution {
        match kind {
            CallKind::Method => self.resolve_method(file, caller, i, name, locals),
            CallKind::Path => self.resolve_path(file, caller, i, name),
            CallKind::Free => self.resolve_free(file, caller, name),
        }
    }

    fn resolve_method(
        &self,
        file: &SourceFile,
        caller: usize,
        i: usize,
        name: &str,
        locals: &BTreeMap<String, Vec<String>>,
    ) -> Resolution {
        let recv = receiver_chain(file, i)
            .map(|segs| self.chain_types_known(caller, &segs, locals))
            .unwrap_or(RecvTy::Unknown);
        match recv {
            RecvTy::Known(tys) if !tys.is_empty() => {
                let mut hits: Vec<usize> = Vec::new();
                for ty in &tys {
                    if let Some(list) = self.by_type.get(&(ty.clone(), name.to_owned())) {
                        hits.extend(list.iter().copied());
                    }
                }
                match self.prefer(caller, file, hits) {
                    Picked::One(idx) => Resolution::Target(idx, "receiver-type"),
                    Picked::Many(c) => Resolution::Ambiguous(c),
                    // Typed receiver, but the method is not a workspace fn
                    // (derived impls, std methods on our types).
                    Picked::None => Resolution::External,
                }
            }
            // Receiver typed to a non-workspace type (std containers,
            // guards): the call is external.
            RecvTy::Known(_) => Resolution::External,
            RecvTy::Unknown => {
                // Untyped receiver: unique-name fallback — but never for
                // ubiquitous std method names, where a lone same-named
                // workspace method would fabricate edges.
                if STD_METHOD_NAMES.contains(&name) {
                    return Resolution::External;
                }
                let all = self.methods.get(name).cloned().unwrap_or_default();
                match self.prefer(caller, file, all) {
                    Picked::One(idx) => Resolution::Target(idx, "unique-name"),
                    Picked::Many(c) => Resolution::Ambiguous(c),
                    Picked::None => Resolution::External,
                }
            }
        }
    }

    fn resolve_path(&self, file: &SourceFile, caller: usize, i: usize, name: &str) -> Resolution {
        let segs = path_segments(file, i);
        if segs.is_empty() {
            return Resolution::External;
        }
        let last = segs.last().map(String::as_str).unwrap_or("");
        let is_type = last == "Self" || last.chars().next().is_some_and(char::is_uppercase);
        if is_type {
            let ty = if last == "Self" {
                match &self.fns[caller].self_ty {
                    Some(t) => t.clone(),
                    None => return Resolution::External,
                }
            } else {
                last.to_owned()
            };
            // A module prefix before the type (`thread::Builder::new`)
            // must itself resolve to a workspace module; otherwise the
            // path is external no matter which workspace types share the
            // bare name.
            if last != "Self" && segs.len() >= 2 {
                let prefix = &segs[..segs.len() - 1];
                if self.normalize_module(caller, file, prefix).is_none() {
                    return Resolution::External;
                }
            }
            let mut hits = self
                .by_type
                .get(&(ty.clone(), name.to_owned()))
                .cloned()
                .unwrap_or_default();
            // A bare `Type::method` call can only target a type that is
            // in scope: defined in the caller's crate or imported by
            // `use`. Without this, `thread::Builder::new()` would hit any
            // private workspace type that happens to be named `Builder`.
            if last != "Self" && segs.len() == 1 {
                let info = &self.infos[self.fns[caller].file];
                if !info.uses.iter().any(|u| u.alias == ty) {
                    let caller_crate = self.fns[caller]
                        .module
                        .split("::")
                        .next()
                        .unwrap_or("")
                        .to_owned();
                    hits.retain(|&f| {
                        self.fns[f].module.split("::").next() == Some(caller_crate.as_str())
                    });
                }
            }
            return match self.prefer(caller, file, hits) {
                Picked::One(idx) => Resolution::Target(idx, "assoc-type"),
                Picked::Many(c) => Resolution::Ambiguous(c),
                Picked::None => Resolution::External,
            };
        }
        // Module path: normalize to workspace module naming.
        let module = self.normalize_module(caller, file, &segs);
        if let Some(module) = module {
            if let Some(list) = self.by_module.get(&(module.clone(), name.to_owned())) {
                if let Picked::One(idx) = self.prefer(caller, file, list.clone()) {
                    return Resolution::Target(idx, "module-path");
                }
            }
        }
        // Fall back to suffix matching on the raw path.
        let suffix = segs.join("::");
        let mut hits: Vec<usize> = self
            .frees
            .get(name)
            .map(|list| {
                list.iter()
                    .copied()
                    .filter(|&f| self.fns[f].module.ends_with(&suffix))
                    .collect()
            })
            .unwrap_or_default();
        if hits.is_empty() {
            hits = self.frees.get(name).cloned().unwrap_or_default();
        }
        match self.prefer(caller, file, hits) {
            Picked::One(idx) => Resolution::Target(idx, "module-suffix"),
            Picked::Many(c) => Resolution::Ambiguous(c),
            Picked::None => Resolution::External,
        }
    }

    fn resolve_free(&self, file: &SourceFile, caller: usize, name: &str) -> Resolution {
        // Same module, then ancestor modules.
        let mut module = self.fns[caller].module.clone();
        loop {
            if let Some(list) = self.by_module.get(&(module.clone(), name.to_owned())) {
                if let Picked::One(idx) = self.prefer(caller, file, list.clone()) {
                    return Resolution::Target(idx, "same-module");
                }
            }
            match module.rfind("::") {
                Some(pos) => module.truncate(pos),
                None => break,
            }
        }
        // Imported by `use`.
        let info = &self.infos[self.fns[caller].file];
        if let Some(import) = info.uses.iter().find(|u| u.alias == name) {
            if import.path.len() >= 2 {
                let mod_segs: Vec<String> = import.path[..import.path.len() - 1].to_vec();
                if let Some(module) = self.normalize_module(caller, file, &mod_segs) {
                    if let Some(list) = self.by_module.get(&(module, name.to_owned())) {
                        if let Picked::One(idx) = self.prefer(caller, file, list.clone()) {
                            return Resolution::Target(idx, "use-import");
                        }
                    }
                }
            }
        }
        // Unique across the workspace, crate-local first.
        let all = self.frees.get(name).cloned().unwrap_or_default();
        match self.prefer(caller, file, all) {
            Picked::One(idx) => Resolution::Target(idx, "unique-name"),
            Picked::Many(c) => Resolution::Ambiguous(c),
            Picked::None => Resolution::External,
        }
    }

    /// Converts raw path segments (`crate::x`, `super::y`,
    /// `viewseeker_net::http1`, `http1` via `use`) to a workspace module
    /// path.
    fn normalize_module(
        &self,
        caller: usize,
        _file: &SourceFile,
        segs: &[String],
    ) -> Option<String> {
        let caller_module = &self.fns[caller].module;
        let caller_crate = caller_module.split("::").next().unwrap_or("");
        let mut parts: Vec<String> = Vec::new();
        let mut rest = segs;
        match segs.first().map(String::as_str) {
            Some("crate") => {
                parts.push(caller_crate.to_owned());
                rest = &segs[1..];
            }
            Some("self") => {
                parts.extend(caller_module.split("::").map(str::to_owned));
                rest = &segs[1..];
            }
            Some("super") => {
                let mut base: Vec<String> = caller_module.split("::").map(str::to_owned).collect();
                let mut k = 0;
                while segs.get(k).is_some_and(|s| s == "super") {
                    base.pop();
                    k += 1;
                }
                parts.extend(base);
                rest = &segs[k..];
            }
            Some(first) => {
                if let Some(stripped) = first.strip_prefix("viewseeker_") {
                    let dir = stripped.replace('_', "-");
                    if self.crates.contains(stripped) {
                        parts.push(stripped.to_owned());
                    } else if self.crates.contains(&dir) {
                        parts.push(dir);
                    } else {
                        return None;
                    }
                    rest = &segs[1..];
                } else if first == "viewseeker" && self.crates.contains("viewseeker") {
                    parts.push("viewseeker".to_owned());
                    rest = &segs[1..];
                } else if self.crates.contains(first) && first != caller_crate {
                    // A sibling crate referenced by its directory name —
                    // only plausible in fixtures where crate names have no
                    // prefix.
                    parts.push(first.to_owned());
                    rest = &segs[1..];
                } else {
                    // A child module of the caller's module or an ancestor.
                    let mut base: Vec<String> =
                        caller_module.split("::").map(str::to_owned).collect();
                    loop {
                        let probe = format!("{}::{}", base.join("::"), first);
                        if self.infos.iter().any(|inf| {
                            inf.module == probe || inf.module.starts_with(&format!("{probe}::"))
                        }) || self.by_module.keys().any(|(m, _)| *m == probe)
                        {
                            parts.extend(base);
                            break;
                        }
                        if base.pop().is_none() || base.is_empty() {
                            // Try an alias from `use` (module import).
                            let info = &self.infos[self.fns[caller].file];
                            if let Some(import) = info.uses.iter().find(|u| u.alias == *first) {
                                let expanded: Vec<String> = import
                                    .path
                                    .iter()
                                    .cloned()
                                    .chain(segs[1..].iter().cloned())
                                    .collect();
                                return self.normalize_module(caller, _file, &expanded);
                            }
                            return None;
                        }
                    }
                }
            }
            None => return None,
        }
        parts.extend(rest.iter().cloned());
        Some(parts.join("::"))
    }

    /// Narrows candidate fns: a unique candidate wins; otherwise prefer
    /// the caller's crate, then types imported into the caller's file.
    fn prefer(&self, caller: usize, _file: &SourceFile, mut hits: Vec<usize>) -> Picked {
        hits.sort_unstable();
        hits.dedup();
        if hits.len() == 1 {
            return Picked::One(hits[0]);
        }
        if hits.is_empty() {
            return Picked::None;
        }
        let caller_crate = self.fns[caller]
            .module
            .split("::")
            .next()
            .unwrap_or("")
            .to_owned();
        let local: Vec<usize> = hits
            .iter()
            .copied()
            .filter(|&f| self.fns[f].module.split("::").next() == Some(caller_crate.as_str()))
            .collect();
        if local.len() == 1 {
            return Picked::One(local[0]);
        }
        let info = &self.infos[self.fns[caller].file];
        let imported: Vec<usize> = hits
            .iter()
            .copied()
            .filter(|&f| {
                self.fns[f]
                    .self_ty
                    .as_ref()
                    .is_some_and(|ty| info.uses.iter().any(|u| u.alias == *ty))
            })
            .collect();
        if imported.len() == 1 {
            return Picked::One(imported[0]);
        }
        Picked::Many(hits)
    }

    /// Candidate workspace types for a receiver chain (`["self", "conns"]`).
    fn chain_types(
        &self,
        caller: usize,
        segs: &[String],
        locals: &BTreeMap<String, Vec<String>>,
    ) -> Vec<String> {
        match self.chain_types_known(caller, segs, locals) {
            RecvTy::Known(tys) => tys,
            RecvTy::Unknown => Vec::new(),
        }
    }

    /// Like [`Builder::chain_types`], but distinguishes "typed to nothing
    /// of ours" (Known but empty) from "no type information at all".
    fn chain_types_known(
        &self,
        caller: usize,
        segs: &[String],
        locals: &BTreeMap<String, Vec<String>>,
    ) -> RecvTy {
        let mut set: Vec<String> = match segs.first().map(String::as_str) {
            Some("self") => match &self.fns[caller].self_ty {
                Some(t) => vec![t.clone()],
                None => return RecvTy::Unknown,
            },
            Some(var) => match locals.get(var) {
                Some(tys) => tys.clone(),
                None => return RecvTy::Unknown,
            },
            None => return RecvTy::Unknown,
        };
        for field in &segs[1..] {
            let mut next: Vec<String> = Vec::new();
            for ty in &set {
                if let Some(tys) = self.fields.get(&(ty.clone(), field.clone())) {
                    next.extend(tys.iter().filter(|t| self.ws_types.contains(*t)).cloned());
                }
            }
            next.sort();
            next.dedup();
            set = next;
        }
        set.retain(|t| self.ws_types.contains(t));
        RecvTy::Known(set)
    }

    /// Per-function local/parameter type candidates.
    fn local_types(&self, file: &SourceFile, caller: usize) -> BTreeMap<String, Vec<String>> {
        let item = &self.fns[caller];
        let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
        // Parameters: `name: <type>` pairs at paren depth 0.
        let (ps, pe) = item.params;
        let mut depth = 0i32;
        let mut j = ps;
        while j <= pe && j < file.tokens.len() {
            let t = &file.tokens[j];
            if t.is_punct('(') || t.is_punct('<') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct('>') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0
                && t.kind == TokenKind::Ident
                && !is_keyword(&t.text)
                && file.tok(j + 1).is_some_and(|c| c.is_punct(':'))
                && !file.tok(j + 2).is_some_and(|c| c.is_punct(':'))
            {
                let tys = self.type_idents(file, j + 2, pe + 1);
                if !tys.is_empty() {
                    out.insert(t.text.clone(), tys);
                }
            }
            j += 1;
        }
        let Some((bs, be)) = item.body else {
            return out;
        };
        // `let` bindings (plain, ascribed, and Some/Ok destructuring).
        let mut i = bs;
        while i <= be && i < file.tokens.len() {
            if !file.tokens[i].is_ident("let") {
                i += 1;
                continue;
            }
            let mut k = i + 1;
            if file.tok(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            // `let Some(x)` / `let Ok(x)` — bind the inner ident.
            let (bind, after) = if file
                .tok(k)
                .is_some_and(|t| t.is_ident("Some") || t.is_ident("Ok"))
                && file.tok(k + 1).is_some_and(|p| p.is_punct('('))
            {
                let mut inner = k + 2;
                if file.tok(inner).is_some_and(|t| t.is_ident("mut")) {
                    inner += 1;
                }
                while file
                    .tok(inner)
                    .is_some_and(|t| t.is_punct('&') || t.is_ident("ref"))
                {
                    inner += 1;
                }
                match file.tok(inner) {
                    Some(t) if t.kind == TokenKind::Ident => (Some(t.text.clone()), inner + 2),
                    _ => (None, k + 1),
                }
            } else {
                match file.tok(k) {
                    Some(t) if t.kind == TokenKind::Ident && !is_keyword(&t.text) => {
                        (Some(t.text.clone()), k + 1)
                    }
                    _ => (None, k + 1),
                }
            };
            let Some(bind) = bind else {
                i += 1;
                continue;
            };
            // Statement extent: to `;` or `{` (let-else / if-let body).
            let mut stmt_end = after;
            let mut d = 0i32;
            while let Some(t) = file.tok(stmt_end) {
                if t.is_punct('(') || t.is_punct('[') {
                    d += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    d -= 1;
                } else if (t.is_punct(';') || t.is_punct('{')) && d <= 0 {
                    break;
                }
                stmt_end += 1;
            }
            let tys = if file.tok(after).is_some_and(|c| c.is_punct(':'))
                && !file.tok(after + 1).is_some_and(|c| c.is_punct(':'))
            {
                // `let x: T = ..` — take the ascription.
                self.type_idents(file, after + 1, stmt_end)
            } else {
                self.expr_types(file, caller, after, stmt_end, &out)
            };
            if !tys.is_empty() {
                out.insert(bind, tys);
            }
            i = stmt_end + 1;
        }
        // `for x in <expr>` element types.
        let mut i = bs;
        while i + 3 <= be && i < file.tokens.len() {
            if file.tokens[i].is_ident("for")
                && file.tok(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
                && file.tok(i + 2).is_some_and(|t| t.is_ident("in"))
            {
                let bind = file.tokens[i + 1].text.clone();
                let mut end = i + 3;
                while file.tok(end).is_some_and(|t| !t.is_punct('{')) {
                    end += 1;
                }
                let tys = self.expr_types(file, caller, i + 3, end, &out);
                if !tys.is_empty() {
                    out.entry(bind).or_insert(tys);
                }
            }
            i += 1;
        }
        out
    }

    /// Workspace types mentioned in the type tokens `[from, to)`.
    fn type_idents(&self, file: &SourceFile, from: usize, to: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut j = from;
        let mut depth = 0i32;
        while j < to && j < file.tokens.len() {
            let t = &file.tokens[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if (t.is_punct(',') || t.is_punct(';') || t.is_punct('=')) && depth <= 0 {
                break;
            } else if t.kind == TokenKind::Ident
                && t.text.chars().next().is_some_and(char::is_uppercase)
                && self.ws_types.contains(&t.text)
            {
                out.push(t.text.clone());
            }
            j += 1;
        }
        out.sort();
        out.dedup();
        out
    }

    /// Type candidates for the expression tokens `[from, to)`: a leading
    /// `Type::ctor(..)` names the type; `self.field` pulls field types;
    /// a known local (or `local.field`) propagates.
    fn expr_types(
        &self,
        file: &SourceFile,
        caller: usize,
        from: usize,
        to: usize,
        locals: &BTreeMap<String, Vec<String>>,
    ) -> Vec<String> {
        // `= Type::ctor(..)` (skipping `&`/`mut`).
        let mut j = from;
        while j < to
            && file
                .tok(j)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut") || t.is_punct('='))
        {
            j += 1;
        }
        if let Some(t) = file.tok(j) {
            if t.kind == TokenKind::Ident
                && t.text.chars().next().is_some_and(char::is_uppercase)
                && self.ws_types.contains(&t.text)
                && file.tok(j + 1).is_some_and(|c| c.is_punct(':'))
            {
                return vec![t.text.clone()];
            }
        }
        // Scan for `self . field` / `local [. field]` mentions.
        let mut out: Vec<String> = Vec::new();
        let mut k = from;
        while k < to && k < file.tokens.len() {
            let t = &file.tokens[k];
            if t.kind == TokenKind::Ident {
                let mut segs: Vec<String> = vec![t.text.clone()];
                let mut m = k;
                while file.tok(m + 1).is_some_and(|d| d.is_punct('.'))
                    && file.tok(m + 2).is_some_and(|n| n.kind == TokenKind::Ident)
                {
                    segs.push(file.tokens[m + 2].text.clone());
                    m += 2;
                }
                // Trailing method call (`.get_mut(..)`) — drop the method
                // segment; Option/Result wrappers around the field type
                // are already transparent to `chain_types`.
                if file.tok(m + 1).is_some_and(|p| p.is_punct('(')) && segs.len() > 1 {
                    segs.pop();
                }
                if segs.first().is_some_and(|s| s == "self") || locals.contains_key(&segs[0]) {
                    out.extend(self.chain_types(caller, &segs, locals));
                }
                k = m + 1;
                continue;
            }
            k += 1;
        }
        out.sort();
        out.dedup();
        out
    }
}

enum Resolution {
    Target(usize, &'static str),
    Ambiguous(Vec<usize>),
    External,
}

/// Receiver typing outcome.
enum RecvTy {
    /// The receiver's type is known; the listed workspace types (possibly
    /// none) are the candidates.
    Known(Vec<String>),
    /// No type information could be derived.
    Unknown,
}

/// Method names so common on std types that unique-name fallback on an
/// untyped receiver would fabricate edges to same-named workspace
/// methods. Calls to these with unknown receivers stay external; typed
/// receivers still resolve normally.
const STD_METHOD_NAMES: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_str",
    "ceil",
    "chain",
    "clear",
    "clone",
    "cmp",
    "collect",
    "compare_exchange",
    "contains",
    "contains_key",
    "count",
    "drain",
    "drop",
    "elapsed",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "fetch_add",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "fetch_or",
    "fetch_sub",
    "fetch_update",
    "filter",
    "find",
    "first",
    "flush",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "load",
    "lock",
    "ln",
    "map",
    "max",
    "min",
    "next",
    "ok",
    "or_else",
    "or_insert",
    "parse",
    "pop",
    "position",
    "powi",
    "push",
    "read",
    "recv",
    "remove",
    "replace",
    "resize",
    "retain",
    "rev",
    "round",
    "sample",
    "send",
    "shutdown",
    "sort",
    "split",
    "sqrt",
    "starts_with",
    "store",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_into",
    "unwrap",
    "unwrap_or",
    "values",
    "wait",
    "write",
    "zip",
];

enum Picked {
    One(usize),
    Many(Vec<usize>),
    None,
}

/// Walks back from the method-name token at `i` (`tokens[i-1]` is `.`)
/// and returns the receiver as plain segments (`["self", "field"]`), or
/// `None` when the receiver is itself a call/index/`?` chain.
pub(crate) fn receiver_chain(file: &SourceFile, i: usize) -> Option<Vec<String>> {
    let mut segs: VecDeque<String> = VecDeque::new();
    let mut dot = i.checked_sub(1)?; // the `.` before the name
    loop {
        let before = dot.checked_sub(1)?;
        let t = &file.tokens[before];
        if t.kind == TokenKind::Ident {
            segs.push_front(t.text.clone());
            if before >= 1 && file.tokens[before - 1].is_punct('.') {
                dot = before - 1;
                continue;
            }
            // `a::B.method()` and similar path receivers are out of
            // scope for the chain walker.
            if before >= 2
                && file.tokens[before - 1].is_punct(':')
                && file.tokens[before - 2].is_punct(':')
            {
                return None;
            }
            return Some(segs.into_iter().collect());
        }
        return None;
    }
}

/// Collects the `::`-separated segments preceding the path-call name at
/// `i` (`tokens[i-1], tokens[i-2]` are `::`), outermost first.
pub(crate) fn path_segments(file: &SourceFile, i: usize) -> Vec<String> {
    let mut segs: VecDeque<String> = VecDeque::new();
    let mut k = i;
    while k >= 3 && file.tokens[k - 1].is_punct(':') && file.tokens[k - 2].is_punct(':') {
        let t = &file.tokens[k - 3];
        if t.kind == TokenKind::Ident {
            segs.push_front(t.text.clone());
            k -= 3;
        } else if t.is_punct('>') {
            // Turbofish or qualified generics — give up on the prefix.
            break;
        } else {
            break;
        }
    }
    segs.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            files
                .iter()
                .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
                .collect(),
            Vec::new(),
        )
    }

    fn edge_names(g: &CallGraph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .map(|e| (g.fns[e.caller].qualified(), g.fns[e.callee].qualified()))
            .collect()
    }

    #[test]
    fn self_methods_and_free_fns_resolve() {
        let w = ws(&[(
            "crates/net/src/reactor.rs",
            "pub struct Reactor { n: u32 }\n\
             impl Reactor {\n\
               pub fn run(&mut self) { self.tick(); helper(); }\n\
               fn tick(&mut self) {}\n\
             }\n\
             fn helper() {}\n",
        )]);
        let g = CallGraph::build(&w);
        assert_eq!(
            edge_names(&g),
            [
                (
                    "net::reactor::Reactor::run".into(),
                    "net::reactor::Reactor::tick".into()
                ),
                (
                    "net::reactor::Reactor::run".into(),
                    "net::reactor::helper".into()
                ),
            ]
        );
    }

    #[test]
    fn field_typed_receivers_resolve_across_files() {
        let w = ws(&[
            (
                "crates/net/src/reactor.rs",
                "use crate::trace::ActiveTrace;\n\
                 pub struct Reactor { trace: ActiveTrace }\n\
                 impl Reactor { pub fn run(&mut self) { self.trace.record(1); } }\n",
            ),
            (
                "crates/net/src/trace.rs",
                "pub struct ActiveTrace { x: u32 }\n\
                 impl ActiveTrace { pub fn record(&self, _n: u32) {} }\n",
            ),
        ]);
        let g = CallGraph::build(&w);
        assert_eq!(
            edge_names(&g),
            [(
                "net::reactor::Reactor::run".into(),
                "net::trace::ActiveTrace::record".into()
            )]
        );
    }

    #[test]
    fn cross_crate_module_paths_resolve() {
        let w = ws(&[
            (
                "crates/server/src/router.rs",
                "pub fn route() { viewseeker_core::score::rank(); }\n",
            ),
            ("crates/core/src/score.rs", "pub fn rank() {}\n"),
        ]);
        let g = CallGraph::build(&w);
        assert_eq!(
            edge_names(&g),
            [("server::router::route".into(), "core::score::rank".into())]
        );
    }

    #[test]
    fn local_let_bindings_type_method_receivers() {
        let w = ws(&[(
            "crates/server/src/api.rs",
            "pub struct Catalog { v: u32 }\n\
             impl Catalog { pub fn new() -> Self { Catalog { v: 0 } } pub fn get(&self) {} }\n\
             pub fn endpoint() { let c = Catalog::new(); c.get(); }\n\
             pub fn unwrapped(o: Option<&Catalog>) { let Some(c) = o else { return; }; c.get(); }\n",
        )]);
        let g = CallGraph::build(&w);
        let names = edge_names(&g);
        assert!(names.contains(&(
            "server::api::endpoint".into(),
            "server::api::Catalog::get".into()
        )));
        assert!(names.contains(&(
            "server::api::unwrapped".into(),
            "server::api::Catalog::get".into()
        )));
        assert!(names.contains(&(
            "server::api::endpoint".into(),
            "server::api::Catalog::new".into()
        )));
    }

    #[test]
    fn ambiguous_methods_are_recorded_not_guessed() {
        let w = ws(&[(
            "crates/server/src/x.rs",
            "pub struct A; impl A { pub fn go(&self) {} }\n\
             pub struct B; impl B { pub fn go(&self) {} }\n\
             pub fn call(v: &V) { v.go(); }\n",
        )]);
        let g = CallGraph::build(&w);
        assert!(g.edges.is_empty());
        assert_eq!(g.unresolved.len(), 1);
        assert_eq!(g.unresolved[0].name, "go");
        assert_eq!(g.unresolved[0].candidates.len(), 2);
    }

    #[test]
    fn external_calls_are_counted_only() {
        let w = ws(&[(
            "crates/server/src/x.rs",
            "pub fn f(v: &mut Vec<u32>) { v.push(1); let _ = format(); }\n",
        )]);
        let g = CallGraph::build(&w);
        assert!(g.edges.is_empty());
        assert!(g.unresolved.is_empty());
        assert_eq!(g.external_calls, 2);
    }

    #[test]
    fn reach_produces_shortest_witness_paths() {
        let w = ws(&[(
            "crates/net/src/x.rs",
            "pub fn entry() { middle(); }\n\
             fn middle() { deep(); }\n\
             fn deep() {}\n",
        )]);
        let g = CallGraph::build(&w);
        let entry = g.fns.iter().position(|f| f.name == "entry").unwrap();
        let deep = g.fns.iter().position(|f| f.name == "deep").unwrap();
        let tree = g.reach(&[entry]);
        assert!(tree.contains_key(&deep));
        assert_eq!(
            g.witness(&tree, deep),
            ["net::x::entry", "net::x::middle", "net::x::deep"]
        );
    }

    #[test]
    fn graph_json_is_stable_and_complete() {
        let w = ws(&[(
            "crates/net/src/x.rs",
            "pub fn entry() { helper(); }\nfn helper() {}\n",
        )]);
        let g = CallGraph::build(&w);
        let json = g.to_json(&w);
        assert!(json.contains("\"fn\": \"net::x::entry\""));
        assert!(json.contains("\"via\": \"same-module\""));
        assert!(json.contains("\"external_calls\": 0"));
    }
}
