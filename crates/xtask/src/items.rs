//! Fn-item extraction: the lightweight "parser" the call graph is built
//! on. It walks the token stream of each [`SourceFile`] with a brace
//! -depth context stack, recording every `fn` item together with its
//! module path (file path plus inline `mod` nesting), `impl`/`trait`
//! context, receiver kind, and body token span. It also extracts the
//! per-file facts name resolution needs: `use` imports and struct field
//! types.
//!
//! This is deliberately not a Rust parser. It understands exactly the
//! shapes the resolution heuristics in [`crate::graph`] consume, and it
//! degrades by *recording less* (an unparsed item yields no `FnItem`),
//! never by guessing.

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::SourceFile;

/// One `fn` item found in the workspace.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the defining file in `Workspace::files`.
    pub file: usize,
    /// Module path in workspace naming, e.g. `net::reactor`.
    pub module: String,
    /// `impl` (or `trait`) type context: `Some("Reactor")` for methods
    /// and associated fns, `None` for free fns.
    pub self_ty: Option<String>,
    /// Whether the item is a default method in a `trait` body.
    pub in_trait: bool,
    /// The fn name.
    pub name: String,
    /// Whether the fn takes a `self` receiver.
    pub has_self: bool,
    /// Parameter-list token range (inside the parens), for local type
    /// inference.
    pub params: (usize, usize),
    /// Body token range `(first, last)` inside the braces; `None` for
    /// signature-only trait methods.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the item is test-only code.
    pub is_test: bool,
}

impl FnItem {
    /// `module::Type::name` for methods, `module::name` for free fns.
    #[must_use]
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{}::{}::{}", self.module, ty, self.name),
            None => format!("{}::{}", self.module, self.name),
        }
    }
}

/// One `use` import: `alias` names `path` in the importing file.
#[derive(Debug, Clone)]
pub struct UseImport {
    /// The name the import binds locally (the last segment, or the
    /// `as`-rename).
    pub alias: String,
    /// Full path segments as written (`["viewseeker_net", "http1"]`).
    pub path: Vec<String>,
}

/// A named struct field and the type identifiers its declared type
/// mentions (`spans: Arc<Mutex<Vec<Span>>>` records
/// `["Arc", "Mutex", "Vec", "Span"]`).
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// The struct the field belongs to.
    pub owner: String,
    /// Field name.
    pub name: String,
    /// Capitalized identifiers appearing in the field's type.
    pub tys: Vec<String>,
}

/// Per-file facts derived once and shared by resolution.
#[derive(Debug, Clone, Default)]
pub struct FileInfo {
    /// Module path of the file root, e.g. `server::registry`.
    pub module: String,
    /// Crate segment of the module path (`server`).
    pub crate_name: String,
    /// `use` imports, in file order.
    pub uses: Vec<UseImport>,
    /// Struct fields declared in the file.
    pub fields: Vec<FieldDef>,
}

/// Maps a workspace-relative file path to its module path: strip
/// `crates/<name>/src/` (the crate's short directory name becomes the
/// crate segment) or `src/` (the root crate, `viewseeker`), drop
/// `lib.rs`/`main.rs`/`mod.rs`, and join the rest with `::`.
#[must_use]
pub fn module_of_path(path: &str) -> String {
    let (crate_name, rest) = if let Some(rest) = path.strip_prefix("crates/") {
        match rest.split_once("/src/") {
            Some((name, tail)) => (name, tail),
            None => (rest, ""),
        }
    } else if let Some(rest) = path.strip_prefix("src/") {
        ("viewseeker", rest)
    } else {
        (path, "")
    };
    let mut segments = vec![crate_name.to_owned()];
    for part in rest.split('/') {
        let part = part.strip_suffix(".rs").unwrap_or(part);
        if part.is_empty() || part == "lib" || part == "main" || part == "mod" {
            continue;
        }
        segments.push(part.to_owned());
    }
    segments.join("::")
}

/// Rust keywords that can precede `(` or appear where an identifier
/// might, and must never be taken for a call or a name.
pub(crate) fn is_keyword(word: &str) -> bool {
    matches!(
        word,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "trait"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "async"
            | "await"
            | "box"
            | "self"
            | "Self"
            | "super"
            | "union"
    )
}

/// Context a brace can open.
#[derive(Debug, Clone)]
enum Ctx {
    /// `mod name { .. }` — pushes a module segment.
    Mod(String),
    /// `impl Type { .. }` / `impl Trait for Type { .. }`.
    Impl { self_ty: String },
    /// `trait Name { .. }` — default methods get `self_ty = Name`.
    Trait(String),
    /// Any other brace (fn body, block, struct literal, ...).
    Other,
}

/// Extracts every `fn` item from `file` (index `file_index` in the
/// workspace), in source order.
#[must_use]
pub fn extract_fns(file: &SourceFile, file_index: usize) -> Vec<FnItem> {
    let base = module_of_path(&file.path);
    let mut out = Vec::new();
    let mut stack: Vec<Ctx> = Vec::new();
    let mut pending: Option<Ctx> = None;
    let mut i = 0usize;
    while i < file.tokens.len() {
        let t = &file.tokens[i];
        if t.is_punct('{') {
            stack.push(pending.take().unwrap_or(Ctx::Other));
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            stack.pop();
            i += 1;
            continue;
        }
        if t.is_ident("mod")
            && file.tok(i + 1).is_some_and(|n| n.kind == TokenKind::Ident)
            && file.tok(i + 2).is_some_and(|b| b.is_punct('{'))
        {
            pending = Some(Ctx::Mod(file.tokens[i + 1].text.clone()));
            i += 2;
            continue;
        }
        if t.is_ident("trait") && file.tok(i + 1).is_some_and(|n| n.kind == TokenKind::Ident) {
            pending = Some(Ctx::Trait(file.tokens[i + 1].text.clone()));
            i += 2;
            continue;
        }
        if t.is_ident("impl") {
            if let Some(self_ty) = impl_self_ty(file, i) {
                pending = Some(Ctx::Impl { self_ty });
            }
            i += 1;
            continue;
        }
        if t.is_ident("fn") && file.tok(i + 1).is_some_and(|n| n.kind == TokenKind::Ident) {
            let name = file.tokens[i + 1].text.clone();
            let (self_ty, in_trait) = stack
                .iter()
                .rev()
                .find_map(|c| match c {
                    Ctx::Impl { self_ty } => Some((Some(self_ty.clone()), false)),
                    Ctx::Trait(name) => Some((Some(name.clone()), true)),
                    _ => None,
                })
                .unwrap_or((None, false));
            let module = {
                let mods: Vec<&str> = stack
                    .iter()
                    .filter_map(|c| match c {
                        Ctx::Mod(m) => Some(m.as_str()),
                        _ => None,
                    })
                    .collect();
                if mods.is_empty() {
                    base.clone()
                } else {
                    format!("{base}::{}", mods.join("::"))
                }
            };
            let (has_self, params, body) = fn_signature(file, i);
            out.push(FnItem {
                file: file_index,
                module,
                self_ty,
                in_trait,
                name,
                has_self,
                params,
                body,
                line: t.line,
                is_test: file.is_test(i),
            });
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// From the `impl` keyword at `i`, the implemented type's name: the last
/// path segment before the body `{` (after `for` when present), with
/// generics skipped. `impl<T> Wrapper<T> {`, `impl Trait for Type {`, and
/// `impl fmt::Display for Type {` all yield the concrete type.
fn impl_self_ty(file: &SourceFile, i: usize) -> Option<String> {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut last: Option<String> = None;
    let mut after_for = false;
    let mut for_last: Option<String> = None;
    while let Some(t) = file.tok(j) {
        if t.is_punct('{') && angle <= 0 {
            break;
        }
        if t.is_punct(';') && angle <= 0 {
            return None;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if angle <= 0 && t.is_ident("where") {
            break;
        } else if angle <= 0 && t.is_ident("for") {
            after_for = true;
        } else if angle <= 0 && t.kind == TokenKind::Ident && !is_keyword(&t.text) {
            if after_for {
                for_last = Some(t.text.clone());
            } else {
                last = Some(t.text.clone());
            }
        }
        j += 1;
    }
    for_last.or(last)
}

/// From the `fn` keyword at `i`: whether the parameter list starts with a
/// `self` receiver, the parameter-list token range, and the body token
/// range (or `None` for a signature-only declaration).
fn fn_signature(file: &SourceFile, i: usize) -> (bool, (usize, usize), Option<(usize, usize)>) {
    // Find the parameter-list `(` (generics may precede it).
    let mut j = i + 2;
    let mut angle = 0i32;
    while let Some(t) = file.tok(j) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('(') && angle <= 0 {
            break;
        } else if t.is_punct('{') || t.is_punct(';') {
            return (false, (i, i), None);
        }
        j += 1;
    }
    let open_paren = j;
    let mut has_self = false;
    let mut k = open_paren + 1;
    // `self`, `&self`, `&mut self`, `&'a self`, `mut self`, `self: Arc<Self>`.
    while let Some(t) = file.tok(k) {
        if t.is_ident("self") {
            has_self = true;
            break;
        }
        if t.is_punct('&') || t.is_ident("mut") || t.kind == TokenKind::Lifetime {
            k += 1;
            continue;
        }
        break;
    }
    // Find the body `{` after the matching `)`, stopping at `;`.
    let mut depth = 0i32;
    let mut m = open_paren;
    while let Some(t) = file.tok(m) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        m += 1;
    }
    let params = (open_paren + 1, m.saturating_sub(1));
    let mut b = m + 1;
    let mut angle = 0i32;
    while let Some(t) = file.tok(b) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct(';') && angle <= 0 {
            return (has_self, params, None);
        } else if t.is_punct('{') && angle <= 0 {
            let close = crate::item_end(&file.tokens, b);
            return (has_self, params, Some((b + 1, close)));
        }
        b += 1;
    }
    (has_self, params, None)
}

/// Derives the per-file resolution facts: module path, `use` imports,
/// and struct field types.
#[must_use]
pub fn file_info(file: &SourceFile) -> FileInfo {
    let module = module_of_path(&file.path);
    let crate_name = module
        .split("::")
        .next()
        .unwrap_or(module.as_str())
        .to_owned();
    FileInfo {
        module,
        crate_name,
        uses: collect_uses(file),
        fields: collect_fields(file),
    }
}

/// Parses every `use` statement into flat `(alias, path)` imports.
/// Groups (`use a::{b, c as d}`) are expanded; globs are skipped.
fn collect_uses(file: &SourceFile) -> Vec<UseImport> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < file.tokens.len() {
        if !file.tokens[i].is_ident("use") {
            i += 1;
            continue;
        }
        // Collect the statement's tokens up to `;`.
        let start = i + 1;
        let mut end = start;
        while file.tok(end).is_some_and(|t| !t.is_punct(';')) {
            end += 1;
        }
        parse_use_tree(file, start, end, &mut Vec::new(), &mut out);
        i = end + 1;
    }
    out
}

/// Recursively expands the use-tree tokens in `[i, end)` with `prefix`
/// already consumed.
fn parse_use_tree(
    file: &SourceFile,
    mut i: usize,
    end: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseImport>,
) {
    let depth0 = prefix.len();
    let mut last: Option<String> = None;
    while i < end {
        let t = &file.tokens[i];
        if t.kind == TokenKind::Ident && !t.is_ident("as") {
            last = Some(t.text.clone());
            i += 1;
            continue;
        }
        if t.is_punct(':') && file.tok(i + 1).is_some_and(|n| n.is_punct(':')) {
            if let Some(seg) = last.take() {
                prefix.push(seg);
            }
            i += 2;
            continue;
        }
        if t.is_ident("as") {
            // `path as alias` — alias the accumulated path.
            if let (Some(seg), Some(alias)) = (last.take(), file.tok(i + 1)) {
                if alias.kind == TokenKind::Ident {
                    let mut path = prefix.clone();
                    if seg != "self" {
                        path.push(seg);
                    }
                    out.push(UseImport {
                        alias: alias.text.clone(),
                        path,
                    });
                }
            }
            i += 2;
            continue;
        }
        if t.is_punct('{') {
            // Group: split members on top-level commas.
            let mut depth = 1usize;
            let mut member_start = i + 1;
            let mut j = i + 1;
            while j < end && depth > 0 {
                let u = &file.tokens[j];
                if u.is_punct('{') {
                    depth += 1;
                } else if u.is_punct('}') {
                    depth -= 1;
                    if depth == 0 && member_start < j {
                        parse_use_tree(file, member_start, j, prefix, out);
                    }
                } else if u.is_punct(',') && depth == 1 {
                    if member_start < j {
                        parse_use_tree(file, member_start, j, prefix, out);
                    }
                    member_start = j + 1;
                }
                j += 1;
            }
            prefix.truncate(depth0);
            return;
        }
        // `*` glob or anything else: drop the pending segment.
        i += 1;
    }
    if let Some(seg) = last {
        let alias = seg.clone();
        let mut path = prefix.clone();
        if seg == "self" {
            // `use a::b::{self}` binds `b`.
            if let Some(parent) = path.last().cloned() {
                out.push(UseImport {
                    alias: parent,
                    path,
                });
            }
        } else {
            path.push(seg);
            out.push(UseImport { alias, path });
        }
    }
    prefix.truncate(depth0);
}

/// Collects named struct fields and the capitalized type idents their
/// declared types mention.
fn collect_fields(file: &SourceFile) -> Vec<FieldDef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < file.tokens.len() {
        if !file.tokens[i].is_ident("struct")
            || !file.tok(i + 1).is_some_and(|n| n.kind == TokenKind::Ident)
        {
            i += 1;
            continue;
        }
        let owner = file.tokens[i + 1].text.clone();
        // Walk to the body `{`; tuple structs and unit structs end at
        // `(`/`;` first and record no fields.
        let mut j = i + 2;
        let mut angle = 0i32;
        let mut body = None;
        while let Some(t) = file.tok(j) {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle <= 0 && (t.is_punct(';') || t.is_punct('(')) {
                break;
            } else if angle <= 0 && t.is_punct('{') {
                body = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = body else {
            i += 2;
            continue;
        };
        let close = crate::item_end(&file.tokens, open);
        let mut k = open + 1;
        while k < close {
            let t = &file.tokens[k];
            // `name : Type` at field position — the previous token is `{`
            // or the `,` ending the previous field (skipping attributes
            // and visibility is handled by just requiring ident-colon).
            if t.kind == TokenKind::Ident
                && !is_keyword(&t.text)
                && file.tok(k + 1).is_some_and(|c| c.is_punct(':'))
                && !file.tok(k + 2).is_some_and(|c| c.is_punct(':'))
            {
                let mut tys = Vec::new();
                let mut m = k + 2;
                let mut angle = 0i32;
                while m < close {
                    let u = &file.tokens[m];
                    if u.is_punct('<') {
                        angle += 1;
                    } else if u.is_punct('>') {
                        angle -= 1;
                    } else if u.is_punct(',') && angle <= 0 {
                        break;
                    } else if u.kind == TokenKind::Ident
                        && u.text.chars().next().is_some_and(char::is_uppercase)
                    {
                        tys.push(u.text.clone());
                    }
                    m += 1;
                }
                out.push(FieldDef {
                    owner: owner.clone(),
                    name: t.text.clone(),
                    tys,
                });
                k = m;
                continue;
            }
            k += 1;
        }
        i = close + 1;
    }
    out
}

/// Field-type lookup: the workspace-wide map `(owner, field) -> tys`.
#[must_use]
pub fn field_map(infos: &[FileInfo]) -> BTreeMap<(String, String), Vec<String>> {
    let mut out = BTreeMap::new();
    for info in infos {
        for f in &info.fields {
            out.entry((f.owner.clone(), f.name.clone()))
                .or_insert_with(|| f.tys.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path.into(), src)
    }

    #[test]
    fn module_paths_follow_file_layout() {
        assert_eq!(module_of_path("crates/net/src/reactor.rs"), "net::reactor");
        assert_eq!(module_of_path("crates/net/src/lib.rs"), "net");
        assert_eq!(
            module_of_path("crates/dataset/src/sql/mod.rs"),
            "dataset::sql"
        );
        assert_eq!(
            module_of_path("crates/dataset/src/sql/exec.rs"),
            "dataset::sql::exec"
        );
        assert_eq!(module_of_path("src/lib.rs"), "viewseeker");
    }

    #[test]
    fn extracts_free_fns_methods_and_trait_defaults() {
        let f = file(
            "crates/net/src/x.rs",
            "fn free() {}\n\
             impl Reactor { fn run(&mut self) { self.tick(); } }\n\
             impl Handler for Router { fn handle(&self) {} }\n\
             trait Sink { fn put(&self) { helper(); } fn abstract_only(&self); }\n\
             mod inner { fn nested() {} }\n",
        );
        let fns = extract_fns(&f, 0);
        let quals: Vec<String> = fns.iter().map(FnItem::qualified).collect();
        assert_eq!(
            quals,
            [
                "net::x::free",
                "net::x::Reactor::run",
                "net::x::Router::handle",
                "net::x::Sink::put",
                "net::x::Sink::abstract_only",
                "net::x::inner::nested",
            ]
        );
        assert!(fns[1].has_self);
        assert!(!fns[0].has_self);
        assert!(fns[3].in_trait);
        assert!(fns[4].body.is_none());
        assert!(fns[1].body.is_some());
    }

    #[test]
    fn impl_headers_with_generics_and_paths_resolve_the_type() {
        let f = file(
            "crates/core/src/x.rs",
            "impl<T: Clone> Wrapper<T> { fn a(&self) {} }\n\
             impl fmt::Display for Thing { fn fmt(&self) {} }\n\
             impl<'a> Iterator for Iter<'a> { fn next(&mut self) {} }\n",
        );
        let fns = extract_fns(&f, 0);
        let tys: Vec<&str> = fns.iter().filter_map(|f| f.self_ty.as_deref()).collect();
        assert_eq!(tys, ["Wrapper", "Thing", "Iter"]);
    }

    #[test]
    fn use_imports_expand_groups_and_renames() {
        let f = file(
            "crates/server/src/x.rs",
            "use std::sync::{Arc, Mutex};\n\
             use viewseeker_net::http1;\n\
             use crate::registry::SessionRegistry as Reg;\n\
             use viewseeker_core::{seeker::ViewSeeker, MaterializeStrategy};\n",
        );
        let info = file_info(&f);
        let find = |a: &str| {
            info.uses
                .iter()
                .find(|u| u.alias == a)
                .map(|u| u.path.join("::"))
        };
        assert_eq!(find("Mutex").as_deref(), Some("std::sync::Mutex"));
        assert_eq!(find("http1").as_deref(), Some("viewseeker_net::http1"));
        assert_eq!(
            find("Reg").as_deref(),
            Some("crate::registry::SessionRegistry")
        );
        assert_eq!(
            find("ViewSeeker").as_deref(),
            Some("viewseeker_core::seeker::ViewSeeker")
        );
        assert_eq!(
            find("MaterializeStrategy").as_deref(),
            Some("viewseeker_core::MaterializeStrategy")
        );
    }

    #[test]
    fn struct_fields_record_workspace_type_idents() {
        let f = file(
            "crates/net/src/x.rs",
            "pub struct Reactor<H> { conns: HashMap<u64, Conn>, stats: Arc<NetStats>,\n\
             handler: Arc<H>, budget: usize }\n\
             struct Unit;\nstruct Tuple(u32);\n",
        );
        let info = file_info(&f);
        let conns = info.fields.iter().find(|f| f.name == "conns").unwrap();
        assert_eq!(conns.owner, "Reactor");
        assert_eq!(conns.tys, ["HashMap", "Conn"]);
        let stats = info.fields.iter().find(|f| f.name == "stats").unwrap();
        assert_eq!(stats.tys, ["Arc", "NetStats"]);
        assert!(!info
            .fields
            .iter()
            .any(|f| f.name == "budget" && !f.tys.is_empty()));
    }
}
