//! Rule `float-sum`: in `crates/core` and `crates/dataset`, a bare
//! `.sum()` (or a float-turbofished one) is forbidden — float addition is
//! not associative, so any reduction whose order the compiler or a
//! parallel executor may permute is a determinism hazard. Integer sums
//! must say so with an integer turbofish (`.sum::<u64>()`); float
//! reductions must go through the executor's strict-order fold helpers
//! (`viewseeker_dataset::executor::strict_sum`) which pin a sequential
//! left-to-right order.

use crate::{Diagnostic, SourceFile};

use super::is_method_call;

const RULE: &str = "float-sum";
const SCOPE: &[&str] = &["crates/core/", "crates/dataset/"];
const INTEGER_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !SCOPE.iter().any(|p| file.path.starts_with(p)) {
        return;
    }
    for i in 0..file.tokens.len() {
        if file.is_test(i) {
            continue;
        }
        let t = &file.tokens[i];
        if t.text != "sum" || i == 0 || !file.tokens[i - 1].is_punct('.') {
            continue;
        }
        // `.sum::<T>(` — integer T proves the reduction order-free.
        if file.matches_seq(i + 1, &[('p', ":"), ('p', ":"), ('p', "<")]) {
            let ty_ok = file
                .tok(i + 4)
                .is_some_and(|ty| INTEGER_TYPES.contains(&ty.text.as_str()));
            if !ty_ok {
                out.push(diag(file, i, "float-typed `.sum::<T>()`"));
            }
        } else if is_method_call(file, i) {
            out.push(diag(file, i, "bare `.sum()`"));
        }
    }
}

fn diag(file: &SourceFile, i: usize, what: &str) -> Diagnostic {
    Diagnostic::new(
        file.path.clone(),
        file.tokens[i].line,
        RULE,
        format!(
            "{what} is order-sensitive for floats; use executor::strict_sum \
             or prove integer with `.sum::<u64>()`"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path.into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_bare_and_float_turbofish_sums() {
        let diags = run(
            "crates/core/src/metrics.rs",
            "fn f() { let a: f64 = xs.iter().sum(); let b = ys.iter().sum::<f64>(); }",
        );
        assert_eq!(diags.len(), 2);
    }

    #[test]
    fn integer_turbofish_and_out_of_scope_pass() {
        assert!(run(
            "crates/dataset/src/aggregate.rs",
            "fn f() { let n = xs.iter().sum::<u64>(); let m = ys.iter().map(f).sum::<usize>(); }",
        )
        .is_empty());
        assert!(run(
            "crates/server/src/api.rs",
            "fn f() { xs.iter().sum::<f64>(); }"
        )
        .is_empty());
    }
}
