//! Rule `blocking-in-reactor`: nothing reachable from the epoll
//! reactor's tick path may block. The reactor is one thread multiplexing
//! every connection; a single `Mutex::lock` contended with a worker, a
//! `thread::sleep`, a file read, or a blocking socket call stalls *all*
//! of them at once. The tick path is everything transitively reachable
//! from the `Reactor` impl's methods in `crates/net`.
//!
//! The allowed sink is the dispatch-to-worker boundary: channel
//! `.send(..)` (non-blocking for the unbounded channels the reactor
//! uses), `poller.wait(..)` (blocking there is the reactor's whole job),
//! and `.accept()` / `.read(buf)` / `.write(buf)` on sockets already in
//! nonblocking mode (they take arguments, so the zero-arg acquisition
//! pattern never matches them). Calls dispatched through `dyn TraceSink`
//! stop at the trait signature — the call graph has no body to follow —
//! which is the documented escape hatch for sink implementations that
//! run on worker threads.
//!
//! Lock-style ops that resolve to *workspace* fns (a method named
//! `lock` on our own type) are call edges, not std acquisitions; the
//! callee's own body is scanned instead.

use std::collections::BTreeSet;

use crate::graph::CallGraph;
use crate::lexer::TokenKind;
use crate::rules::is_method_call;
use crate::{Diagnostic, SourceFile, Workspace};

const RULE: &str = "blocking-in-reactor";

/// Zero-argument guard acquisitions (`.lock()`, RwLock `.read()`/
/// `.write()`).
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];
/// Blocking method calls that are flagged only when zero-argument
/// (`.recv()` blocks; `.try_recv()` and `.recv_timeout(d)` don't;
/// `.join()` parks the caller).
const ZERO_ARG_BLOCKING: &[&str] = &["recv", "join"];
/// Method calls that block regardless of arguments: synchronous file /
/// stream I/O helpers.
const METHOD_BLOCKING: &[&str] = &["read_exact", "read_to_end", "read_to_string", "write_all"];
/// `Type::method` path calls that block.
const PATH_BLOCKING: &[(&str, &str)] = &[
    ("File", "open"),
    ("File", "create"),
    ("TcpStream", "connect"),
];

/// One blocking operation found in a fn body.
struct BlockSite {
    /// Token index of the operation.
    token: usize,
    /// Short description for the diagnostic.
    what: String,
}

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    let entries: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| {
            let f = &graph.fns[i];
            !f.is_test
                && f.body.is_some()
                && f.self_ty.as_deref() == Some("Reactor")
                && f.module.split("::").next() == Some("net")
        })
        .collect();
    if entries.is_empty() {
        return;
    }
    let tree = graph.reach(&entries);
    for &fn_index in tree.keys() {
        let item = &graph.fns[fn_index];
        let Some((bs, be)) = item.body else { continue };
        let file = &ws.files[item.file];
        let witness = graph.witness(&tree, fn_index);
        for site in blocking_sites(file, bs, be, item.file, &graph.resolved_sites) {
            if graph.innermost_fn(item.file, site.token) != Some(fn_index) {
                continue;
            }
            out.push(Diagnostic {
                file: file.path.clone(),
                line: file.tokens[site.token].line,
                rule: RULE,
                message: format!(
                    "{} on the reactor tick path stalls every connection at once; \
                     move the work behind the dispatch-to-worker boundary",
                    site.what,
                ),
                witness: witness.clone(),
            });
        }
    }
}

/// Scans `[bs, be]` of `file` for blocking operations. `resolved` holds
/// the call sites that resolved to workspace fns — those are traversed
/// as call edges, not flagged as std ops.
fn blocking_sites(
    file: &SourceFile,
    bs: usize,
    be: usize,
    file_index: usize,
    resolved: &BTreeSet<(usize, usize)>,
) -> Vec<BlockSite> {
    let mut out = Vec::new();
    let mut i = bs;
    while i <= be && i < file.tokens.len() {
        let t = &file.tokens[i];
        if file.is_test(i) || t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let zero_arg = file.tok(i + 1).is_some_and(|p| p.is_punct('('))
            && file.tok(i + 2).is_some_and(|p| p.is_punct(')'));
        let name = t.text.as_str();
        if is_method_call(file, i) && !resolved.contains(&(file_index, i)) {
            if zero_arg && GUARD_METHODS.contains(&name) {
                out.push(BlockSite {
                    token: i,
                    what: format!("Mutex/RwLock acquisition `.{name}()`"),
                });
            } else if zero_arg && ZERO_ARG_BLOCKING.contains(&name) {
                out.push(BlockSite {
                    token: i,
                    what: format!("blocking `.{name}()`"),
                });
            } else if METHOD_BLOCKING.contains(&name)
                && file.tok(i + 1).is_some_and(|p| p.is_punct('('))
            {
                out.push(BlockSite {
                    token: i,
                    what: format!("synchronous I/O `.{name}(..)`"),
                });
            }
        } else if name == "sleep"
            && file.tok(i + 1).is_some_and(|p| p.is_punct('('))
            && !resolved.contains(&(file_index, i))
        {
            out.push(BlockSite {
                token: i,
                what: "thread::sleep".to_owned(),
            });
        } else if (name == "fs" || name == "OpenOptions")
            && file.tok(i + 1).is_some_and(|p| p.is_punct(':'))
            && file.tok(i + 2).is_some_and(|p| p.is_punct(':'))
        {
            out.push(BlockSite {
                token: i,
                what: format!("file I/O `{name}::{}`", next_ident(file, i + 3)),
            });
            // Skip the path so `fs::read_to_string` doesn't also trip the
            // method-name check.
            i += 3;
        } else if let Some((ty, method)) = PATH_BLOCKING.iter().find(|(ty, m)| {
            *ty == name
                && file.tok(i + 1).is_some_and(|p| p.is_punct(':'))
                && file.tok(i + 2).is_some_and(|p| p.is_punct(':'))
                && file.tok(i + 3).is_some_and(|n| n.is_ident(m))
        }) {
            out.push(BlockSite {
                token: i,
                what: format!("blocking `{ty}::{method}`"),
            });
            i += 3;
        }
        i += 1;
    }
    out
}

/// The ident at `i`, for message text.
fn next_ident(file: &SourceFile, i: usize) -> String {
    file.tok(i)
        .filter(|t| t.kind == TokenKind::Ident)
        .map_or_else(|| "..".to_owned(), |t| t.text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(
            files
                .iter()
                .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
                .collect(),
            Vec::new(),
        );
        let graph = CallGraph::build(&ws);
        let mut out = Vec::new();
        check(&ws, &graph, &mut out);
        out
    }

    #[test]
    fn sleep_behind_a_helper_is_caught_with_witness() {
        let diags = lint(&[(
            "crates/net/src/reactor.rs",
            "pub struct Reactor;\n\
             impl Reactor { pub fn run(&mut self) { self.tick(); } \
             fn tick(&mut self) { flush_all(); } }\n\
             fn flush_all() { thread::sleep(d); }\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "blocking-in-reactor");
        assert!(diags[0].message.contains("thread::sleep"));
        // Every Reactor method is an entry, so the shortest witness
        // starts at `tick`, not `run`.
        assert_eq!(
            diags[0].witness,
            ["net::reactor::Reactor::tick", "net::reactor::flush_all"]
        );
    }

    #[test]
    fn mutex_lock_on_the_tick_path_is_flagged() {
        let diags = lint(&[(
            "crates/net/src/reactor.rs",
            "pub struct Reactor;\n\
             impl Reactor { pub fn tick(&mut self) { self.stats.lock().bump(); } }\n",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains(".lock()"));
    }

    #[test]
    fn poller_wait_send_and_arg_taking_io_are_allowed() {
        let diags = lint(&[(
            "crates/net/src/reactor.rs",
            "pub struct Reactor;\n\
             impl Reactor { pub fn tick(&mut self, buf: &mut [u8]) { \
             self.poller.wait(&mut self.events); \
             self.completions.send(job); \
             self.sock.read(buf); self.sock.write(buf); self.listener.accept(); } }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn workspace_fns_named_lock_are_calls_not_acquisitions() {
        // `self.state.lock()` resolves to our own `State::lock`, whose
        // body is scanned instead — and it is clean.
        let diags = lint(&[(
            "crates/net/src/reactor.rs",
            "pub struct State;\n\
             impl State { pub fn lock(&self) -> u32 { 0 } }\n\
             pub struct Reactor { state: State }\n\
             impl Reactor { pub fn tick(&mut self) { self.state.lock(); } }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn blocking_off_the_tick_path_is_not_flagged() {
        let diags = lint(&[(
            "crates/net/src/loadgen.rs",
            "pub fn drive() { thread::sleep(d); }\n",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
