//! Rule `no-panic`: request-path code in `crates/server`, reactor/parser
//! code in `crates/net`, ring/forwarding code in `crates/cluster`, and
//! cache-path
//! code in `crates/catalog` must not contain a reachable panic — no
//! `unwrap()`, `expect()`, `panic!`, `unreachable!`, `todo!`,
//! `unimplemented!`, and no `x[i]` indexing (which panics out of
//! bounds). A panicked worker thread reachable from untrusted HTTP input
//! drops the connection instead of returning a 4xx/5xx body.
//!
//! `debug_assert!` family macros are explicitly permitted (compiled out
//! of release builds) and their argument tokens are skipped entirely.

use crate::lexer::TokenKind;
use crate::{Diagnostic, SourceFile};

use super::is_method_call;

const RULE: &str = "no-panic";
/// Files where *every* panic site is flagged directly, reachable or not.
/// The interprocedural `panic-reachability` rule extends the guarantee to
/// the rest of the workspace via the call graph, so the two scopes are
/// deliberately disjoint.
pub(crate) const SCOPE: &[&str] = &[
    "crates/server/src/",
    "crates/catalog/src/",
    "crates/net/src/",
    "crates/cluster/src/",
];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// One potential panic in non-test, non-`debug_assert!` code.
pub(crate) struct PanicSite {
    /// Token index of the offending token.
    pub token: usize,
    /// Short description: `.unwrap()`, `panic!`, `slice/array indexing`.
    pub what: String,
}

/// Finds every panic site in `file`: `.unwrap()`/`.expect()` method
/// calls, `panic!`-family macros, and `x[i]` indexing, excluding test
/// code and `debug_assert!` arguments.
pub(crate) fn panic_sites(file: &SourceFile) -> Vec<PanicSite> {
    let mut out = Vec::new();
    let debug_assert_mask = debug_assert_mask(file);
    for (i, t) in file.tokens.iter().enumerate() {
        if file.is_test(i) || debug_assert_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if is_method_call(file, i) && (t.text == "unwrap" || t.text == "expect") {
            out.push(PanicSite {
                token: i,
                what: format!(".{}()", t.text),
            });
        } else if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && file.tok(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(PanicSite {
                token: i,
                what: format!("{}!", t.text),
            });
        } else if t.is_punct('[') && i > 0 && is_index_expr(file, i - 1) {
            out.push(PanicSite {
                token: i,
                what: "slice/array indexing".to_owned(),
            });
        }
    }
    out
}

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !SCOPE.iter().any(|p| file.path.starts_with(p)) {
        return;
    }
    for site in panic_sites(file) {
        let message = match site.what.as_str() {
            ".unwrap()" | ".expect()" => format!(
                "{} in request-path code; propagate a typed error \
                 (ServerError/CatalogError) instead",
                site.what
            ),
            "slice/array indexing" => {
                "slice/array indexing panics out of bounds; use .get()/.get_mut()".to_owned()
            }
            other => format!("{other} in request-path code; return an error instead"),
        };
        out.push(diag(file, site.token, message));
    }
}

fn diag(file: &SourceFile, i: usize, message: String) -> Diagnostic {
    Diagnostic::new(file.path.clone(), file.tokens[i].line, RULE, message)
}

/// A `[` indexes an expression when the previous token could end one:
/// an identifier, a closing paren/bracket, or a literal. Attribute (`#[`),
/// macro (`vec![`), type (`: [u8; 4]`), and pattern positions all have
/// other preceding tokens.
fn is_index_expr(file: &SourceFile, prev: usize) -> bool {
    let t = &file.tokens[prev];
    match t.kind {
        TokenKind::Ident => !is_keyword_before_bracket(&t.text),
        TokenKind::Str => true,
        TokenKind::Punct => t.text == ")" || t.text == "]" || t.text == "?",
        _ => false,
    }
}

/// Keywords that may directly precede a `[` without forming an index
/// expression (`return [..]`, `let [a, b] = ..` slice patterns,
/// `in [..]`).
fn is_keyword_before_bracket(word: &str) -> bool {
    matches!(
        word,
        "return" | "in" | "if" | "else" | "match" | "break" | "as" | "mut" | "dyn" | "impl" | "let"
    )
}

/// Marks every token inside a `debug_assert*!(..)` invocation, including
/// the macro name itself.
fn debug_assert_mask(file: &SourceFile) -> Vec<bool> {
    let mut mask = vec![false; file.tokens.len()];
    let mut i = 0usize;
    while i < file.tokens.len() {
        let t = &file.tokens[i];
        if t.kind == TokenKind::Ident
            && t.text.starts_with("debug_assert")
            && file.tok(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            // Find the delimiter and its match; macros accept ()/[]/{}.
            let open = i + 2;
            let (o, c) = match file.tok(open).map(|t| t.text.as_str()) {
                Some("(") => ('(', ')'),
                Some("[") => ('[', ']'),
                Some("{") => ('{', '}'),
                _ => {
                    i += 1;
                    continue;
                }
            };
            let mut depth = 0usize;
            let mut j = open;
            while j < file.tokens.len() {
                if file.tokens[j].is_punct(o) {
                    depth += 1;
                } else if file.tokens[j].is_punct(c) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            for m in mask.iter_mut().take(j + 1).skip(i) {
                *m = true;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path.into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let diags = run(
            "crates/server/src/api.rs",
            "fn h() { a.unwrap(); b.expect(\"x\"); panic!(\"no\"); unreachable!(); }",
        );
        assert_eq!(diags.len(), 4);
    }

    #[test]
    fn flags_indexing_but_not_types_or_macros() {
        let diags = run(
            "crates/server/src/api.rs",
            "fn h(x: [u8; 4]) { let v = vec![1]; let a = v[0]; let b: Vec<[u8; 2]> = vec![]; }",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("indexing"));
    }

    #[test]
    fn skips_tests_debug_asserts_and_out_of_scope_files() {
        assert!(run(
            "crates/server/src/api.rs",
            "fn h() { debug_assert!(x[0] > 1, \"m\"); }\n#[cfg(test)]\nmod t { fn u() { a.unwrap(); } }",
        )
        .is_empty());
        assert!(run("crates/core/src/seeker.rs", "fn h() { a.unwrap(); }").is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        assert!(run(
            "crates/server/src/api.rs",
            "fn h() { a.unwrap_or(0); b.unwrap_or_else(f); c.unwrap_or_default(); }",
        )
        .is_empty());
    }
}
