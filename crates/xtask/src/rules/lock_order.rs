//! Rule `lock-order`: in `crates/server` and `crates/catalog`, acquiring
//! a second lock while an earlier guard is still live in the same
//! function is flagged. Nested acquisition is how the registry/cache
//! deadlocks are born; every such site must either drop the first guard
//! first or carry a `vslint::allow(lock-order)` documenting the global
//! acquisition order that makes it safe.
//!
//! Acquisitions are zero-argument `.lock()` / `.read()` / `.write()`
//! calls (`io::Read::read(&mut buf)` takes an argument and is ignored).
//! A `let`-bound guard is live until it is moved by value — `drop(g)`,
//! `consume(g)`, `f(a, g)` — or the end of its enclosing block; an
//! unbound (temporary) guard is live to the end of its statement.
//! By-reference uses (`peek(&g)`, `g.field`) keep the guard live.
//!
//! The interprocedural `lock-order-v2` rule
//! ([`crate::rules::lock_graph`]) reuses these acquisition/liveness
//! primitives to chase guards held across call edges.

use crate::lexer::TokenKind;
use crate::{Diagnostic, SourceFile};

const RULE: &str = "lock-order";
const SCOPE: &[&str] = &["crates/server/src/", "crates/catalog/src/"];
pub(crate) const ACQUIRE: &[&str] = &["lock", "read", "write"];

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !SCOPE.iter().any(|p| file.path.starts_with(p)) {
        return;
    }
    let sites = acquisition_sites(file);
    for (idx, site) in sites.iter().enumerate() {
        let live_end = liveness_end(file, site);
        for later in &sites[idx + 1..] {
            if later.token > live_end {
                break;
            }
            if later.fn_range != site.fn_range {
                continue;
            }
            out.push(Diagnostic::new(
                file.path.clone(),
                file.tokens[later.token].line,
                RULE,
                format!(
                    ".{}() acquired while the guard from .{}() on line {} is live; \
                     drop the first guard or document the lock order with vslint::allow",
                    file.tokens[later.token].text,
                    file.tokens[site.token].text,
                    file.tokens[site.token].line,
                ),
            ));
        }
    }
}

/// One `.lock()`-style acquisition.
pub(crate) struct Site {
    /// Token index of the method name.
    pub(crate) token: usize,
    /// Identifier the guard is `let`-bound to, if any.
    pub(crate) bound: Option<String>,
    /// Enclosing fn body range (sites in different fns never interact).
    pub(crate) fn_range: (usize, usize),
}

pub(crate) fn acquisition_sites(file: &SourceFile) -> Vec<Site> {
    let mut out = Vec::new();
    for i in 0..file.tokens.len() {
        if file.is_test(i) {
            continue;
        }
        let t = &file.tokens[i];
        let zero_arg_call = t.kind == TokenKind::Ident
            && ACQUIRE.contains(&t.text.as_str())
            && i > 0
            && file.tokens[i - 1].is_punct('.')
            && file.tok(i + 1).is_some_and(|p| p.is_punct('('))
            && file.tok(i + 2).is_some_and(|p| p.is_punct(')'));
        if !zero_arg_call {
            continue;
        }
        let Some(fn_range) = file.enclosing_fn(i) else {
            continue;
        };
        out.push(Site {
            token: i,
            bound: binding_ident(file, i),
            fn_range,
        });
    }
    out
}

/// Walks back to the start of the statement containing token `i` and
/// returns the identifier of a `let <ident> [: ty] =` binding, if the
/// statement is one.
fn binding_ident(file: &SourceFile, i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 {
        let t = &file.tokens[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j -= 1;
    }
    if !file.tokens.get(j)?.is_ident("let") {
        return None;
    }
    let mut k = j + 1;
    if file.tok(k).is_some_and(|t| t.is_ident("mut")) {
        k += 1;
    }
    let name = file.tok(k)?;
    if name.kind == TokenKind::Ident {
        Some(name.text.clone())
    } else {
        None
    }
}

/// Last token index at which the guard acquired at `site` is still live.
pub(crate) fn liveness_end(file: &SourceFile, site: &Site) -> usize {
    match &site.bound {
        None => {
            // Temporary guard: dies at the end of the statement.
            let mut j = site.token;
            while let Some(t) = file.tok(j) {
                if t.is_punct(';') {
                    return j;
                }
                j += 1;
            }
            file.tokens.len().saturating_sub(1)
        }
        Some(name) => {
            // Bound guard: until it is moved by value or the end of the
            // enclosing block (brace depth falls below the acquisition's).
            // A move is the guard's name standing alone in argument
            // position — `drop(g)`, `consume(g)`, `f(a, g, b)`. The `&` in
            // `peek(&g)` is the previous token, so by-ref uses don't end
            // liveness; neither does `g.field` (next token `.`).
            let mut depth = 0i32;
            let mut j = site.token;
            while let Some(t) = file.tok(j) {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        return j;
                    }
                } else if t.is_ident(name)
                    && j > site.token
                    && file
                        .tok(j - 1)
                        .is_some_and(|p| p.is_punct('(') || p.is_punct(','))
                    && file
                        .tok(j + 1)
                        .is_some_and(|p| p.is_punct(')') || p.is_punct(','))
                {
                    return j;
                }
                j += 1;
            }
            file.tokens.len().saturating_sub(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("crates/server/src/registry.rs".into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn nested_acquisition_is_flagged() {
        let diags = run("fn f(&self) { let guard = self.sessions.read(); \
             for s in list { let g2 = s.seeker.lock(); use_it(g2); } }");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("line 1"));
    }

    #[test]
    fn dropped_guard_clears_liveness() {
        assert!(run(
            "fn f(&self) { let guard = self.sessions.read(); let ids = collect(&guard); \
             drop(guard); let g2 = self.other.lock(); use_it(g2, ids); }",
        )
        .is_empty());
    }

    #[test]
    fn sequential_statement_temporaries_pass() {
        assert!(run("fn f(&self) { self.a.lock().push(1); self.b.lock().push(2); }").is_empty());
    }

    #[test]
    fn temporary_with_nested_acquisition_is_flagged() {
        assert_eq!(
            run("fn f(&self) { self.a.lock().merge(self.b.lock().snapshot()); }").len(),
            1
        );
    }

    #[test]
    fn separate_functions_do_not_interact() {
        assert!(run("fn f(&self) { let g = self.a.lock(); use_it(g); } \
             fn h(&self) { let g = self.b.lock(); use_it(g); }",)
        .is_empty());
    }

    #[test]
    fn io_read_write_with_args_are_ignored() {
        assert!(
            run("fn f(s: &mut TcpStream, buf: &mut [u8]) { s.read(buf); s.write(buf); }",)
                .is_empty()
        );
    }

    #[test]
    fn guard_moved_by_value_into_a_call_clears_liveness() {
        // `consume(g)` moves the guard just like `drop(g)` does; the
        // later acquisition happens with nothing held.
        assert!(run(
            "fn f(&self) { let g = self.a.lock(); consume(g); let h = self.b.lock(); use_it(h); }",
        )
        .is_empty());
        // Moves in non-first argument position count too.
        assert!(run(
            "fn f(&self) { let g = self.a.lock(); store(1, g); let h = self.b.lock(); use_it(h); }",
        )
        .is_empty());
    }

    #[test]
    fn by_ref_use_keeps_the_guard_live() {
        let diags = run(
            "fn f(&self) { let g = self.a.lock(); peek(&g); let h = self.b.lock(); use_it(h, g); }",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn block_scoped_guard_dies_at_block_end() {
        assert!(run(
            "fn f(&self) { { let g = self.a.lock(); use_it(g); } let h = self.b.lock(); use_it(h); }",
        )
        .is_empty());
    }
}
