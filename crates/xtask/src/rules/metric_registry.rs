//! Rule `metric-registry`: every `viewseeker_*` Prometheus series must be
//! (a) defined exactly once in the `SERIES` table in
//! `crates/server/src/prometheus.rs`, (b) emitted at least once by
//! non-test server code, and (c) documented — its literal name must
//! appear in both DESIGN.md and README.md. Conversely, any `viewseeker_*`
//! string emitted anywhere in the server crate must be in the table.
//! Together with the exporter's duplicate-emission debug assertion this
//! keeps the scrape surface, the code, and the docs from drifting apart.

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::{Diagnostic, SourceFile, Workspace};

const RULE: &str = "metric-registry";
const PROMETHEUS: &str = "crates/server/src/prometheus.rs";
const SERVER_PREFIX: &str = "crates/server/src/";

/// Runs the rule over the whole workspace.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some(prom) = ws.files.iter().find(|f| f.path == PROMETHEUS) else {
        return;
    };
    let Some((table_start, table_end)) = series_table_range(prom) else {
        out.push(Diagnostic::new(
            PROMETHEUS.to_owned(),
            1,
            RULE,
            "no `SERIES` table found; all viewseeker_* series must be \
             defined in one `static SERIES` slice"
                .to_owned(),
        ));
        return;
    };

    // (a) Definitions: names inside the SERIES table, each exactly once.
    let mut defined: BTreeMap<&str, usize> = BTreeMap::new();
    for i in table_start..=table_end {
        let t = &prom.tokens[i];
        if t.kind == TokenKind::Str && is_series_name(&t.text) {
            if let Some(first_line) = defined.get(t.text.as_str()) {
                out.push(Diagnostic::new(
                    prom.path.clone(),
                    t.line,
                    RULE,
                    format!(
                        "series `{}` defined more than once in SERIES (first on line {})",
                        t.text, first_line
                    ),
                ));
            } else {
                defined.insert(t.text.as_str(), t.line);
            }
        }
    }

    // (b) Emissions: viewseeker_* literals in non-test server code outside
    // the table.
    let mut emitted: BTreeMap<&str, (String, usize)> = BTreeMap::new();
    for file in ws
        .files
        .iter()
        .filter(|f| f.path.starts_with(SERVER_PREFIX))
    {
        let in_prom = file.path == PROMETHEUS;
        for (i, t) in file.tokens.iter().enumerate() {
            if t.kind != TokenKind::Str || !is_series_name(&t.text) || file.is_test(i) {
                continue;
            }
            if in_prom && (table_start..=table_end).contains(&i) {
                continue;
            }
            if !defined.contains_key(t.text.as_str()) {
                out.push(Diagnostic::new(
                    file.path.clone(),
                    t.line,
                    RULE,
                    format!("series `{}` emitted but not defined in SERIES", t.text),
                ));
            }
            emitted
                .entry(t.text.as_str())
                .or_insert_with(|| (file.path.clone(), t.line));
        }
    }
    for (name, def_line) in &defined {
        if !emitted.contains_key(name) {
            out.push(Diagnostic::new(
                prom.path.clone(),
                *def_line,
                RULE,
                format!("series `{name}` defined but never emitted"),
            ));
        }
    }

    // (c) Documentation: each defined name appears verbatim in both docs.
    for doc_name in ["DESIGN.md", "README.md"] {
        let Some((_, text)) = ws.docs.iter().find(|(n, _)| n == doc_name) else {
            continue;
        };
        for (name, def_line) in &defined {
            if !text.contains(name) {
                out.push(Diagnostic::new(
                    prom.path.clone(),
                    *def_line,
                    RULE,
                    format!("series `{name}` undocumented in {doc_name}"),
                ));
            }
        }
    }
}

/// Token range (inclusive) of the bracketed initializer of the `SERIES`
/// item: from its opening `[` to the matching `]`.
fn series_table_range(file: &SourceFile) -> Option<(usize, usize)> {
    let series = (0..file.tokens.len()).find(|&i| {
        file.tokens[i].is_ident("SERIES")
            && i > 0
            && (file.tokens[i - 1].is_ident("static") || file.tokens[i - 1].is_ident("const"))
    })?;
    // Skip past the type annotation (`: &[SeriesDef]`) to the `=`, then
    // take the initializer's opening `[`.
    let mut open = series;
    while open < file.tokens.len() && !file.tokens[open].is_punct('=') {
        if file.tokens[open].is_punct(';') {
            return None;
        }
        open += 1;
    }
    while open < file.tokens.len() && !file.tokens[open].is_punct('[') {
        if file.tokens[open].is_punct(';') {
            return None;
        }
        open += 1;
    }
    let mut depth = 0usize;
    for j in open..file.tokens.len() {
        if file.tokens[j].is_punct('[') {
            depth += 1;
        } else if file.tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((open, j));
            }
        }
    }
    None
}

/// Whether a string literal is a Prometheus series name of ours:
/// `viewseeker_` followed by lowercase/digit/underscore only.
fn is_series_name(s: &str) -> bool {
    s.strip_prefix("viewseeker_").is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(prom: &str, docs: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(
            vec![(PROMETHEUS.to_owned(), prom.to_owned())],
            docs.iter()
                .map(|(n, t)| ((*n).to_owned(), (*t).to_owned()))
                .collect(),
        )
    }

    fn run(prom: &str, docs: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check(&ws(prom, docs), &mut out);
        out
    }

    const DOCS_OK: &[(&str, &str)] = &[
        ("DESIGN.md", "viewseeker_up documented here"),
        ("README.md", "scrape viewseeker_up"),
    ];

    #[test]
    fn consistent_registry_passes() {
        let prom = "static SERIES: &[SeriesDef] = &[series(\"viewseeker_up\", \"gauge\")];\n\
                    fn render() { emit(\"viewseeker_up\"); }";
        assert!(run(prom, DOCS_OK).is_empty());
    }

    #[test]
    fn duplicate_definition_is_flagged() {
        let prom = "static SERIES: &[SeriesDef] = &[s(\"viewseeker_up\"), s(\"viewseeker_up\")];\n\
                    fn render() { emit(\"viewseeker_up\"); }";
        let diags = run(prom, DOCS_OK);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("more than once"));
    }

    #[test]
    fn unemitted_and_undefined_are_flagged() {
        let prom = "static SERIES: &[SeriesDef] = &[s(\"viewseeker_up\")];\n\
                    fn render() { emit(\"viewseeker_rogue_total\"); }";
        let diags = run(
            prom,
            &[
                ("DESIGN.md", "viewseeker_up"),
                ("README.md", "viewseeker_up"),
            ],
        );
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("never emitted")));
        assert!(diags.iter().any(|d| d.message.contains("not defined")));
    }

    #[test]
    fn undocumented_series_is_flagged_per_doc() {
        let prom = "static SERIES: &[SeriesDef] = &[s(\"viewseeker_up\")];\n\
                    fn render() { emit(\"viewseeker_up\"); }";
        let diags = run(prom, &[("DESIGN.md", "nothing"), ("README.md", "nothing")]);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.message.contains("undocumented")));
    }

    #[test]
    fn test_code_literals_do_not_count_as_emission() {
        let prom = "static SERIES: &[SeriesDef] = &[s(\"viewseeker_up\")];\n\
                    #[cfg(test)]\nmod t { fn g() { assert(\"viewseeker_up\"); } }";
        let diags = run(prom, DOCS_OK);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("never emitted"));
    }
}
