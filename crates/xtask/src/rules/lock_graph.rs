//! Rule `lock-order-v2`: cross-function deadlock detection over named
//! lock domains. The file-local `lock-order` rule sees nesting inside
//! one function; this rule chases guards held *across call edges* —
//! function `a` acquires `Registry.sessions`, then calls `b`, which
//! acquires `Session.seeker`: that is an arc `Registry.sessions ->
//! Session.seeker` in the workspace lock-acquisition graph. A cycle in
//! that graph is two threads that can each hold what the other wants:
//! a potential deadlock, reported with the held-guard context and a
//! call-path witness for every arc.
//!
//! A **lock domain** names what a `.lock()`/`.read()`/`.write()`
//! receiver protects: `Type.field` for `self.field.lock()` inside
//! `impl Type` (the common case), `Type` for `self.lock()`. Acquisitions
//! whose receiver cannot be named — locals, free-standing expressions —
//! are not graph nodes: an unnameable domain cannot be matched across
//! functions, and guessing would fabricate cycles. Calls that resolve to
//! *workspace* fns named `lock`/`read`/`write` are call edges, not
//! acquisitions; the callee's own acquisitions propagate through the
//! fixpoint instead.
//!
//! Same-domain self-arcs are reported too (re-acquiring a held Mutex
//! deadlocks unconditionally), except read->read, which `RwLock` admits.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::{receiver_chain, CallGraph};
use crate::rules::lock_order;
use crate::{Diagnostic, Workspace};

const RULE: &str = "lock-order-v2";

/// One direct acquisition of a named domain inside a workspace fn.
struct Acq {
    /// Fn index in the call graph.
    fn_idx: usize,
    /// Token index of the method name in the fn's file.
    token: usize,
    /// Acquisition method: `lock`, `read`, or `write`.
    method: String,
    /// The named lock domain (`Registry.sessions`).
    domain: String,
    /// Last token at which the guard is live ([`lock_order::liveness_end`]).
    live_end: usize,
}

/// One arc in the domain graph, with enough context to report it.
#[derive(Clone)]
struct Arc {
    /// Acquisition methods on the held and acquired side (`lock`/`read`/
    /// `write`) — read->read arcs are dropped before cycle detection.
    methods: (String, String),
    /// File/line of the held guard's acquisition.
    held_at: (String, usize),
    /// File/line where the second domain is (directly) acquired.
    acquired_at: (String, usize),
    /// Call path from the holder fn to the fn acquiring the second
    /// domain; a single element for same-fn arcs.
    witness: Vec<String>,
}

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    let acqs = direct_acquisitions(ws, graph);
    let (trans, via) = transitive_domains(graph, &acqs);
    let arcs = domain_arcs(ws, graph, &acqs, &trans, &via);
    report_cycles(&arcs, out);
}

/// Scans every non-test fn for zero-arg `.lock()`/`.read()`/`.write()`
/// acquisitions with a nameable domain. Sites that resolved to workspace
/// fns are call edges, not acquisitions.
fn direct_acquisitions(ws: &Workspace, graph: &CallGraph) -> Vec<Acq> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for site in lock_order::acquisition_sites(file) {
            if graph.resolved_sites.contains(&(fi, site.token)) {
                continue;
            }
            let Some(fn_idx) = graph.innermost_fn(fi, site.token) else {
                continue;
            };
            if graph.fns[fn_idx].is_test {
                continue;
            }
            let Some(domain) = domain_of(graph, fn_idx, file, site.token) else {
                continue;
            };
            let live_end = lock_order::liveness_end(file, &site);
            out.push(Acq {
                fn_idx,
                token: site.token,
                method: file.tokens[site.token].text.clone(),
                domain,
                live_end,
            });
        }
    }
    out
}

/// Names the domain of the acquisition at `token`: `Type.field...` for a
/// `self.field` receiver chain inside `impl Type`, `Type` for bare
/// `self`. `None` when the receiver cannot be named.
fn domain_of(
    graph: &CallGraph,
    fn_idx: usize,
    file: &crate::SourceFile,
    token: usize,
) -> Option<String> {
    let chain = receiver_chain(file, token)?;
    if chain.first().map(String::as_str) != Some("self") {
        return None;
    }
    let ty = graph.fns[fn_idx].self_ty.clone()?;
    if chain.len() == 1 {
        Some(ty)
    } else {
        Some(format!("{ty}.{}", chain[1..].join(".")))
    }
}

/// Fixpoint over call edges: for each fn, the set of domains it may
/// acquire transitively, plus — for inherited domains — the callee the
/// acquisition flows through (for witness reconstruction).
#[allow(clippy::type_complexity)]
fn transitive_domains(
    graph: &CallGraph,
    acqs: &[Acq],
) -> (Vec<BTreeSet<String>>, BTreeMap<(usize, String), usize>) {
    let mut trans: Vec<BTreeSet<String>> = vec![BTreeSet::new(); graph.fns.len()];
    for a in acqs {
        trans[a.fn_idx].insert(a.domain.clone());
    }
    let mut via: BTreeMap<(usize, String), usize> = BTreeMap::new();
    loop {
        let mut changed = false;
        for e in &graph.edges {
            let inherited: Vec<String> = trans[e.callee]
                .iter()
                .filter(|d| !trans[e.caller].contains(*d))
                .cloned()
                .collect();
            for d in inherited {
                via.insert((e.caller, d.clone()), e.callee);
                trans[e.caller].insert(d);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (trans, via)
}

/// The call path from `fn_idx` down to a fn that directly acquires
/// `domain`, following the fixpoint's `via` links.
fn acquire_path(
    graph: &CallGraph,
    via: &BTreeMap<(usize, String), usize>,
    mut fn_idx: usize,
    domain: &str,
) -> Vec<String> {
    let mut path = vec![graph.fns[fn_idx].qualified()];
    while let Some(&next) = via.get(&(fn_idx, domain.to_owned())) {
        path.push(graph.fns[next].qualified());
        fn_idx = next;
    }
    path
}

/// Builds the domain arcs: for every live guard window, later same-fn
/// acquisitions and call edges into fns that (transitively) acquire.
fn domain_arcs(
    ws: &Workspace,
    graph: &CallGraph,
    acqs: &[Acq],
    trans: &[BTreeSet<String>],
    via: &BTreeMap<(usize, String), usize>,
) -> BTreeMap<(String, String), Arc> {
    let mut arcs: BTreeMap<(String, String), Arc> = BTreeMap::new();
    let mut add = |from: &str, to: &str, arc: Arc| {
        // read->read never deadlocks on its own; drop it here so it can
        // neither form nor close a cycle.
        if arc.methods.0 == "read" && arc.methods.1 == "read" {
            return;
        }
        arcs.entry((from.to_owned(), to.to_owned())).or_insert(arc);
    };
    for a in acqs {
        let file = &ws.files[graph.fns[a.fn_idx].file];
        let held_at = (file.path.clone(), file.tokens[a.token].line);
        // Same-fn: later direct acquisitions inside the live window.
        for b in acqs {
            if b.fn_idx == a.fn_idx && b.token > a.token && b.token <= a.live_end {
                add(
                    &a.domain,
                    &b.domain,
                    Arc {
                        methods: (a.method.clone(), b.method.clone()),
                        held_at: held_at.clone(),
                        acquired_at: (file.path.clone(), file.tokens[b.token].line),
                        witness: vec![graph.fns[a.fn_idx].qualified()],
                    },
                );
            }
        }
        // Cross-fn: call edges inside the live window, into fns that
        // transitively acquire.
        for &ei in &graph.out[a.fn_idx] {
            let edge = &graph.edges[ei];
            if edge.token <= a.token || edge.token > a.live_end {
                continue;
            }
            for d in &trans[edge.callee] {
                let mut witness = vec![graph.fns[a.fn_idx].qualified()];
                witness.extend(acquire_path(graph, via, edge.callee, d));
                let tail = acqs.iter().find(|x| {
                    graph.fns[x.fn_idx].qualified() == *witness.last().unwrap() && x.domain == *d
                });
                let acquired_at = tail
                    .map(|x| {
                        let tf = &ws.files[graph.fns[x.fn_idx].file];
                        (tf.path.clone(), tf.tokens[x.token].line)
                    })
                    .unwrap_or_else(|| held_at.clone());
                let tail_method = tail.map_or_else(|| "lock".to_owned(), |x| x.method.clone());
                add(
                    &a.domain,
                    d,
                    Arc {
                        methods: (a.method.clone(), tail_method),
                        held_at: held_at.clone(),
                        acquired_at,
                        witness,
                    },
                );
            }
        }
    }
    arcs
}

/// Finds cycles in the domain digraph and reports one diagnostic per
/// strongly-connected cycle (plus self-arcs), deterministically.
fn report_cycles(arcs: &BTreeMap<(String, String), Arc>, out: &mut Vec<Diagnostic>) {
    let nodes: BTreeSet<&String> = arcs.keys().flat_map(|(a, b)| [a, b]).collect();
    // Reachability closure over the (small) domain graph.
    let mut reach: BTreeMap<&String, BTreeSet<&String>> = BTreeMap::new();
    for (a, b) in arcs.keys() {
        reach.entry(a).or_default().insert(b);
    }
    loop {
        let mut changed = false;
        for &n in &nodes {
            let step: BTreeSet<&String> = reach
                .get(n)
                .map(|succ| {
                    succ.iter()
                        .filter_map(|s| reach.get(*s))
                        .flatten()
                        .copied()
                        .collect()
                })
                .unwrap_or_default();
            let entry = reach.entry(n).or_default();
            for s in step {
                changed |= entry.insert(s);
            }
        }
        if !changed {
            break;
        }
    }
    // A node on a cycle reaches itself; mutually-reaching nodes form one
    // component, reported once from its lexicographically-first member.
    let mut reported: BTreeSet<&String> = BTreeSet::new();
    for &n in &nodes {
        if reported.contains(n) || !reach.get(n).is_some_and(|r| r.contains(n)) {
            continue;
        }
        let component: Vec<&String> = nodes
            .iter()
            .copied()
            .filter(|&m| {
                m == n
                    || (reach.get(n).is_some_and(|r| r.contains(m))
                        && reach.get(m).is_some_and(|r| r.contains(n)))
            })
            .collect();
        reported.extend(component.iter().copied());
        // Walk a representative cycle starting from `n`.
        let cycle = cycle_from(n, &component, arcs);
        let detail: Vec<String> = cycle
            .windows(2)
            .filter_map(|w| arcs.get(&(w[0].clone(), w[1].clone())))
            .map(|arc| {
                format!(
                    "{} held at {}:{} while acquiring at {}:{} (via {})",
                    arc.methods.0,
                    arc.held_at.0,
                    arc.held_at.1,
                    arc.acquired_at.0,
                    arc.acquired_at.1,
                    arc.witness.join(" -> "),
                )
            })
            .collect();
        let first = arcs
            .get(&(cycle[0].clone(), cycle[1].clone()))
            .expect("cycle arcs exist");
        out.push(Diagnostic {
            file: first.held_at.0.clone(),
            line: first.held_at.1,
            rule: RULE,
            message: format!(
                "lock domains form a cycle: {}; two threads can each hold what the \
                 other wants — establish one global acquisition order [{}]",
                cycle.join(" -> "),
                detail.join("; "),
            ),
            witness: first.witness.clone(),
        });
    }
}

/// A representative cycle `n -> ... -> n` using only arcs inside the
/// component, greedily following the smallest successor.
fn cycle_from(
    start: &String,
    component: &[&String],
    arcs: &BTreeMap<(String, String), Arc>,
) -> Vec<String> {
    let mut cycle = vec![start.clone()];
    let mut cur = start;
    loop {
        let next = component.iter().copied().find(|&m| {
            arcs.contains_key(&(cur.clone(), m.clone())) && (!cycle.contains(m) || m == start)
        });
        match next {
            Some(m) => {
                cycle.push(m.clone());
                if m == start {
                    return cycle;
                }
                cur = m;
            }
            // Dead end inside the component (shouldn't happen in an SCC,
            // but stay total): close the cycle formally.
            None => {
                cycle.push(start.clone());
                return cycle;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(
            vec![("crates/server/src/reg.rs".to_owned(), src.to_owned())],
            Vec::new(),
        );
        let graph = CallGraph::build(&ws);
        let mut out = Vec::new();
        check(&ws, &graph, &mut out);
        out
    }

    #[test]
    fn cross_function_cycle_is_reported_with_witness() {
        let diags = lint(
            "pub struct S;\n\
             impl S {\n\
               pub fn ab(&self) { let g = self.x.lock(); self.grab_y(); drop(g); }\n\
               fn grab_y(&self) { let h = self.y.lock(); touch(&h); }\n\
               pub fn ba(&self) { let h = self.y.lock(); self.grab_x(); drop(h); }\n\
               fn grab_x(&self) { let g = self.x.lock(); touch(&g); }\n\
             }\n\
             fn touch(_g: &G) {}\n",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "lock-order-v2");
        assert!(
            diags[0].message.contains("S.x -> S.y"),
            "{}",
            diags[0].message
        );
        assert_eq!(
            diags[0].witness,
            ["server::reg::S::ab", "server::reg::S::grab_y"]
        );
    }

    #[test]
    fn consistent_global_order_has_no_cycle() {
        assert!(lint(
            "pub struct S;\n\
             impl S {\n\
               pub fn ab(&self) { let g = self.x.lock(); self.grab_y(); drop(g); }\n\
               fn grab_y(&self) { let h = self.y.lock(); touch(&h); }\n\
               pub fn also_ab(&self) { let g = self.x.lock(); let h = self.y.lock(); use2(g, h); }\n\
             }\n\
             fn touch(_g: &G) {}\n",
        )
        .is_empty());
    }

    #[test]
    fn reacquiring_a_held_mutex_through_a_helper_is_a_self_cycle() {
        let diags = lint(
            "pub struct S;\n\
             impl S {\n\
               pub fn outer(&self) { let g = self.x.lock(); self.inner(); drop(g); }\n\
               fn inner(&self) { let h = self.x.lock(); touch(&h); }\n\
             }\n\
             fn touch(_g: &G) {}\n",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("S.x -> S.x"),
            "{}",
            diags[0].message
        );
        assert_eq!(
            diags[0].witness,
            ["server::reg::S::outer", "server::reg::S::inner"]
        );
    }

    #[test]
    fn read_read_reacquisition_is_allowed() {
        assert!(lint(
            "pub struct S;\n\
             impl S {\n\
               pub fn outer(&self) { let g = self.x.read(); self.inner(); drop(g); }\n\
               fn inner(&self) { let h = self.x.read(); touch(&h); }\n\
             }\n\
             fn touch(_g: &G) {}\n",
        )
        .is_empty());
    }

    #[test]
    fn dropped_guard_opens_no_window() {
        assert!(lint(
            "pub struct S;\n\
             impl S {\n\
               pub fn ab(&self) { let g = self.x.lock(); drop(g); self.grab_y(); }\n\
               fn grab_y(&self) { let h = self.y.lock(); touch(&h); }\n\
               pub fn ba(&self) { let h = self.y.lock(); drop(h); self.grab_x(); }\n\
               fn grab_x(&self) { let g = self.x.lock(); touch(&g); }\n\
             }\n\
             fn touch(_g: &G) {}\n",
        )
        .is_empty());
    }
}
