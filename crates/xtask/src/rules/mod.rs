//! The vslint rule catalog. Each rule module exposes
//! `check(file, &mut Vec<Diagnostic>)` (or `check(workspace, ..)` for
//! workspace-level rules) and pushes raw findings; suppression handling
//! lives in [`crate::Workspace::lint`].

pub mod float_sum;
pub mod forbid_unsafe;
pub mod hash_iter;
pub mod lock_graph;
pub mod lock_order;
pub mod metric_registry;
pub mod no_panic;
pub mod panic_reach;
pub mod reactor_blocking;
pub mod span_registry;
pub mod wall_clock;

use crate::lexer::TokenKind;
use crate::SourceFile;

/// Whether token `i` is a method-call name: `.name(` with exactly this
/// ident between the dot and the open paren.
pub(crate) fn is_method_call(file: &SourceFile, i: usize) -> bool {
    i > 0
        && file.tokens[i].kind == TokenKind::Ident
        && file.tokens[i - 1].is_punct('.')
        && file.tok(i + 1).is_some_and(|t| t.is_punct('('))
}

/// The determinism-critical crates: rule families 2 (hash-iter,
/// wall-clock) apply here. `cli`/`bench`/`eval` are presentation and
/// measurement layers where wall-clock reads and report-order freedom are
/// the point.
pub(crate) const DETERMINISM_SCOPE: &[&str] = &[
    "src/",
    "crates/core/",
    "crates/dataset/",
    "crates/server/",
    "crates/catalog/",
    "crates/stats/",
    "crates/learn/",
];

/// Whether `path` falls in the determinism-critical scope.
pub(crate) fn in_determinism_scope(path: &str) -> bool {
    DETERMINISM_SCOPE.iter().any(|p| path.starts_with(p))
}
