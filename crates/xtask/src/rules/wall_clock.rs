//! Rule `wall-clock`: `Instant::now` / `SystemTime::now` are forbidden in
//! the determinism-critical crates outside the two sanctioned homes —
//! `core::trace` (the `Stopwatch` abstraction) and `server::metrics`.
//! Wall-clock reads sprinkled through the recommendation path make replay
//! and bit-identical testing impossible; time must flow through one
//! auditable seam.

use crate::{Diagnostic, SourceFile};

use super::in_determinism_scope;

const RULE: &str = "wall-clock";
const EXEMPT_FILES: &[&str] = &["crates/core/src/trace.rs", "crates/server/src/metrics.rs"];

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_determinism_scope(&file.path) || EXEMPT_FILES.contains(&file.path.as_str()) {
        return;
    }
    for i in 0..file.tokens.len() {
        if file.is_test(i) {
            continue;
        }
        for clock in ["Instant", "SystemTime"] {
            if file.matches_seq(i, &[('i', clock), ('p', ":"), ('p', ":"), ('i', "now")]) {
                out.push(Diagnostic::new(
                    file.path.clone(),
                    file.tokens[i].line,
                    RULE,
                    format!(
                        "{clock}::now() outside core::trace/server::metrics; route timing \
                         through trace::Stopwatch or justify with vslint::allow"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path.into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_both_clocks_in_scope() {
        let diags = run(
            "crates/core/src/seeker.rs",
            "fn f() { let t = Instant::now(); let s = std::time::SystemTime::now(); }",
        );
        assert_eq!(diags.len(), 2);
    }

    #[test]
    fn exempt_files_and_tests_pass() {
        assert!(run("crates/core/src/trace.rs", "fn f() { Instant::now(); }").is_empty());
        assert!(run("crates/server/src/metrics.rs", "fn f() { Instant::now(); }").is_empty());
        assert!(run(
            "crates/core/src/seeker.rs",
            "#[cfg(test)]\nmod t { fn f() { Instant::now(); } }",
        )
        .is_empty());
        assert!(run("crates/bench/src/lib.rs", "fn f() { Instant::now(); }").is_empty());
    }
}
