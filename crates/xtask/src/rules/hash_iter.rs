//! Rule `hash-iter`: iterating a `HashMap`/`HashSet` in the
//! determinism-critical crates is flagged unless the surrounding function
//! visibly restores an order (a `sort*` call or a BTree collection) or the
//! iteration feeds an order-free aggregation (`count`, `sum`, `any`, …).
//! Hash iteration order varies across processes (SipHash keys) and across
//! std versions, so anything ordered that it feeds — eviction choices,
//! rendered output, recommendation lists — silently diverges between
//! runs.
//!
//! This is a heuristic, not a proof: identifiers whose declared type or
//! initializer mentions `HashMap`/`HashSet` are tracked file-wide (which
//! covers struct fields accessed as `self.field`), and absolution scans
//! the enclosing function. Genuinely order-free iterations the heuristic
//! cannot see get a justified `vslint::allow(hash-iter)`.

use std::collections::BTreeSet;

use crate::lexer::TokenKind;
use crate::{Diagnostic, SourceFile};

use super::in_determinism_scope;

const RULE: &str = "hash-iter";

/// Methods that iterate the collection in hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Function-level absolution: an explicit re-ordering downstream.
const ORDERING_IDENTS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

/// Chain-level absolution: aggregations whose result is independent of
/// visit order. `min`/`max` qualify (ties between equal values are still
/// that value); `min_by_key`/`max_by_key` do NOT (ties pick an arbitrary
/// element) and are deliberately absent.
const ORDER_FREE_SINKS: &[&str] = &[
    "count", "len", "sum", "any", "all", "min", "max", "contains", "is_empty", "fold",
];

/// Methods that return the collection itself (or a view of it): guard
/// acquisition and smart-pointer plumbing. An iteration method *behind*
/// one of these — `self.m.lock().unwrap().values()` — still iterates the
/// hash collection, so the chain walk sees through them. Anything else
/// (`.get(k)`, `.snapshot()`) returns a different value and ends the
/// walk.
const PASS_THROUGH: &[&str] = &[
    "lock",
    "read",
    "write",
    "borrow",
    "borrow_mut",
    "unwrap",
    "expect",
    "as_ref",
    "as_mut",
    "clone",
];

/// How many chained calls the walk follows before giving up.
const CHAIN_LIMIT: usize = 6;

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !in_determinism_scope(&file.path) {
        return;
    }
    let hash_idents = collect_hash_idents(file);
    if hash_idents.is_empty() {
        return;
    }
    for i in 0..file.tokens.len() {
        if file.is_test(i) {
            continue;
        }
        let t = &file.tokens[i];
        if t.kind != TokenKind::Ident || !hash_idents.contains(t.text.as_str()) {
            continue;
        }
        // `name.iter()` / `self.name.values()` — possibly behind guard
        // methods: `self.name.lock().unwrap().values()`.
        let is_iter_call = chain_reaches_iteration(file, i);
        // `for k in &name {` / `for (k, v) in name {` — the collection is
        // the loop iterable directly (IntoIterator on &HashMap).
        let is_for_loop =
            file.tok(i + 1).is_some_and(|b| b.is_punct('{')) && preceded_by_for_in(file, i);
        if !is_iter_call && !is_for_loop {
            continue;
        }
        if absolved(file, i) {
            continue;
        }
        out.push(Diagnostic::new(
            file.path.clone(),
            t.line,
            RULE,
            format!(
                "iteration over HashMap/HashSet `{}` in hash order may feed ordered \
                 output; sort the results, use a BTree collection, or justify with \
                 vslint::allow",
                t.text
            ),
        ));
    }
}

/// Walks the method chain starting after the collection name at `i`:
/// `.method(args)` segments, seeing through [`PASS_THROUGH`] methods,
/// until an [`ITER_METHODS`] call (hash iteration — true), a different
/// method (a new value — false), or [`CHAIN_LIMIT`] segments.
fn chain_reaches_iteration(file: &SourceFile, i: usize) -> bool {
    let mut j = i + 1;
    for _ in 0..CHAIN_LIMIT {
        if !file.tok(j).is_some_and(|d| d.is_punct('.')) {
            return false;
        }
        let Some(m) = file.tok(j + 1) else {
            return false;
        };
        if m.kind != TokenKind::Ident || !file.tok(j + 2).is_some_and(|p| p.is_punct('(')) {
            return false;
        }
        if ITER_METHODS.contains(&m.text.as_str()) {
            return true;
        }
        if !PASS_THROUGH.contains(&m.text.as_str()) {
            return false;
        }
        // Skip the pass-through call's arguments to its closing paren.
        let mut depth = 0usize;
        let mut k = j + 2;
        while let Some(t) = file.tok(k) {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        j = k + 1;
    }
    false
}

/// Whether the iteration at token `i` is absolved: the enclosing function
/// re-orders somewhere, or the call chain ends in an order-free sink.
fn absolved(file: &SourceFile, i: usize) -> bool {
    if let Some((start, end)) = file.enclosing_fn(i) {
        for j in start..=end {
            let t = &file.tokens[j];
            if t.kind == TokenKind::Ident && ORDERING_IDENTS.contains(&t.text.as_str()) {
                return true;
            }
        }
    }
    // Scan the rest of the statement (crudely: until the next `;`) for an
    // order-free sink in the same chain.
    let mut j = i + 1;
    while let Some(t) = file.tok(j) {
        if t.is_punct(';') {
            break;
        }
        if t.kind == TokenKind::Ident && ORDER_FREE_SINKS.contains(&t.text.as_str()) {
            return true;
        }
        j += 1;
    }
    false
}

/// Whether token `i` (the collection name) sits in `for <pat> in [&mut] name`.
fn preceded_by_for_in(file: &SourceFile, i: usize) -> bool {
    // Walk back over `&`, `mut`, then require `in`, then a `for` within a
    // few tokens of pattern.
    let mut j = i;
    while j > 0 && (file.tokens[j - 1].is_punct('&') || file.tokens[j - 1].is_ident("mut")) {
        j -= 1;
    }
    if j == 0 || !file.tokens[j - 1].is_ident("in") {
        return false;
    }
    // Scan back a bounded window for the `for` keyword.
    let lo = j.saturating_sub(16);
    (lo..j).rev().any(|k| file.tokens[k].is_ident("for"))
}

/// Collects identifiers declared or initialized as `HashMap`/`HashSet`
/// anywhere in the file: `name: HashMap<..>` (bindings, params, struct
/// fields) and `name = HashMap::new()` / `with_capacity`. Wrappers like
/// `Arc<Mutex<HashMap<..>>>` still mention `HashMap` within the
/// declaration window, so wrapped fields are tracked too; the chain walk
/// in [`chain_reaches_iteration`] sees through the guard methods that
/// unwrap them at the iteration site.
fn collect_hash_idents(file: &SourceFile) -> BTreeSet<&str> {
    let mut out = BTreeSet::new();
    for i in 0..file.tokens.len() {
        let t = &file.tokens[i];
        if t.kind != TokenKind::Ident || t.text == "HashMap" || t.text == "HashSet" {
            continue;
        }
        // `name :` (not `::`) followed within a short window by
        // HashMap/HashSet before the declaration ends.
        let colon = file.tok(i + 1).is_some_and(|c| c.is_punct(':'))
            && !file.tok(i + 2).is_some_and(|c| c.is_punct(':'));
        // `name = HashMap::new(..)` — `=` but not `==` / `=>`.
        let assign = file.tok(i + 1).is_some_and(|c| c.is_punct('='))
            && !file
                .tok(i + 2)
                .is_some_and(|c| c.is_punct('=') || c.is_punct('>'));
        if !colon && !assign {
            continue;
        }
        let mut j = i + 2;
        let limit = j + 24;
        let mut angle = 0i32;
        while let Some(t2) = file.tok(j) {
            if j > limit {
                break;
            }
            match t2.kind {
                TokenKind::Ident if t2.text == "HashMap" || t2.text == "HashSet" => {
                    out.insert(file.tokens[i].text.as_str());
                    break;
                }
                TokenKind::Punct => {
                    match t2.text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        // Declaration ends at these when not nested in
                        // generics: next field/param/statement.
                        "," | ";" | ")" | "{" | "}" if angle <= 0 => break,
                        "=" if !assign && angle <= 0 => break,
                        _ => {}
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path.into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn flags_unsorted_iteration_of_declared_maps() {
        let diags = run(
            "crates/core/src/x.rs",
            "struct S { m: HashMap<String, u32> }\n\
             impl S { fn f(&self) -> Vec<u32> { self.m.values().copied().collect() } }",
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("`m`"));
    }

    #[test]
    fn sort_in_function_absolves() {
        assert!(run(
            "crates/core/src/x.rs",
            "fn f(m: &HashMap<String, u32>) -> Vec<u32> {\n\
             let mut v: Vec<u32> = m.values().copied().collect(); v.sort(); v }",
        )
        .is_empty());
    }

    #[test]
    fn order_free_sinks_absolve() {
        assert!(run(
            "crates/core/src/x.rs",
            "fn f(m: &HashMap<String, u32>) -> u64 { m.values().map(|v| *v as u64).sum::<u64>() }",
        )
        .is_empty());
    }

    #[test]
    fn for_loop_over_map_is_flagged() {
        let diags = run(
            "crates/core/src/x.rs",
            "fn f(m: &HashMap<String, u32>, out: &mut Vec<u32>) {\n\
             for (_k, v) in m { out.push(*v); } }",
        );
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn iteration_behind_a_guard_chain_is_flagged() {
        // The map lives in Arc<Mutex<..>>; the iteration happens behind
        // `.lock().unwrap()`, which must not hide it.
        let diags = run(
            "crates/core/src/x.rs",
            "struct S { m: Arc<Mutex<HashMap<String, u32>>> }\n\
             impl S { fn f(&self) -> Vec<u32> { \
             self.m.lock().unwrap().values().copied().collect() } }",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`m`"));
    }

    #[test]
    fn non_pass_through_methods_end_the_chain() {
        // `.snapshot()` returns some other value; `.iter()` on that value
        // is not hash iteration.
        assert!(run(
            "crates/core/src/x.rs",
            "struct S { m: HashMap<String, u32> }\n\
             impl S { fn f(&self) -> Vec<u32> { self.m.snapshot().iter().collect() } }",
        )
        .is_empty());
    }

    #[test]
    fn non_hash_collections_pass() {
        assert!(run(
            "crates/core/src/x.rs",
            "fn f(m: &BTreeMap<String, u32>) -> Vec<u32> { m.values().copied().collect() }",
        )
        .is_empty());
    }
}
