//! Rule `panic-reachability`: the no-panic guarantee, extended from
//! "these files" to "everything a request can reach". Starting from the
//! server/net/cluster request entry points (`handle`, `handle_traced`,
//! `serve*`, `run`), every workspace function transitively reachable
//! over the call graph must be panic-free — an `unwrap()` in a
//! `dataset` helper three frames below a handler drops the connection
//! just as surely as one in the handler itself.
//!
//! Files already covered by the file-local `no-panic` rule are excluded
//! here (their panic sites are flagged unconditionally), so the two
//! rules never double-report. Each finding carries a call-path witness
//! from an entry point to the offending function.

use crate::graph::CallGraph;
use crate::rules::no_panic;
use crate::{Diagnostic, Workspace};

const RULE: &str = "panic-reachability";

/// Fn names treated as request entry points when defined in the
/// `server`, `net`, or `cluster` crates.
const ENTRY_NAMES: &[&str] = &[
    "handle",
    "handle_traced",
    "serve",
    "serve_event",
    "serve_observed",
    "run",
];

/// Crates whose entry-point fns seed the reachability walk.
const ENTRY_CRATES: &[&str] = &["server", "net", "cluster"];

/// Whether `fn_index` in `graph` is a request entry point.
fn is_entry(graph: &CallGraph, fn_index: usize) -> bool {
    let f = &graph.fns[fn_index];
    if f.is_test || f.body.is_none() {
        return false;
    }
    let krate = f.module.split("::").next().unwrap_or("");
    ENTRY_CRATES.contains(&krate) && ENTRY_NAMES.contains(&f.name.as_str())
}

/// Runs the rule over the workspace.
pub fn check(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    let entries: Vec<usize> = (0..graph.fns.len())
        .filter(|&i| is_entry(graph, i))
        .collect();
    if entries.is_empty() {
        return;
    }
    let tree = graph.reach(&entries);
    // Panic sites per file, computed once for the files that need it.
    let mut sites_cache: Vec<Option<Vec<no_panic::PanicSite>>> =
        ws.files.iter().map(|_| None).collect();
    for &fn_index in tree.keys() {
        let item = &graph.fns[fn_index];
        let Some((bs, be)) = item.body else { continue };
        let file = &ws.files[item.file];
        // The file-local no-panic rule already owns these files.
        if no_panic::SCOPE.iter().any(|p| file.path.starts_with(p)) {
            continue;
        }
        let sites = sites_cache[item.file].get_or_insert_with(|| no_panic::panic_sites(file));
        let witness = graph.witness(&tree, fn_index);
        for site in sites.iter() {
            if site.token < bs || site.token > be {
                continue;
            }
            // Nested fn items own their sites.
            if graph.innermost_fn(item.file, site.token) != Some(fn_index) {
                continue;
            }
            out.push(Diagnostic {
                file: file.path.clone(),
                line: file.tokens[site.token].line,
                rule: RULE,
                message: format!(
                    "{} is reachable from request entry point `{}` (via {}); \
                     propagate an error or prove the invariant to the type system",
                    site.what,
                    witness.first().map(String::as_str).unwrap_or("?"),
                    witness.join(" -> "),
                ),
                witness: witness.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(
            files
                .iter()
                .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
                .collect(),
            Vec::new(),
        );
        let graph = CallGraph::build(&ws);
        let mut out = Vec::new();
        check(&ws, &graph, &mut out);
        out
    }

    #[test]
    fn panic_behind_a_helper_is_caught_with_witness() {
        let diags = lint(&[
            (
                "crates/server/src/router.rs",
                "pub struct Router;\n\
                 impl Router { pub fn handle(&self) { viewseeker_core::score::rank(); } }\n",
            ),
            (
                "crates/core/src/score.rs",
                "pub fn rank() { helper(); }\n\
                 fn helper() { let v: Vec<u32> = Vec::new(); v.last().unwrap(); }\n",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "panic-reachability");
        assert_eq!(diags[0].file, "crates/core/src/score.rs");
        assert_eq!(
            diags[0].witness,
            [
                "server::router::Router::handle",
                "core::score::rank",
                "core::score::helper"
            ]
        );
    }

    #[test]
    fn unreachable_panics_and_no_panic_scope_are_not_reported() {
        let diags = lint(&[
            (
                "crates/server/src/router.rs",
                "pub struct Router;\n\
                 impl Router { pub fn handle(&self) {} }\n\
                 fn offline_tool() { x.unwrap(); }\n",
            ),
            (
                "crates/core/src/score.rs",
                "pub fn never_called() { x.unwrap(); }\n",
            ),
        ]);
        // `offline_tool` is in no-panic scope (file-local rule owns it);
        // `never_called` is unreachable.
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn test_code_below_entry_points_is_ignored() {
        let diags = lint(&[
            (
                "crates/net/src/reactor.rs",
                "pub struct Reactor;\n\
                 impl Reactor { pub fn run(&mut self) { viewseeker_core::score::rank(); } }\n",
            ),
            (
                "crates/core/src/score.rs",
                "pub fn rank() {}\n\
                 #[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n",
            ),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
