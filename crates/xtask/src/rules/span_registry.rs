//! Rule `span-registry`: every request-pipeline stage name must be
//! (a) defined exactly once in the `SPANS` table in
//! `crates/net/src/trace.rs`, (b) emitted at least once by non-test code
//! in the net or server crate, and (c) documented — the backtick-quoted
//! name must appear in both DESIGN.md and README.md. This mirrors the
//! `metric-registry` rule for Prometheus series: the trace export, the
//! stage histograms, and the docs all key on these names, so a renamed
//! or orphaned stage is a lint failure, not a silent drift.
//!
//! Unlike series names, span names are ordinary words (`parse`,
//! `write`), so definitions are recognized structurally — string
//! literals in `name: "..."` field position inside the table — and the
//! documentation check requires the name in backticks to avoid matching
//! prose.

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::{Diagnostic, SourceFile, Workspace};

const RULE: &str = "span-registry";
const TRACE: &str = "crates/net/src/trace.rs";
const EMIT_PREFIXES: [&str; 2] = ["crates/net/src/", "crates/server/src/"];

/// Runs the rule over the whole workspace.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some(trace) = ws.files.iter().find(|f| f.path == TRACE) else {
        return;
    };
    let Some((table_start, table_end)) = spans_table_range(trace) else {
        out.push(Diagnostic::new(
            TRACE.to_owned(),
            1,
            RULE,
            "no `SPANS` table found; all request stage names must be \
             defined in one `static SPANS` array"
                .to_owned(),
        ));
        return;
    };

    // (a) Definitions: `name: "..."` literals inside the SPANS table,
    // each exactly once.
    let mut defined: BTreeMap<&str, usize> = BTreeMap::new();
    let mut i = table_start;
    while i + 2 <= table_end {
        let t = &trace.tokens[i];
        if t.is_ident("name")
            && trace.tokens[i + 1].is_punct(':')
            && trace.tokens[i + 2].kind == TokenKind::Str
        {
            let lit = &trace.tokens[i + 2];
            if let Some(first_line) = defined.get(lit.text.as_str()) {
                out.push(Diagnostic::new(
                    trace.path.clone(),
                    lit.line,
                    RULE,
                    format!(
                        "stage `{}` defined more than once in SPANS (first on line {})",
                        lit.text, first_line
                    ),
                ));
            } else {
                defined.insert(lit.text.as_str(), lit.line);
            }
            i += 3;
        } else {
            i += 1;
        }
    }
    if defined.is_empty() {
        out.push(Diagnostic::new(
            trace.path.clone(),
            trace.tokens[table_start].line,
            RULE,
            "SPANS table defines no stage names".to_owned(),
        ));
        return;
    }

    // (b) Emissions: defined names appearing as string literals in
    // non-test net/server code outside the table itself.
    let mut emitted: BTreeMap<&str, (String, usize)> = BTreeMap::new();
    for file in ws
        .files
        .iter()
        .filter(|f| EMIT_PREFIXES.iter().any(|p| f.path.starts_with(p)))
    {
        let in_trace = file.path == TRACE;
        for (i, t) in file.tokens.iter().enumerate() {
            if t.kind != TokenKind::Str || file.is_test(i) {
                continue;
            }
            if in_trace && (table_start..=table_end).contains(&i) {
                continue;
            }
            if let Some((name, _)) = defined.get_key_value(t.text.as_str()) {
                emitted
                    .entry(name)
                    .or_insert_with(|| (file.path.clone(), t.line));
            }
        }
    }
    for (name, def_line) in &defined {
        if !emitted.contains_key(name) {
            out.push(Diagnostic::new(
                trace.path.clone(),
                *def_line,
                RULE,
                format!("stage `{name}` defined but never emitted"),
            ));
        }
    }

    // (c) Documentation: each name, backtick-quoted, in both docs.
    for doc_name in ["DESIGN.md", "README.md"] {
        let Some((_, text)) = ws.docs.iter().find(|(n, _)| n == doc_name) else {
            continue;
        };
        for (name, def_line) in &defined {
            if !text.contains(&format!("`{name}`")) {
                out.push(Diagnostic::new(
                    trace.path.clone(),
                    *def_line,
                    RULE,
                    format!("stage `{name}` undocumented in {doc_name}"),
                ));
            }
        }
    }
}

/// Token range (inclusive) of the bracketed initializer of the `SPANS`
/// item: from its opening `[` (after the `=`) to the matching `]`.
fn spans_table_range(file: &SourceFile) -> Option<(usize, usize)> {
    let spans = (0..file.tokens.len()).find(|&i| {
        file.tokens[i].is_ident("SPANS")
            && i > 0
            && (file.tokens[i - 1].is_ident("static") || file.tokens[i - 1].is_ident("const"))
    })?;
    // Skip past the type annotation (`: [SpanDef; 6]`) to the `=`, then
    // take the initializer's opening `[`.
    let mut open = spans;
    while open < file.tokens.len() && !file.tokens[open].is_punct('=') {
        if file.tokens[open].is_punct(';') && !in_type_brackets(file, spans, open) {
            return None;
        }
        open += 1;
    }
    while open < file.tokens.len() && !file.tokens[open].is_punct('[') {
        if file.tokens[open].is_punct(';') {
            return None;
        }
        open += 1;
    }
    let mut depth = 0usize;
    for j in open..file.tokens.len() {
        if file.tokens[j].is_punct('[') {
            depth += 1;
        } else if file.tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some((open, j));
            }
        }
    }
    None
}

/// Whether token `at` sits inside `[...]` brackets opened after `from` —
/// the `;` in an array-length type like `[SpanDef; 6]` must not be
/// mistaken for the end of the item.
fn in_type_brackets(file: &SourceFile, from: usize, at: usize) -> bool {
    let mut depth = 0isize;
    for t in &file.tokens[from..at] {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
        }
    }
    depth > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: Vec<(&str, &str)>, docs: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(
            files
                .into_iter()
                .map(|(p, s)| (p.to_owned(), s.to_owned()))
                .collect(),
            docs.iter()
                .map(|(n, t)| ((*n).to_owned(), (*t).to_owned()))
                .collect(),
        );
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    const TABLE: &str = "static SPANS: [SpanDef; 2] = [\n\
                         SpanDef { name: \"parse\", help: \"h\" },\n\
                         SpanDef { name: \"write\", help: \"h\" },\n\
                         ];\n";

    const DOCS_OK: &[(&str, &str)] = &[
        ("DESIGN.md", "stages `parse` and `write`"),
        ("README.md", "`parse` then `write`"),
    ];

    #[test]
    fn consistent_registry_passes() {
        let emit = "fn f(t: &T) { t.record(\"parse\"); t.record(\"write\"); }";
        let diags = run(vec![(TRACE, &format!("{TABLE}{emit}"))], DOCS_OK);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn emission_from_the_server_crate_counts() {
        let emit = "fn g() { rec(\"parse\"); rec(\"write\"); }";
        let diags = run(
            vec![(TRACE, TABLE), ("crates/server/src/trace.rs", emit)],
            DOCS_OK,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn duplicate_definition_is_flagged() {
        let table = "static SPANS: [SpanDef; 2] = [\n\
                     SpanDef { name: \"parse\", help: \"h\" },\n\
                     SpanDef { name: \"parse\", help: \"h\" },\n\
                     ];\n\
                     fn f() { r(\"parse\"); }";
        let diags = run(
            vec![(TRACE, table)],
            &[("DESIGN.md", "`parse`"), ("README.md", "`parse`")],
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("more than once"));
    }

    #[test]
    fn unemitted_stage_is_flagged() {
        let diags = run(vec![(TRACE, TABLE)], DOCS_OK);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.message.contains("never emitted")));
    }

    #[test]
    fn test_code_and_table_literals_do_not_count_as_emission() {
        let src = format!(
            "{TABLE}#[cfg(test)]\nmod t {{ fn g() {{ assert(\"parse\"); assert(\"write\"); }} }}"
        );
        let diags = run(vec![(TRACE, &src)], DOCS_OK);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.message.contains("never emitted")));
    }

    #[test]
    fn undocumented_stage_needs_backticks() {
        let emit = "fn f(t: &T) { t.record(\"parse\"); t.record(\"write\"); }";
        // Prose mentions of "parse"/"write" without backticks don't count.
        let docs = &[
            ("DESIGN.md", "we parse and write things; `write` is quoted"),
            ("README.md", "`parse` and `write`"),
        ];
        let diags = run(vec![(TRACE, &format!("{TABLE}{emit}"))], docs);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("undocumented in DESIGN.md"));
        assert!(diags[0].message.contains("`parse`"));
    }

    #[test]
    fn missing_table_is_flagged() {
        let diags = run(vec![(TRACE, "fn f() { r(\"parse\"); }")], DOCS_OK);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no `SPANS` table"));
    }
}
