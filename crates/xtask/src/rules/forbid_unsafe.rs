//! Rule `forbid-unsafe`: every crate root in the workspace — `src/lib.rs`,
//! `src/main.rs`, and each `src/bin/*.rs` — must carry
//! `#![forbid(unsafe_code)]`. `forbid` (unlike `deny`) cannot be
//! overridden further down the module tree, so this single line per crate
//! is a proof there is no unsafe block anywhere in it.

use crate::{Diagnostic, SourceFile};

const RULE: &str = "forbid-unsafe";

/// Runs the rule over one file (no-op unless it is a crate root).
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_crate_root(&file.path) {
        return;
    }
    let has_forbid = (0..file.tokens.len()).any(|i| {
        file.matches_seq(
            i,
            &[
                ('p', "#"),
                ('p', "!"),
                ('p', "["),
                ('i', "forbid"),
                ('p', "("),
                ('i', "unsafe_code"),
                ('p', ")"),
                ('p', "]"),
            ],
        )
    });
    if !has_forbid {
        out.push(Diagnostic {
            file: file.path.clone(),
            line: 1,
            rule: RULE,
            message: "crate root is missing #![forbid(unsafe_code)]".to_owned(),
        });
    }
}

/// Whether a workspace-relative path names a crate root.
fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || (path.contains("/src/bin/") && path.ends_with(".rs"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path.into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn missing_forbid_is_flagged_on_roots_only() {
        assert_eq!(run("crates/cli/src/main.rs", "fn main() {}").len(), 1);
        assert_eq!(run("crates/bench/src/bin/tool.rs", "fn main() {}").len(), 1);
        assert!(run("crates/core/src/seeker.rs", "fn f() {}").is_empty());
    }

    #[test]
    fn present_forbid_passes() {
        assert!(run(
            "crates/core/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}",
        )
        .is_empty());
    }
}
