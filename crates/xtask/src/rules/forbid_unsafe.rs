//! Rule `forbid-unsafe`: every crate root in the workspace — `src/lib.rs`,
//! `src/main.rs`, and each `src/bin/*.rs` — must carry
//! `#![forbid(unsafe_code)]`. `forbid` (unlike `deny`) cannot be
//! overridden further down the module tree, so this single line per crate
//! is a proof there is no unsafe block anywhere in it.
//!
//! Audited exceptions: `viewseeker-net` wraps raw epoll syscalls, and
//! `viewseeker-catalog` wraps `mmap` for zero-copy column loads — FFI is
//! inherently `unsafe`. Those crate roots must instead carry
//! `#![deny(unsafe_code)]` (so a module has to opt back in explicitly),
//! and the rule statically rejects an `unsafe` token anywhere in the
//! workspace outside the audited modules listed in [`UNSAFE_MODULES`] —
//! confining the entire unsafe surface to those reviewed files.

use crate::{Diagnostic, SourceFile};

const RULE: &str = "forbid-unsafe";

/// Crate roots allowed to hold unsafe code beneath them (they must still
/// `deny` at the root so the opt-in is explicit and local).
const DENY_ROOTS: &[&str] = &["crates/net/src/lib.rs", "crates/catalog/src/lib.rs"];
/// The audited modules allowed to contain `unsafe` tokens.
const UNSAFE_MODULES: &[&str] = &["crates/net/src/sys.rs", "crates/catalog/src/map.rs"];

/// Runs the rule over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !UNSAFE_MODULES.contains(&file.path.as_str()) {
        for token in &file.tokens {
            if token.is_ident("unsafe") {
                out.push(Diagnostic::new(
                    file.path.clone(),
                    token.line,
                    RULE,
                    format!(
                        "`unsafe` is only permitted in {}; \
                         raw syscalls are confined there",
                        UNSAFE_MODULES.join(", ")
                    ),
                ));
            }
        }
    }
    if !is_crate_root(&file.path) {
        return;
    }
    if DENY_ROOTS.contains(&file.path.as_str()) {
        // `forbid` would reject the crate's audited unsafe module, so these
        // roots must carry at least `deny` (forbid is accepted as stricter).
        if !has_lint_attr(file, "deny") && !has_lint_attr(file, "forbid") {
            out.push(Diagnostic::new(
                file.path.clone(),
                1,
                RULE,
                "crate root is missing #![deny(unsafe_code)] \
                 (crates with an audited FFI module must still deny by default)"
                    .to_owned(),
            ));
        }
        return;
    }
    if !has_lint_attr(file, "forbid") {
        out.push(Diagnostic::new(
            file.path.clone(),
            1,
            RULE,
            "crate root is missing #![forbid(unsafe_code)]".to_owned(),
        ));
    }
}

/// Whether the file contains `#![<level>(unsafe_code)]`.
fn has_lint_attr(file: &SourceFile, level: &str) -> bool {
    (0..file.tokens.len()).any(|i| {
        file.matches_seq(
            i,
            &[
                ('p', "#"),
                ('p', "!"),
                ('p', "["),
                ('i', level),
                ('p', "("),
                ('i', "unsafe_code"),
                ('p', ")"),
                ('p', "]"),
            ],
        )
    })
}

/// Whether a workspace-relative path names a crate root.
fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || (path.contains("/src/bin/") && path.ends_with(".rs"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(path.into(), src);
        let mut out = Vec::new();
        check(&f, &mut out);
        out
    }

    #[test]
    fn missing_forbid_is_flagged_on_roots_only() {
        assert_eq!(run("crates/cli/src/main.rs", "fn main() {}").len(), 1);
        assert_eq!(run("crates/bench/src/bin/tool.rs", "fn main() {}").len(), 1);
        assert!(run("crates/core/src/seeker.rs", "fn f() {}").is_empty());
    }

    #[test]
    fn present_forbid_passes() {
        assert!(run(
            "crates/core/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}",
        )
        .is_empty());
    }

    #[test]
    fn deny_roots_require_deny_and_accept_forbid() {
        for root in DENY_ROOTS {
            assert!(run(root, "#![deny(unsafe_code)]\npub mod sys;").is_empty());
            assert!(run(root, "#![forbid(unsafe_code)]\npub fn f() {}").is_empty());
            let diags = run(root, "pub mod sys;");
            assert_eq!(diags.len(), 1, "{root}");
            assert!(diags[0].message.contains("deny(unsafe_code)"));
        }
    }

    #[test]
    fn deny_does_not_satisfy_other_crate_roots() {
        let diags = run("crates/core/src/lib.rs", "#![deny(unsafe_code)]\n");
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("forbid(unsafe_code)"));
    }

    #[test]
    fn unsafe_tokens_outside_audited_modules_are_flagged() {
        let diags = run(
            "crates/core/src/seeker.rs",
            "fn f() {\n    unsafe { fast_path() }\n}",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
        assert!(diags[0].message.contains("crates/net/src/sys.rs"));
        assert!(diags[0].message.contains("crates/catalog/src/map.rs"));
        // The catalog's unsafe surface is map.rs alone — not the rest of
        // the crate, even though its root only denies.
        assert_eq!(
            run(
                "crates/catalog/src/vsc2.rs",
                "fn f() { unsafe { fast_path() } }",
            )
            .len(),
            1
        );
    }

    #[test]
    fn unsafe_inside_audited_modules_is_permitted() {
        for module in UNSAFE_MODULES {
            assert!(
                run(module, "pub fn f() { unsafe { syscall() } }").is_empty(),
                "{module}"
            );
        }
    }

    #[test]
    fn the_word_unsafe_in_strings_and_idents_is_not_confused() {
        assert!(run(
            "crates/core/src/seeker.rs",
            "fn f() { log(\"unsafe\"); let unsafe_code = 1; }",
        )
        .is_empty());
    }
}
