#![forbid(unsafe_code)]
//! Fixture-driven integration tests for vslint.
//!
//! Each rule gets three fixtures under `tests/fixtures/` (a directory
//! cargo does not compile): a true positive, a clean rewrite, and a
//! suppressed occurrence. The fixtures are linted through
//! [`Workspace::from_sources`] at a virtual path inside the rule's
//! scope, so these tests exercise the same pipeline as `cargo run -p
//! viewseeker-xtask -- lint` — rule checks plus suppression matching —
//! without touching the real tree. The final test lints the real tree:
//! the shipped workspace must be violation-free.

use viewseeker_xtask::{Diagnostic, Workspace};

/// Lints one fixture placed at `path` inside a minimal workspace.
fn lint_at(path: &str, source: &str) -> Vec<Diagnostic> {
    let docs = vec![
        ("DESIGN.md".to_owned(), String::new()),
        ("README.md".to_owned(), String::new()),
    ];
    Workspace::from_sources(vec![(path.to_owned(), source.to_owned())], docs).lint()
}

fn rules(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------- no-panic

#[test]
fn no_panic_fixture_is_flagged_with_lines() {
    let diags = lint_at(
        "crates/server/src/fixture.rs",
        include_str!("fixtures/no_panic_violation.rs"),
    );
    assert_eq!(rules(&diags), vec!["no-panic", "no-panic"], "{diags:#?}");
    assert_eq!(diags[0].line, 2, "indexing site");
    assert_eq!(diags[1].line, 3, "unwrap site");
}

#[test]
fn no_panic_clean_fixture_passes() {
    let diags = lint_at(
        "crates/server/src/fixture.rs",
        include_str!("fixtures/no_panic_clean.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn no_panic_suppression_with_justification_is_honoured() {
    let diags = lint_at(
        "crates/server/src/fixture.rs",
        include_str!("fixtures/no_panic_suppressed.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn no_panic_does_not_apply_outside_its_scope() {
    let diags = lint_at(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/no_panic_violation.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

// --------------------------------------------------------------- hash-iter

#[test]
fn hash_iter_fixture_is_flagged() {
    let diags = lint_at(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/hash_iter_violation.rs"),
    );
    assert_eq!(rules(&diags), vec!["hash-iter"], "{diags:#?}");
    assert_eq!(diags[0].line, 4);
}

#[test]
fn hash_iter_sorted_fixture_passes() {
    let diags = lint_at(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/hash_iter_clean.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn hash_iter_suppression_is_honoured() {
    let diags = lint_at(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/hash_iter_suppressed.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

// -------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_fixture_is_flagged() {
    let diags = lint_at(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/wall_clock_violation.rs"),
    );
    assert_eq!(rules(&diags), vec!["wall-clock"], "{diags:#?}");
    assert_eq!(diags[0].line, 4);
}

#[test]
fn wall_clock_clean_fixture_passes() {
    let diags = lint_at(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/wall_clock_clean.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn wall_clock_suppression_is_honoured() {
    let diags = lint_at(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/wall_clock_suppressed.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

// --------------------------------------------------------------- float-sum

#[test]
fn float_sum_fixture_is_flagged() {
    let diags = lint_at(
        "crates/dataset/src/fixture.rs",
        include_str!("fixtures/float_sum_violation.rs"),
    );
    assert_eq!(rules(&diags), vec!["float-sum"], "{diags:#?}");
    assert_eq!(diags[0].line, 2);
}

#[test]
fn float_sum_integer_turbofish_passes() {
    let diags = lint_at(
        "crates/dataset/src/fixture.rs",
        include_str!("fixtures/float_sum_clean.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn float_sum_suppression_is_honoured() {
    let diags = lint_at(
        "crates/dataset/src/fixture.rs",
        include_str!("fixtures/float_sum_suppressed.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

// ----------------------------------------------------------- forbid-unsafe

#[test]
fn missing_forbid_unsafe_on_crate_root_is_flagged() {
    let diags = lint_at(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/forbid_unsafe_violation.rs"),
    );
    assert_eq!(rules(&diags), vec!["forbid-unsafe"], "{diags:#?}");
    assert_eq!(diags[0].line, 1);
}

#[test]
fn forbid_unsafe_attribute_passes() {
    let diags = lint_at(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/forbid_unsafe_clean.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn non_root_modules_do_not_need_the_attribute() {
    let diags = lint_at(
        "crates/demo/src/helper.rs",
        include_str!("fixtures/forbid_unsafe_violation.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn net_crate_root_takes_deny_instead_of_forbid() {
    let diags = lint_at(
        "crates/net/src/lib.rs",
        "#![deny(unsafe_code)]\npub mod sys;\n",
    );
    assert!(diags.is_empty(), "{diags:#?}");
    let diags = lint_at("crates/net/src/lib.rs", "pub mod sys;\n");
    assert_eq!(rules(&diags), vec!["forbid-unsafe"], "{diags:#?}");
}

#[test]
fn unsafe_tokens_are_confined_to_the_net_sys_module() {
    let diags = lint_at(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\nfn f() { unsafe { fast() } }\n",
    );
    assert_eq!(rules(&diags), vec!["forbid-unsafe"], "{diags:#?}");
    assert_eq!(diags[0].line, 2);
    let diags = lint_at("crates/net/src/sys.rs", "pub fn f() { unsafe { sys() } }\n");
    assert!(diags.is_empty(), "{diags:#?}");
}

// -------------------------------------------------------------- lock-order

#[test]
fn nested_lock_fixture_is_flagged() {
    let diags = lint_at(
        "crates/server/src/fixture.rs",
        include_str!("fixtures/lock_order_violation.rs"),
    );
    assert_eq!(rules(&diags), vec!["lock-order"], "{diags:#?}");
    assert_eq!(diags[0].line, 5);
}

#[test]
fn drop_before_second_lock_passes() {
    let diags = lint_at(
        "crates/server/src/fixture.rs",
        include_str!("fixtures/lock_order_clean.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn lock_order_suppression_is_honoured() {
    let diags = lint_at(
        "crates/server/src/fixture.rs",
        include_str!("fixtures/lock_order_suppressed.rs"),
    );
    assert!(diags.is_empty(), "{diags:#?}");
}

// ------------------------------------------------------------ suppressions

#[test]
fn allow_without_justification_is_rejected_and_does_not_suppress() {
    let diags = lint_at(
        "crates/dataset/src/fixture.rs",
        include_str!("fixtures/suppression_missing_justification.rs"),
    );
    let mut found = rules(&diags);
    found.sort_unstable();
    assert_eq!(found, vec!["bad-suppression", "float-sum"], "{diags:#?}");
}

#[test]
fn allow_matching_nothing_is_flagged_unused() {
    let diags = lint_at(
        "crates/dataset/src/fixture.rs",
        include_str!("fixtures/suppression_unused.rs"),
    );
    assert_eq!(rules(&diags), vec!["unused-suppression"], "{diags:#?}");
}

// -------------------------------------------------- metric-registry (rule 3)

#[test]
fn metric_registry_cross_checks_table_emissions_and_docs() {
    let prom = r#"static SERIES: &[SeriesDef] = &[
    SeriesDef { name: "viewseeker_up", kind: "gauge", help: "Up." },
];
pub fn render() -> String { emit("viewseeker_up") }
"#;
    let clean = Workspace::from_sources(
        vec![(
            "crates/server/src/prometheus.rs".to_owned(),
            prom.to_owned(),
        )],
        vec![
            (
                "DESIGN.md".to_owned(),
                "`viewseeker_up` is the gauge".to_owned(),
            ),
            ("README.md".to_owned(), "scrape viewseeker_up".to_owned()),
        ],
    )
    .lint();
    assert!(clean.is_empty(), "{clean:#?}");

    let undocumented = Workspace::from_sources(
        vec![(
            "crates/server/src/prometheus.rs".to_owned(),
            prom.to_owned(),
        )],
        vec![
            ("DESIGN.md".to_owned(), String::new()),
            ("README.md".to_owned(), String::new()),
        ],
    )
    .lint();
    assert_eq!(
        rules(&undocumented),
        vec!["metric-registry", "metric-registry"],
        "{undocumented:#?}"
    );
    assert!(undocumented
        .iter()
        .all(|d| d.message.contains("undocumented")));
}

#[test]
fn metric_registry_flags_rogue_emission_outside_the_table() {
    let prom = r#"static SERIES: &[SeriesDef] = &[
    SeriesDef { name: "viewseeker_up", kind: "gauge", help: "Up." },
];
pub fn render() -> String { emit("viewseeker_up") + emit("viewseeker_rogue_total") }
"#;
    let diags = Workspace::from_sources(
        vec![(
            "crates/server/src/prometheus.rs".to_owned(),
            prom.to_owned(),
        )],
        vec![
            ("DESIGN.md".to_owned(), "viewseeker_up".to_owned()),
            ("README.md".to_owned(), "viewseeker_up".to_owned()),
        ],
    )
    .lint();
    assert_eq!(rules(&diags), vec!["metric-registry"], "{diags:#?}");
    assert!(diags[0].message.contains("not defined"));
}

// ------------------------------------------- interprocedural (call graph)

/// A three-crate mini-workspace with one seeded violation per
/// interprocedural rule: a panic behind a cross-crate helper chain, a
/// cross-function lock-ordering cycle, and a blocking mutex acquisition
/// on the reactor tick path.
fn graph_workspace() -> Workspace {
    Workspace::from_sources(
        vec![
            (
                "crates/server/src/lib.rs".to_owned(),
                include_str!("fixtures/graph/server.rs").to_owned(),
            ),
            (
                "crates/util/src/lib.rs".to_owned(),
                include_str!("fixtures/graph/util.rs").to_owned(),
            ),
            (
                "crates/net/src/lib.rs".to_owned(),
                include_str!("fixtures/graph/net.rs").to_owned(),
            ),
        ],
        vec![
            ("DESIGN.md".to_owned(), String::new()),
            ("README.md".to_owned(), String::new()),
        ],
    )
}

#[test]
fn graph_fixture_seeds_exactly_the_three_interprocedural_rules() {
    let diags = graph_workspace().lint();
    let mut found = rules(&diags);
    found.sort_unstable();
    assert_eq!(
        found,
        vec!["blocking-in-reactor", "lock-order-v2", "panic-reachability"],
        "{diags:#?}"
    );
}

#[test]
fn panic_reachability_crosses_crates_with_a_witness() {
    let diags = graph_workspace().lint();
    let d = diags
        .iter()
        .find(|d| d.rule == "panic-reachability")
        .expect("panic-reachability finding");
    assert_eq!(d.file, "crates/util/src/lib.rs");
    assert_eq!(d.line, 13, "the unwrap in scale()");
    assert!(
        d.message.contains("server::Router::handle"),
        "{}",
        d.message
    );
    assert_eq!(
        d.witness,
        ["server::Router::handle", "util::estimate", "util::scale"],
        "{diags:#?}"
    );
}

#[test]
fn lock_order_v2_detects_the_cross_function_cycle() {
    let diags = graph_workspace().lint();
    let d = diags
        .iter()
        .find(|d| d.rule == "lock-order-v2")
        .expect("lock-order-v2 finding");
    assert!(
        d.message.contains("Router.jobs") && d.message.contains("Router.stats"),
        "{}",
        d.message
    );
    assert!(
        d.message.contains("cycle"),
        "names the deadlock: {}",
        d.message
    );
}

#[test]
fn blocking_in_reactor_chases_the_lock_through_the_registry() {
    let diags = graph_workspace().lint();
    let d = diags
        .iter()
        .find(|d| d.rule == "blocking-in-reactor")
        .expect("blocking-in-reactor finding");
    assert_eq!(d.file, "crates/net/src/lib.rs");
    assert_eq!(d.line, 25, "the lock in Registry::note");
    assert_eq!(
        d.witness,
        ["net::Reactor::flush", "net::Registry::note"],
        "{diags:#?}"
    );
}

/// The call graph of the fixture workspace, serialized exactly as
/// `cargo run -p viewseeker-xtask -- graph --json` would emit it, must
/// match the checked-in golden file. A resolution regression — a lost
/// edge, a fabricated edge, a changed module path — shows up as a
/// one-line diff here before it silently changes rule results.
#[test]
fn call_graph_json_matches_the_golden_file() {
    let ws = graph_workspace();
    let graph = viewseeker_xtask::graph::CallGraph::build(&ws);
    let got = graph.to_json(&ws);
    let want = include_str!("fixtures/graph/golden_graph.json");
    assert_eq!(got.trim(), want.trim(), "call-graph JSON drifted");
}

// ---------------------------------------------------------------- self-test

/// The shipped tree must lint clean — this is the same invariant the
/// blocking CI job enforces, checked from the test suite so a violation
/// fails `cargo test` too.
#[test]
fn shipped_workspace_is_violation_free() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let ws = Workspace::load(&root).expect("load workspace sources");
    let diags = ws.lint();
    assert!(
        diags.is_empty(),
        "vslint violations in the shipped tree:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
