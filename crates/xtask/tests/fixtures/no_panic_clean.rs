pub fn handler(input: Option<u32>, buf: &[u8]) -> Option<u32> {
    let first = buf.first().copied()?;
    Some(input? + u32::from(first))
}
