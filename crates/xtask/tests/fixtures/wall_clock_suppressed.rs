use std::time::SystemTime;

pub fn stamp() -> SystemTime {
    // vslint::allow(wall-clock): log timestamps are presentation only.
    SystemTime::now()
}
