use std::sync::Mutex;

pub fn both(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let first = a.lock().unwrap_or_else(|e| e.into_inner());
    let second = b.lock().unwrap_or_else(|e| e.into_inner());
    *first + *second
}
