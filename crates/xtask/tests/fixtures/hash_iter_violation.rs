use std::collections::HashMap;

pub fn names(map: HashMap<String, u32>) -> Vec<String> {
    map.keys().cloned().collect()
}
