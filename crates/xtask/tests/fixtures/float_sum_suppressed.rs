pub fn total(xs: &[f64]) -> f64 {
    // vslint::allow(float-sum): single-threaded path with a fixed source order.
    xs.iter().sum()
}
