use std::sync::Mutex;

pub struct Pair {
    outer: Mutex<u32>,
    inner: Mutex<u32>,
}

pub fn both(p: &Pair) -> u32 {
    let outer = p.outer.lock().unwrap_or_else(|e| e.into_inner());
    // vslint::allow(lock-order): the global order is outer -> inner everywhere.
    let inner = p.inner.lock().unwrap_or_else(|e| e.into_inner());
    *outer + *inner
}
