use std::collections::HashMap;

pub fn names(map: HashMap<String, u32>) -> Vec<String> {
    let mut out: Vec<String> = map.keys().cloned().collect();
    out.sort();
    out
}
