pub fn total(xs: &[u64]) -> u64 {
    xs.iter().sum::<u64>()
}
