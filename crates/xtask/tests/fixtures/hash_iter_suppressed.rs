use std::collections::HashMap;

pub fn values(map: HashMap<String, u32>) -> Vec<u32> {
    // vslint::allow(hash-iter): the caller re-sorts before display.
    map.values().copied().collect()
}
