pub fn total(xs: &[f64]) -> f64 {
    // vslint::allow(float-sum)
    xs.iter().sum()
}
