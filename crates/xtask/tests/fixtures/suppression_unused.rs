pub fn id(x: u32) -> u32 {
    // vslint::allow(float-sum): nothing here actually sums.
    x
}
