pub fn handler(input: Option<u32>, buf: &[u8]) -> u32 {
    let first = buf[0];
    input.unwrap() + u32::from(first)
}
