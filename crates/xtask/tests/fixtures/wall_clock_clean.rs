pub fn stamp(elapsed_us: u64) -> u64 {
    elapsed_us
}
