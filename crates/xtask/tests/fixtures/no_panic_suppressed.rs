pub fn handler(buf: &[u8; 4]) -> u8 {
    // vslint::allow(no-panic): the array type guarantees four bytes.
    buf[0]
}
