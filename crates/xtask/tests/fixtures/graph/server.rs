#![forbid(unsafe_code)]
//! Seeded interprocedural violations: `handle` reaches a panicking
//! helper two call edges away in the util crate, and the two lock
//! domains are acquired in opposite orders across call edges.

pub struct Router {
    jobs: Slot,
    stats: Slot,
}

impl Router {
    pub fn handle(&self) {
        let estimate = viewseeker_util::estimate(7);
        let g = self.jobs.lock();
        self.audit();
        drop(g);
        consume(estimate);
    }

    fn audit(&self) {
        let s = self.stats.lock();
        observe(&s);
    }

    pub fn rebalance(&self) {
        let s = self.stats.lock();
        self.drain();
        drop(s);
    }

    fn drain(&self) {
        let g = self.jobs.lock();
        observe(&g);
    }
}

fn observe<T>(_guard: &T) {}

fn consume(_estimate: f64) {}
