#![deny(unsafe_code)]
//! A blocking mutex acquisition reachable from the reactor tick path,
//! hidden one call edge away inside the connection registry.

pub struct Reactor {
    conns: Registry,
}

impl Reactor {
    pub fn tick(&self) {
        self.flush();
    }

    fn flush(&self) {
        self.conns.note();
    }
}

pub struct Registry {
    state: Slot,
}

impl Registry {
    pub fn note(&self) {
        let g = self.state.lock();
        drop(g);
    }
}
