#![forbid(unsafe_code)]
//! A panic hidden two calls behind the server entry point: `estimate`
//! looks innocuous from the handler's side, and this file is outside
//! the file-local no-panic scope, so only the interprocedural rule
//! can see the `unwrap()`.

pub fn estimate(seed: u64) -> f64 {
    let table = vec![0.25, 0.5];
    scale(&table, seed)
}

fn scale(table: &[f64], seed: u64) -> f64 {
    table.get(seed as usize % 2).copied().unwrap() * 2.0
}
