//! Property-based tests of the tail-sampling trace buffer under real
//! concurrency: many threads hammer one [`TraceSampler`] and afterwards
//! (a) a trace carrying the maximum latency is always retained — the
//! relaxed-atomic admission floor must never skip a window's slowest
//! request, (b) retained memory stays within the configured bounds, and
//! (c) the record counter equals the number of offers. Shed and errored
//! traces are mixed in so the bounded FIFO side-sets are exercised too.

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use proptest::prelude::*;
use viewseeker_net::trace::{RequestTrace, TraceSampler, TraceSink};

/// One offered request outcome: latency plus how it ended.
#[derive(Debug, Clone, Copy)]
struct Offer {
    total_us: u64,
    status: u16,
    shed: bool,
}

fn arb_offer() -> impl Strategy<Value = Offer> {
    (0u64..5_000, 0u32..10).prop_map(|(total_us, class)| Offer {
        total_us,
        status: match class {
            0 => 503,
            1 => 429,
            _ => 200,
        },
        shed: class == 0,
    })
}

fn trace(id: String, offer: Offer) -> RequestTrace {
    RequestTrace {
        id,
        method: "GET".to_owned(),
        path: "/sessions/s/next".to_owned(),
        route: if offer.shed {
            ""
        } else {
            "GET /sessions/:id/next"
        },
        status: offer.status,
        shed: offer.shed,
        started: Instant::now(),
        total_us: offer.total_us,
        spans: Vec::new(),
    }
}

/// Splits `offers` across `threads` workers, records them all
/// concurrently, and returns the sampler.
fn hammer(sampler: &Arc<TraceSampler>, offers: &[Offer], threads: usize) {
    let chunk = offers.len().div_ceil(threads).max(1);
    thread::scope(|scope| {
        for (worker, slice) in offers.chunks(chunk).enumerate() {
            let sampler = Arc::clone(sampler);
            let slice = slice.to_vec();
            scope.spawn(move || {
                for (i, offer) in slice.iter().enumerate() {
                    sampler.record(trace(format!("w{worker}-{i}"), *offer));
                }
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Within one window (no rotation), the maximum-latency offer is
    // always represented in the snapshot, no matter how offers
    // interleave across threads. (Plain comments: the vendored
    // proptest! grammar does not accept doc attributes on tests.)
    #[test]
    fn max_latency_trace_survives_concurrent_recording(
        offers in proptest::collection::vec(arb_offer(), 1..400),
        threads in 1usize..8,
    ) {
        // Window larger than the offer count: no rotation, so the
        // retention guarantee covers every offer.
        let sampler = Arc::new(TraceSampler::new(4, 2, 1 << 32));
        hammer(&sampler, &offers, threads);

        prop_assert_eq!(sampler.recorded(), offers.len() as u64);
        let max_us = offers.iter().map(|o| o.total_us).max().unwrap_or(0);
        let snapshot = sampler.snapshot();
        prop_assert!(
            snapshot.iter().any(|t| t.total_us == max_us),
            "slowest offer ({max_us}us) lost; retained: {:?}",
            snapshot.iter().map(|t| t.total_us).collect::<Vec<_>>()
        );
        // Slowest-first ordering puts it at the head.
        prop_assert_eq!(snapshot.first().map(|t| t.total_us), Some(max_us));
    }

    // Memory stays bounded by the configured capacities across window
    // rotations: at most two generations of (slow + errored + shed).
    #[test]
    fn retention_is_bounded_across_rotations(
        offers in proptest::collection::vec(arb_offer(), 1..600),
        threads in 1usize..8,
        slow_capacity in 1usize..8,
        error_capacity in 1usize..4,
        window in 8u64..64,
    ) {
        let sampler = Arc::new(TraceSampler::new(slow_capacity, error_capacity, window));
        hammer(&sampler, &offers, threads);

        let bound = 2 * (slow_capacity + 2 * error_capacity);
        prop_assert!(
            sampler.retained() <= bound,
            "retained {} > bound {bound}",
            sampler.retained()
        );
        // The snapshot dedups by id, so it can only shrink further.
        prop_assert!(sampler.snapshot().len() <= bound);
        prop_assert_eq!(sampler.recorded(), offers.len() as u64);
    }

    // Every shed and every errored offer in a small batch is retained
    // while the side-sets have room — tail sampling must not drop the
    // outcomes it exists to capture.
    #[test]
    fn shed_and_errored_offers_are_kept_while_capacity_allows(
        offers in proptest::collection::vec(arb_offer(), 1..32),
        threads in 1usize..4,
    ) {
        let sampler = Arc::new(TraceSampler::new(2, 64, 1 << 32));
        hammer(&sampler, &offers, threads);

        let snapshot = sampler.snapshot();
        let kept_shed = snapshot.iter().filter(|t| t.shed).count();
        let kept_errored = snapshot.iter().filter(|t| !t.shed && t.status >= 400).count();
        let offered_shed = offers.iter().filter(|o| o.shed).count();
        let offered_errored = offers.iter().filter(|o| !o.shed && o.status >= 400).count();
        prop_assert_eq!(kept_shed, offered_shed);
        prop_assert_eq!(kept_errored, offered_errored);
    }
}
