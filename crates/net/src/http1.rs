//! Incremental HTTP/1.1 parsing and encoding, shared by the event
//! reactor and the blocking oracle path in `viewseeker-server`.
//!
//! The parser is a pure function over a byte buffer: callers append
//! whatever the socket produced (one byte at a time is fine) and call
//! [`parse_request`] again. `Ok(None)` means "incomplete, read more";
//! `Ok(Some(_))` reports how many bytes the request consumed so the
//! caller can drain them and immediately re-parse — which is exactly
//! pipelining. Framing is `Content-Length` only (no chunked bodies), the
//! same scope the blocking server always had.
//!
//! Hard limits keep hostile clients bounded: a header block over
//! [`MAX_HEADER_BYTES`] is rejected with `431`, a declared body over
//! [`MAX_BODY_BYTES`] with `413` — both *before* buffering the offending
//! bytes. Line endings are tolerated as CRLF or lone LF, and a CRLF split
//! across two reads parses identically to one arriving whole.

use std::fmt;

/// Largest accepted header block (request line + headers + terminator).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Largest accepted request body, a backstop against hostile clients.
/// Sized for CSV dataset uploads (`POST /datasets/:name`), not just JSON.
pub const MAX_BODY_BYTES: usize = 16 << 20;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Percent-decoded path, without the query string.
    pub path: String,
    /// Percent-decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// `(name, value)` header pairs in arrival order, names lowercased
    /// and values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw request body.
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (case-insensitive), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The first value of query parameter `key`, if present.
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parses a query parameter, defaulting when absent.
    ///
    /// # Errors
    ///
    /// [`ParseError::BadRequest`] when present but unparseable.
    pub fn parsed_param<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ParseError> {
        match self.query_param(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ParseError::BadRequest(format!("bad query parameter {key}={raw:?}"))),
        }
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// [`ParseError::BadRequest`] on invalid UTF-8.
    pub fn body_text(&self) -> Result<&str, ParseError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| ParseError::BadRequest("body is not UTF-8".into()))
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes (JSON everywhere except `GET /metrics`).
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Emits a `Retry-After: <secs>` header when set (shed responses).
    pub retry_after: Option<u32>,
    /// Emits an `X-Request-Id: <id>` header when set, echoing the id the
    /// request was traced under (honored or generated). Values come from
    /// `crate::trace` and are sanitized there — never raw client bytes.
    pub request_id: Option<String>,
}

impl Response {
    /// A `200 OK` JSON response.
    #[must_use]
    pub fn json(body: String) -> Self {
        Self::with_status(200, body)
    }

    /// A JSON response with an explicit status.
    #[must_use]
    pub fn with_status(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            content_type: "application/json",
            retry_after: None,
            request_id: None,
        }
    }

    /// A `200 OK` plain-text response in the Prometheus exposition
    /// content type.
    #[must_use]
    pub fn prometheus(body: String) -> Self {
        Self {
            status: 200,
            body,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            retry_after: None,
            request_id: None,
        }
    }

    /// A `200 OK` plain-text response (folded-stack trace export).
    #[must_use]
    pub fn text(body: String) -> Self {
        Self {
            status: 200,
            body,
            content_type: "text/plain; charset=utf-8",
            retry_after: None,
            request_id: None,
        }
    }

    /// The `503 Service Unavailable` shed response, carrying
    /// `Retry-After: <secs>` so well-behaved clients back off instead of
    /// hammering an overloaded server.
    #[must_use]
    pub fn unavailable(retry_after_secs: u32) -> Self {
        Self {
            status: 503,
            body: "{\"error\": \"overloaded, retry later\"}".to_owned(),
            content_type: "application/json",
            retry_after: Some(retry_after_secs),
            request_id: None,
        }
    }
}

/// Request dispatch, implemented by `viewseeker-server`'s `Router`.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for one request.
    fn handle(&self, request: &Request) -> Response;

    /// Like [`Handler::handle`], with the request's live trace so the
    /// handler can stamp its own stage spans (route, serialization, the
    /// seeker's phase breakdown). The default ignores the trace, so
    /// plain handlers keep working untraced.
    fn handle_traced(&self, request: &Request, trace: &crate::trace::ActiveTrace) -> Response {
        let _ = trace;
        self.handle(request)
    }
}

/// The reason phrase for a status code.
#[must_use]
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Why a byte stream failed to parse as a request. Each variant carries
/// the HTTP status the connection should answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line, header, or (for the accessor helpers)
    /// request content — answered with `400`.
    BadRequest(String),
    /// Header block exceeds [`MAX_HEADER_BYTES`] — answered with `431`.
    HeadersTooLarge,
    /// Declared body exceeds [`MAX_BODY_BYTES`] — answered with `413`.
    BodyTooLarge(usize),
}

impl ParseError {
    /// The HTTP status this error maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            ParseError::BadRequest(_) => 400,
            ParseError::HeadersTooLarge => 431,
            ParseError::BodyTooLarge(_) => 413,
        }
    }

    /// A human-readable message for the error body.
    #[must_use]
    pub fn message(&self) -> String {
        match self {
            ParseError::BadRequest(m) => m.clone(),
            ParseError::HeadersTooLarge => {
                format!("header block exceeds the {MAX_HEADER_BYTES}-byte limit")
            }
            ParseError::BodyTooLarge(n) => {
                format!("body of {n} bytes exceeds the {MAX_BODY_BYTES}-byte limit")
            }
        }
    }

    /// The error rendered as a ready-to-send [`Response`].
    #[must_use]
    pub fn to_response(&self) -> Response {
        Response::with_status(
            self.status(),
            format!("{{\"error\": {:?}}}", self.message()),
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message())
    }
}

impl std::error::Error for ParseError {}

/// A complete request lifted out of the read buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// The request itself.
    pub request: Request,
    /// Bytes of the buffer this request consumed (head + body). The
    /// caller drains exactly this many and re-parses for pipelining.
    pub consumed: usize,
    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an
    /// explicit `Connection:` header overrides either.
    pub keep_alive: bool,
}

/// Byte offset one past the blank line ending the header block, i.e. the
/// start of the body. Accepts CRLF and lone-LF line endings (and any mix).
fn find_header_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0usize;
    while i < buf.len() {
        if buf.get(i) == Some(&b'\n') {
            match (buf.get(i + 1), buf.get(i + 2)) {
                (Some(&b'\r'), Some(&b'\n')) => return Some(i + 3),
                (Some(&b'\n'), _) => return Some(i + 2),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Splits `target` into a percent-decoded path and query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path);
    let query = raw_query
        .map(|q| {
            q.split('&')
                .filter(|pair| !pair.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(pair), String::new()),
                })
                .collect()
        })
        .unwrap_or_default();
    (path, query)
}

/// Tries to lift one complete request off the front of `buf`.
///
/// Returns `Ok(None)` when the buffer holds only a prefix of a request —
/// append more bytes and call again. On `Ok(Some(parsed))` the caller
/// must drain `parsed.consumed` bytes before the next call.
///
/// # Errors
///
/// [`ParseError`] when the prefix can never become a valid request;
/// the connection should answer `error.to_response()` and close.
pub fn parse_request(buf: &[u8]) -> Result<Option<Parsed>, ParseError> {
    let Some(head_end) = find_header_end(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Err(ParseError::HeadersTooLarge);
        }
        return Ok(None);
    };
    if head_end > MAX_HEADER_BYTES {
        return Err(ParseError::HeadersTooLarge);
    }
    let head = buf.get(..head_end).unwrap_or_default();
    let head_text = String::from_utf8_lossy(head);
    let mut lines = head_text.split('\n').map(|l| l.trim_end_matches('\r'));

    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(ParseError::BadRequest("malformed request line".into()));
    };
    // No version token (HTTP/0.9-style) is treated as HTTP/1.0: close by
    // default, no pipelining assumed. A present token that is not an
    // HTTP version means this is not HTTP at all — reject, don't route.
    let version = parts.next();
    if let Some(v) = version {
        if !v.starts_with("HTTP/") {
            return Err(ParseError::BadRequest("malformed request line".into()));
        }
    }
    let http11 = version == Some("HTTP/1.1");

    let mut content_length = 0usize;
    let mut keep_alive = http11;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        headers.push((name.trim().to_ascii_lowercase(), value.to_owned()));
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ParseError::BadRequest("bad Content-Length".into()))?;
        } else if name.eq_ignore_ascii_case("connection") {
            let value = value.to_ascii_lowercase();
            if value.split(',').any(|t| t.trim() == "close") {
                keep_alive = false;
            } else if value.split(',').any(|t| t.trim() == "keep-alive") {
                keep_alive = true;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::BodyTooLarge(content_length));
    }
    let consumed = head_end.saturating_add(content_length);
    let Some(body) = buf.get(head_end..consumed) else {
        return Ok(None); // body still arriving
    };
    let (path, query) = parse_target(target);
    Ok(Some(Parsed {
        request: Request {
            method: method.to_ascii_uppercase(),
            path,
            query,
            headers,
            body: body.to_vec(),
        },
        consumed,
        keep_alive,
    }))
}

/// Serializes `response` into `out`, with `Connection:` set from
/// `keep_alive` and `Retry-After:` emitted when the response carries one.
pub fn encode_response(response: &Response, keep_alive: bool, out: &mut Vec<u8>) {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(secs) = response.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    if let Some(id) = &response.request_id {
        head.push_str(&format!("X-Request-Id: {id}\r\n"));
    }
    head.push_str("\r\n");
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(response.body.as_bytes());
}

/// A complete response lifted out of a client's read buffer
/// (`viewseeker-loadgen` and the differential tests are the consumers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Bytes consumed off the front of the buffer.
    pub consumed: usize,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
    /// Parsed `Retry-After` header, seconds, when present.
    pub retry_after: Option<u32>,
    /// Parsed `X-Request-Id` header, when present — lets clients (the
    /// loadgen) correlate responses with the ids they sent.
    pub request_id: Option<String>,
}

/// Tries to lift one complete response off the front of `buf`; the dual
/// of [`parse_request`] with the same incremental contract.
///
/// # Errors
///
/// [`ParseError::BadRequest`] on a malformed status line or headers,
/// [`ParseError::HeadersTooLarge`]/[`ParseError::BodyTooLarge`] past the
/// shared limits.
pub fn parse_response(buf: &[u8]) -> Result<Option<ParsedResponse>, ParseError> {
    let Some(head_end) = find_header_end(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Err(ParseError::HeadersTooLarge);
        }
        return Ok(None);
    };
    let head = buf.get(..head_end).unwrap_or_default();
    let head_text = String::from_utf8_lossy(head);
    let mut lines = head_text.split('\n').map(|l| l.trim_end_matches('\r'));

    let status_line = lines.next().unwrap_or_default();
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequest(format!(
            "bad status line {status_line:?}"
        )));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseError::BadRequest(format!("bad status line {status_line:?}")))?;

    let mut content_length = 0usize;
    let mut keep_alive = version == "HTTP/1.1";
    let mut retry_after = None;
    let mut request_id = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ParseError::BadRequest("bad Content-Length".into()))?;
        } else if name.eq_ignore_ascii_case("connection") {
            let value = value.to_ascii_lowercase();
            if value.split(',').any(|t| t.trim() == "close") {
                keep_alive = false;
            } else if value.split(',').any(|t| t.trim() == "keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("retry-after") {
            retry_after = value.parse().ok();
        } else if name.eq_ignore_ascii_case("x-request-id") {
            request_id = Some(value.to_owned());
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::BodyTooLarge(content_length));
    }
    let consumed = head_end.saturating_add(content_length);
    let Some(body) = buf.get(head_end..consumed) else {
        return Ok(None);
    };
    Ok(Some(ParsedResponse {
        status,
        body: body.to_vec(),
        consumed,
        keep_alive,
        retry_after,
        request_id,
    }))
}

/// Decodes `%XX` escapes and `+`-as-space in a URL component.
#[must_use]
pub fn percent_decode(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&byte) = bytes.get(i) {
        match byte {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|s| u8::from_str_radix(s, 16).ok())
                });
                if let Some(b) = hex {
                    out.push(b);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(raw: &[u8]) -> Parsed {
        parse_request(raw).expect("parse").expect("complete")
    }

    #[test]
    fn parses_a_simple_request() {
        let p = full(b"GET /sessions/s1/next?m=3&q=a%20b HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(p.request.method, "GET");
        assert_eq!(p.request.path, "/sessions/s1/next");
        assert_eq!(p.request.query_param("m"), Some("3"));
        assert_eq!(p.request.query_param("q"), Some("a b"));
        assert!(p.request.body.is_empty());
        assert!(p.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(p.consumed, 55);
    }

    #[test]
    fn headers_are_collected_and_case_insensitive() {
        let p = full(b"GET / HTTP/1.1\r\nHost: x\r\nX-Request-Id:  abc-1 \r\n\r\n");
        assert_eq!(p.request.header("host"), Some("x"));
        assert_eq!(p.request.header("X-Request-ID"), Some("abc-1"));
        assert_eq!(p.request.header("missing"), None);
        assert_eq!(p.request.headers.len(), 2);
    }

    #[test]
    fn encode_emits_x_request_id_when_set() {
        let mut response = Response::json("{}".into());
        response.request_id = Some("req-42".into());
        let mut out = Vec::new();
        encode_response(&response, true, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Request-Id: req-42\r\n"), "{text}");
        let p = parse_response(text.as_bytes()).unwrap().unwrap();
        assert_eq!(p.status, 200);
    }

    #[test]
    fn byte_at_a_time_delivery_parses_identically() {
        let raw = b"POST /sessions HTTP/1.1\r\nContent-Length: 4\r\nHost: y\r\n\r\n{\"\"}";
        let whole = full(raw);
        let mut buf = Vec::new();
        for (i, &b) in raw.iter().enumerate() {
            buf.push(b);
            let step = parse_request(&buf).expect("never errors");
            if i + 1 < raw.len() {
                assert!(step.is_none(), "complete after only {} bytes", i + 1);
            } else {
                assert_eq!(step.expect("complete at the end"), whole);
            }
        }
        assert_eq!(whole.request.body, b"{\"\"}");
    }

    #[test]
    fn split_crlf_across_reads_is_tolerated() {
        // The header terminator arrives split as ...\r | \n\r\n.
        let mut buf = b"GET / HTTP/1.1\r".to_vec();
        assert_eq!(parse_request(&buf).expect("incomplete"), None);
        buf.extend_from_slice(b"\n\r\n");
        assert_eq!(full(&buf).request.path, "/");
    }

    #[test]
    fn lone_lf_line_endings_parse() {
        let p = full(b"GET /x HTTP/1.1\nHost: z\n\n");
        assert_eq!(p.request.path, "/x");
        assert_eq!(p.consumed, 25);
    }

    #[test]
    fn pipelined_requests_consume_in_sequence() {
        let raw: &[u8] =
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n";
        let first = full(raw);
        assert_eq!(first.request.path, "/a");
        let rest = &raw[first.consumed..];
        let second = full(rest);
        assert_eq!(second.request.path, "/b");
        assert_eq!(second.request.body, b"hi");
        let third = full(&rest[second.consumed..]);
        assert_eq!(third.request.path, "/c");
        assert_eq!(first.consumed + second.consumed + third.consumed, raw.len());
    }

    #[test]
    fn oversized_header_block_is_431_even_unterminated() {
        let mut raw = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 1));
        let err = parse_request(&raw).expect_err("must reject");
        assert_eq!(err, ParseError::HeadersTooLarge);
        assert_eq!(err.status(), 431);
        assert_eq!(err.to_response().status, 431);
    }

    #[test]
    fn oversized_declared_body_is_413_before_buffering() {
        let raw = format!(
            "POST /d HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse_request(raw.as_bytes()).expect_err("must reject");
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn malformed_inputs_are_400() {
        assert_eq!(
            parse_request(b"garbage\r\n\r\n")
                .expect_err("reject")
                .status(),
            400
        );
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .expect_err("reject")
                .status(),
            400
        );
        // Three whitespace-separated words are not a request line unless
        // the third is an HTTP version — never route such a frame.
        assert_eq!(
            parse_request(b"NOT A REQUEST\r\n\r\n")
                .expect_err("reject")
                .status(),
            400
        );
    }

    #[test]
    fn keep_alive_defaults_and_overrides() {
        assert!(full(b"GET / HTTP/1.1\r\n\r\n").keep_alive);
        assert!(!full(b"GET / HTTP/1.0\r\n\r\n").keep_alive);
        assert!(
            !full(b"GET /\r\n\r\n").keep_alive,
            "versionless treated as 1.0"
        );
        assert!(!full(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
        assert!(full(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive);
        assert!(!full(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").keep_alive);
    }

    #[test]
    fn encode_emits_connection_and_retry_after() {
        let mut out = Vec::new();
        encode_response(&Response::json("{}".into()), true, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(!text.contains("Retry-After"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");

        let mut out = Vec::new();
        encode_response(&Response::unavailable(2), false, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
    }

    #[test]
    fn response_roundtrips_through_parse_response() {
        let mut out = Vec::new();
        encode_response(
            &Response::with_status(201, "{\"id\":\"s1\"}".into()),
            true,
            &mut out,
        );
        // Incremental: incomplete prefixes report None.
        for cut in 1..out.len() {
            assert_eq!(
                parse_response(&out[..cut]).expect("prefix"),
                None,
                "cut {cut}"
            );
        }
        let p = parse_response(&out).expect("parse").expect("complete");
        assert_eq!(p.status, 201);
        assert_eq!(p.body, b"{\"id\":\"s1\"}");
        assert_eq!(p.consumed, out.len());
        assert!(p.keep_alive);
        assert_eq!(p.retry_after, None);

        let mut out = Vec::new();
        encode_response(&Response::unavailable(3), true, &mut out);
        let p = parse_response(&out).expect("parse").expect("complete");
        assert_eq!((p.status, p.retry_after), (503, Some(3)));
    }

    #[test]
    fn parse_response_rejects_garbage() {
        assert_eq!(
            parse_response(b"not http\r\n\r\n")
                .expect_err("reject")
                .status(),
            400
        );
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a0%20%3D%20'v'"), "a0 = 'v'");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("bad%2"), "bad%2");
    }

    #[test]
    fn accessor_errors_surface_as_bad_request() {
        let p = full(b"GET /x?k=abc HTTP/1.1\r\n\r\n");
        assert_eq!(
            p.request
                .parsed_param("k", 5usize)
                .expect_err("bad")
                .status(),
            400
        );
        assert_eq!(
            p.request.parsed_param("missing", 5usize).expect("default"),
            5
        );
        let mut bad = full(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nxx");
        bad.request.body = vec![0xff, 0xfe];
        assert_eq!(bad.request.body_text().expect_err("bad").status(), 400);
    }
}
