//! Per-connection state: buffered reads, request sequencing, out-of-order
//! completion reordering, buffered writes, keep-alive bookkeeping.
//!
//! The reactor owns the sockets and does the actual I/O; this module owns
//! the pure buffer logic so it stays unit-testable without a socket.
//! Pipelining makes ordering the one subtle part: requests are assigned
//! per-connection sequence numbers as they parse, workers complete them in
//! any order, and [`Conn::complete`]'s internal reorder buffer guarantees the
//! encoded responses hit the write buffer in request order — HTTP/1.1's
//! hard requirement.

use std::collections::BTreeMap;
use std::net::TcpStream;

use crate::http1::{encode_response, Response};

/// State for one accepted connection.
#[derive(Debug)]
pub struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Bytes read but not yet parsed into a request.
    pub read_buf: Vec<u8>,
    /// Encoded response bytes not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written to the socket.
    written: usize,
    /// Sequence number the next parsed request will get.
    pub next_seq: u64,
    /// Sequence number the next flushed response must have.
    flush_seq: u64,
    /// Completed (response, keep_alive) pairs waiting on earlier seqs.
    done: BTreeMap<u64, (Response, bool)>,
    /// Requests parsed (dispatched or queued) but not yet flushed.
    pub inflight: usize,
    /// No further reads: flush what is buffered, then close.
    pub closing: bool,
}

impl Conn {
    /// Wraps a freshly-accepted socket.
    #[must_use]
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            next_seq: 0,
            flush_seq: 0,
            done: BTreeMap::new(),
            inflight: 0,
            closing: false,
        }
    }

    /// Assigns the next request sequence number.
    pub fn assign_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.inflight += 1;
        seq
    }

    /// Records a completed response for `seq` and flushes every response
    /// that is now in order. A `keep_alive == false` response marks the
    /// connection closing: later pipelined responses are dropped (the
    /// peer asked for the connection to end at that response).
    pub fn complete(&mut self, seq: u64, response: Response, keep_alive: bool) {
        self.done.insert(seq, (response, keep_alive));
        self.flush_ready();
    }

    /// Moves in-order completions into the write buffer.
    fn flush_ready(&mut self) {
        while let Some((response, keep_alive)) = self.done.remove(&self.flush_seq) {
            self.flush_seq += 1;
            self.inflight = self.inflight.saturating_sub(1);
            if self.closing {
                continue; // a close response already ended the stream
            }
            encode_response(&response, keep_alive, &mut self.write_buf);
            if !keep_alive {
                self.closing = true;
            }
        }
    }

    /// Sequence number the next in-order flush will take: every response
    /// with `seq < flushed_seq()` has been encoded into the write buffer.
    /// The trace layer finalizes a request's `write` span once this
    /// passes its seq *and* the buffer drains.
    #[must_use]
    pub fn flushed_seq(&self) -> u64 {
        self.flush_seq
    }

    /// The bytes still owed to the socket.
    #[must_use]
    pub fn pending(&self) -> &[u8] {
        self.write_buf.get(self.written..).unwrap_or_default()
    }

    /// Writes at most `budget` pending bytes to the socket and advances
    /// the buffer. `Ok(0)` means either nothing was pending or the peer
    /// closed its read side; callers disambiguate via [`Conn::pending`].
    ///
    /// # Errors
    ///
    /// Propagates the socket write error (`WouldBlock` included).
    pub fn write_some(&mut self, budget: usize) -> std::io::Result<usize> {
        use std::io::Write;
        let n = {
            let pending = self.write_buf.get(self.written..).unwrap_or_default();
            let slice = pending.get(..budget.min(pending.len())).unwrap_or(pending);
            if slice.is_empty() {
                return Ok(0);
            }
            (&self.stream).write(slice)?
        };
        self.advance(n);
        Ok(n)
    }

    /// Marks `n` bytes of [`Conn::pending`] as written, reclaiming the
    /// buffer once fully drained.
    pub fn advance(&mut self, n: usize) {
        self.written = self.written.saturating_add(n);
        if self.written >= self.write_buf.len() {
            self.write_buf.clear();
            self.written = 0;
        }
    }

    /// Whether the connection has produced everything it ever will and
    /// drained it: safe to drop.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.closing && self.inflight == 0 && self.pending().is_empty()
    }

    /// Whether the socket should be watched for writability.
    #[must_use]
    pub fn wants_write(&self) -> bool {
        !self.pending().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn test_conn() -> Conn {
        // A real socket pair purely to satisfy the field; no I/O happens.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        Conn::new(stream)
    }

    fn body_of(raw: &[u8]) -> Vec<String> {
        // Split concatenated responses on their bodies for order checks.
        let text = String::from_utf8_lossy(raw);
        text.split("\r\n\r\n")
            .skip(1)
            .map(|chunk| chunk.split("HTTP/1.1").next().unwrap_or("").to_owned())
            .filter(|s| !s.is_empty())
            .collect()
    }

    #[test]
    fn out_of_order_completions_flush_in_request_order() {
        let mut conn = test_conn();
        let s0 = conn.assign_seq();
        let s1 = conn.assign_seq();
        let s2 = conn.assign_seq();
        assert_eq!((s0, s1, s2), (0, 1, 2));
        assert_eq!(conn.inflight, 3);

        conn.complete(s2, Response::json("\"two\"".into()), true);
        assert!(conn.pending().is_empty(), "seq 2 must wait for 0 and 1");
        conn.complete(s0, Response::json("\"zero\"".into()), true);
        assert_eq!(body_of(conn.pending()), ["\"zero\""]);
        conn.complete(s1, Response::json("\"one\"".into()), true);
        assert_eq!(body_of(conn.pending()), ["\"zero\"", "\"one\"", "\"two\""]);
        assert_eq!(conn.inflight, 0);
        assert!(!conn.finished(), "still bytes to write");
        let n = conn.pending().len();
        conn.advance(n);
        assert!(!conn.finished(), "keep-alive connection stays open");
    }

    #[test]
    fn close_response_drops_later_pipelined_output() {
        let mut conn = test_conn();
        let s0 = conn.assign_seq();
        let s1 = conn.assign_seq();
        conn.complete(s1, Response::json("\"after\"".into()), true);
        conn.complete(s0, Response::json("\"last\"".into()), false);
        assert_eq!(body_of(conn.pending()), ["\"last\""]);
        assert!(conn.closing);
        let n = conn.pending().len();
        conn.advance(n);
        assert!(conn.finished());
    }

    #[test]
    fn partial_writes_advance_without_losing_bytes() {
        let mut conn = test_conn();
        let s0 = conn.assign_seq();
        conn.complete(s0, Response::json("0123456789".into()), true);
        let total = conn.pending().len();
        conn.advance(4);
        assert_eq!(conn.pending().len(), total - 4);
        conn.advance(total - 4);
        assert!(conn.pending().is_empty());
        assert!(!conn.wants_write());
    }
}
