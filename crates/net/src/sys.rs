//! Raw readiness-notification syscalls, wrapped in a safe [`Poller`].
//!
//! This is the **only** file in the workspace permitted to contain
//! `unsafe` (the crate root is `#![deny(unsafe_code)]`; this module opts
//! back in with a scoped `allow`, and the vslint `forbid-unsafe` rule
//! statically rejects an `unsafe` token anywhere else). The rationale for
//! the exception: the workspace vendors no `libc`/`mio`, so readiness
//! polling must go straight to the platform's epoll interface, and FFI is
//! inherently `unsafe`. The blast radius is confined to four libc calls —
//! `epoll_create1`, `epoll_ctl`, `epoll_wait`, `close` — each wrapped so
//! that:
//!
//! * every raw fd handed to the kernel comes from a live `std` socket
//!   owned by the caller (`Poller` never fabricates or stores fds other
//!   than its own epoll fd);
//! * the `epoll_wait` output buffer is a caller-owned slice whose length
//!   bounds `maxevents`, so the kernel can never write past it;
//! * the epoll fd is closed exactly once, in `Drop`.
//!
//! On non-Linux platforms the module compiles to a stub whose constructor
//! returns `ErrorKind::Unsupported`, keeping the crate buildable (the
//! blocking I/O path in `viewseeker-server` remains available there).

/// Readiness reported for one registered file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token supplied at registration.
    pub token: u64,
    /// The fd is readable (or the peer hung up, which reads as EOF).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The kernel flagged an error condition on the fd.
    pub error: bool,
}

/// The interest set for one registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake on readability.
    pub readable: bool,
    /// Wake on writability.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
}

#[cfg(target_os = "linux")]
pub use linux::Poller;

#[cfg(target_os = "linux")]
mod linux {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;

    // Stable Linux userspace ABI constants (asm-generic; identical across
    // the architectures this workspace targets).
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs
    /// it (no padding between `events` and `data`); other architectures
    /// use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Debug, Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut events = EPOLLRDHUP;
        if interest.readable {
            events |= EPOLLIN;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        events
    }

    /// A safe, level-triggered epoll instance.
    ///
    /// Level-triggered on purpose: the reactor reads and writes under
    /// per-tick byte budgets, and level semantics guarantee a fd with
    /// leftover readiness is reported again on the next tick — no
    /// starvation bookkeeping required.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        /// Reusable kernel output buffer for [`Poller::wait`].
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        /// Creates a new epoll instance (close-on-exec).
        ///
        /// # Errors
        ///
        /// Propagates `epoll_create1` failure.
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes no pointers; a negative return is
            // mapped to an error and never used as an fd.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        /// Registers `fd` with `token` and the given interest set.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failure (e.g. an already-registered fd).
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        /// Replaces the interest set of an already-registered `fd`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failure.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        /// Deregisters `fd`.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_ctl` failure.
        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ)
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: `event` is a live, properly-initialized epoll_event
            // for the duration of the call; the kernel reads it and does
            // not retain the pointer past the syscall.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut event) })?;
            Ok(())
        }

        /// Waits up to `timeout_ms` (-1 = forever) and appends readiness
        /// events to `out`. A signal interruption reports zero events.
        ///
        /// # Errors
        ///
        /// Propagates `epoll_wait` failure other than `EINTR`.
        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<usize> {
            let cap = self.buf.len() as c_int;
            // SAFETY: `buf` is a live Vec of `buf.len()` initialized
            // elements; `maxevents == buf.len()` bounds the kernel's
            // writes to the allocation.
            let n =
                match cvt(unsafe { epoll_wait(self.epfd, self.buf.as_mut_ptr(), cap, timeout_ms) })
                {
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                    Err(e) => return Err(e),
                };
            let count = usize::try_from(n).unwrap_or(0).min(self.buf.len());
            for raw in self.buf.iter().take(count) {
                // Copy out of the (possibly packed) struct before use.
                let events = raw.events;
                let data = raw.data;
                out.push(Event {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    error: events & EPOLLERR != 0,
                });
            }
            Ok(count)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: `epfd` was returned by epoll_create1 and is closed
            // exactly once, here.
            let _ = unsafe { close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
pub use fallback::Poller;

#[cfg(not(target_os = "linux"))]
mod fallback {
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    /// Stub poller for non-Linux builds: construction fails with
    /// [`io::ErrorKind::Unsupported`], steering callers to the blocking
    /// I/O path.
    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        /// Always fails on this platform.
        ///
        /// # Errors
        ///
        /// [`io::ErrorKind::Unsupported`], unconditionally.
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "the event-driven reactor requires epoll (Linux); use --io blocking",
            ))
        }

        /// Unreachable on this platform (construction always fails).
        ///
        /// # Errors
        ///
        /// [`io::ErrorKind::Unsupported`], unconditionally.
        pub fn add(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(io::ErrorKind::Unsupported.into())
        }

        /// Unreachable on this platform (construction always fails).
        ///
        /// # Errors
        ///
        /// [`io::ErrorKind::Unsupported`], unconditionally.
        pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(io::ErrorKind::Unsupported.into())
        }

        /// Unreachable on this platform (construction always fails).
        ///
        /// # Errors
        ///
        /// [`io::ErrorKind::Unsupported`], unconditionally.
        pub fn remove(&self, _fd: RawFd) -> io::Result<()> {
            Err(io::ErrorKind::Unsupported.into())
        }

        /// Unreachable on this platform (construction always fails).
        ///
        /// # Errors
        ///
        /// [`io::ErrorKind::Unsupported`], unconditionally.
        pub fn wait(&mut self, _timeout_ms: i32, _out: &mut Vec<Event>) -> io::Result<usize> {
            Err(io::ErrorKind::Unsupported.into())
        }
    }
}

#[cfg(test)]
#[cfg(target_os = "linux")]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poller_reports_readability_and_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 7, Interest::READ).unwrap();

        // Nothing to read yet: a zero-timeout wait reports no events.
        let mut events = Vec::new();
        poller.wait(0, &mut events).unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        client.write_all(b"ping").unwrap();
        events.clear();
        poller.wait(1000, &mut events).unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("readable");
        assert!(ev.readable && !ev.writable);
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);

        // Write interest on an idle socket reports writable immediately.
        poller
            .modify(server.as_raw_fd(), 7, Interest::READ_WRITE)
            .unwrap();
        events.clear();
        poller.wait(1000, &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        // Peer close reads as readable (EOF).
        drop(client);
        events.clear();
        poller.wait(1000, &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        poller.remove(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn remove_unregistered_fd_is_an_error_not_a_crash() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let poller = Poller::new().unwrap();
        assert!(poller.remove(listener.as_raw_fd()).is_err());
    }
}
