//! Per-request tracing: ids, span trees, tail sampling, and exports.
//!
//! Every request travelling through the reactor (or the blocking oracle
//! path in `viewseeker-server`) carries an [`ActiveTrace`]: a cheap
//! cloneable handle the I/O layer and the request handler both stamp
//! stage spans into — parse, admission-queue wait, dispatch, handler
//! (with the seeker's `core::trace` phases nested inside), serialize,
//! and buffered write/flush. When the response's last byte reaches the
//! socket the trace is finalized into a [`RequestTrace`] and handed to a
//! [`TraceSink`].
//!
//! The production sink chain ends in a [`TraceSampler`]: a lock-light
//! *tail* sampler that decides which traces to keep only after seeing
//! how a request ended — the slowest within a rolling window, plus every
//! errored and shed request (bounded). A relaxed atomic latency floor
//! lets the overwhelming majority of fast, healthy requests return
//! without touching the mutex, which is what keeps tracing affordable at
//! thousands of connections.
//!
//! Retained traces export two ways, both consumed by
//! `GET /debug/traces`:
//!
//! * [`chrome_trace_json`] — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` or Perfetto; each request is a row of `ph: "X"`
//!   complete events on its own `tid`.
//! * [`folded_stacks`] — collapsed `route;stage` lines for flamegraph
//!   tooling, aggregated across the retained set.
//!
//! Stage names live in the [`SPANS`] registry, mirroring the Prometheus
//! `SERIES` table in `viewseeker-server`: the `span-registry` vslint rule
//! checks each name is defined exactly once, actually emitted, and
//! documented in DESIGN.md and README.md.

use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// One pipeline stage a request can spend time in.
#[derive(Debug, Clone, Copy)]
pub struct SpanDef {
    /// Stable stage name, used in traces, logs, and metric labels.
    pub name: &'static str,
    /// What the stage covers.
    pub help: &'static str,
}

/// Registry of every request-pipeline stage name. The vslint
/// `span-registry` rule enforces that each name is defined once here,
/// emitted by non-test code, and documented in DESIGN.md and README.md.
/// (The seeker's `core::trace` phase names appear *nested* under
/// `handler` and are governed by `TracePhase`, not this table.)
pub static SPANS: [SpanDef; 6] = [
    SpanDef {
        name: "parse",
        help: "first byte of the request on the wire until it parses",
    },
    SpanDef {
        name: "queue_wait",
        help: "time parked in the admission queue awaiting a worker slot",
    },
    SpanDef {
        name: "dispatch",
        help: "dequeue until a worker thread picks the job up",
    },
    SpanDef {
        name: "handler",
        help: "the request handler itself (seeker phases nest inside)",
    },
    SpanDef {
        name: "serialize",
        help: "rendering the response body to JSON",
    },
    SpanDef {
        name: "write",
        help: "handler completion until the last response byte is flushed",
    },
];

/// Longest accepted client-supplied `X-Request-Id`.
pub const MAX_REQUEST_ID_LEN: usize = 64;

/// One timed stage within a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Stage name from [`SPANS`] (or a nested `core::trace` phase name).
    pub name: &'static str,
    /// Microseconds from the trace start to this span's start.
    pub start_us: u64,
    /// Span duration, microseconds.
    pub dur_us: u64,
    /// Enclosing stage, for nested spans (`Some("handler")` for seeker
    /// phases and serialization); `None` for top-level pipeline stages.
    pub parent: Option<&'static str>,
}

/// A finished request trace: the span tree plus identity and outcome.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// Request id (honored from `X-Request-Id` or generated).
    pub id: String,
    /// Request method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Route label the server resolved, `""` when the request never
    /// reached a handler (shed, or rejected during parse).
    pub route: &'static str,
    /// Response status.
    pub status: u16,
    /// Whether admission control shed the request.
    pub shed: bool,
    /// When the request's first byte arrived (aligns traces on a shared
    /// timeline at export).
    pub started: Instant,
    /// First byte in to last byte flushed, microseconds.
    pub total_us: u64,
    /// The recorded spans, in completion order.
    pub spans: Vec<Span>,
}

impl RequestTrace {
    /// Sum of the top-level stage durations. Within instrumentation
    /// overhead (a handful of `Instant::now` reads and channel hops) of
    /// [`RequestTrace::total_us`].
    #[must_use]
    pub fn stage_sum_us(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| s.dur_us)
            .fold(0u64, u64::saturating_add)
    }

    /// The route label for metrics/logs: the resolved route, or a
    /// synthetic bucket for requests that never reached a handler.
    #[must_use]
    pub fn route_label(&self) -> &'static str {
        if !self.route.is_empty() {
            self.route
        } else if self.shed {
            "shed"
        } else {
            "rejected"
        }
    }
}

/// One top-level stage slot. `seq` is 0 until the stage is recorded;
/// afterwards it holds a 1-based recording-order sequence number (the
/// `Release` store that publishes `start_us`/`dur_us`).
#[derive(Debug, Default)]
struct StageCell {
    seq: AtomicU64,
    start_us: AtomicU64,
    dur_us: AtomicU64,
}

/// Worker-side trace state. The mutex guarding it is taken by the worker
/// thread (`record_nested`, `set_route`, `stages_us`) and never by the
/// reactor: `finish` uses `try_lock`, which cannot block the tick path.
#[derive(Debug, Default)]
struct WorkerState {
    route: &'static str,
    nested: Vec<Span>,
}

#[derive(Debug)]
struct ActiveShared {
    /// Immutable after `start` — readable from any thread without a lock.
    id: String,
    method: String,
    path: String,
    status: AtomicU16,
    shed: AtomicBool,
    /// Recording-order counter for the stage slots.
    next_seq: AtomicU64,
    /// One slot per [`SPANS`] stage, written lock-free from whichever
    /// thread completes the stage.
    stages: [StageCell; SPANS.len()],
    worker: Mutex<WorkerState>,
}

/// The live handle for a request being traced. Cloning shares the
/// underlying trace; the reactor thread and a worker thread stamp spans
/// into the same tree from opposite ends of the pipeline.
///
/// Everything the reactor touches (`record`, `set_status`, `mark_shed`,
/// `id`, `finish`) is lock-free — a mutex shared with a worker here
/// would let one slow handler stall every connection at once, and the
/// `blocking-in-reactor` vslint rule enforces that it stays that way.
/// Only worker-side extras (nested seeker phases, the resolved route)
/// live behind a mutex.
#[derive(Debug, Clone)]
pub struct ActiveTrace {
    started: Instant,
    shared: Arc<ActiveShared>,
}

impl ActiveTrace {
    /// Starts a trace for a request whose first byte arrived at
    /// `started`. `client_id` is the raw `X-Request-Id` value, honored
    /// when well-formed (see [`sanitize_request_id`]), else a process-
    /// unique id is generated.
    #[must_use]
    pub fn start(client_id: Option<&str>, method: &str, path: &str, started: Instant) -> Self {
        let id = client_id
            .and_then(sanitize_request_id)
            .unwrap_or_else(next_request_id);
        Self {
            started,
            shared: Arc::new(ActiveShared {
                id,
                method: method.to_owned(),
                path: path.to_owned(),
                status: AtomicU16::new(0),
                shed: AtomicBool::new(false),
                next_seq: AtomicU64::new(0),
                stages: Default::default(),
                worker: Mutex::new(WorkerState::default()),
            }),
        }
    }

    /// A trace for a handler invoked outside any traced I/O path (unit
    /// tests, direct calls). Never reaches a sink.
    #[must_use]
    pub fn detached(method: &str, path: &str) -> Self {
        Self::start(None, method, path, Instant::now())
    }

    /// The worker-side state; see [`WorkerState`] for why the reactor
    /// never calls this.
    fn worker_lock(&self) -> MutexGuard<'_, WorkerState> {
        // A panicking recorder must not take tracing down with it; span
        // data is append-only so the state is structurally fine.
        self.shared
            .worker
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The request id.
    #[must_use]
    pub fn id(&self) -> String {
        self.shared.id.clone()
    }

    /// Records a top-level stage span running from `from` until now.
    /// `name` must be one of the [`SPANS`] stages (the `span-registry`
    /// lint pins every call site); anything else is dropped.
    pub fn record(&self, name: &'static str, from: Instant) {
        let Some(cell) = SPANS
            .iter()
            .position(|s| s.name == name)
            .and_then(|i| self.shared.stages.get(i))
        else {
            debug_assert!(false, "unknown stage {name}");
            return;
        };
        let start_us = us(from.saturating_duration_since(self.started));
        let dur_us = us(from.elapsed());
        cell.start_us.store(start_us, Ordering::Relaxed);
        cell.dur_us.store(dur_us, Ordering::Relaxed);
        let seq = self.shared.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        cell.seq.store(seq, Ordering::Release);
    }

    /// Records a span nested under `handler` that ended just now and ran
    /// for `duration` — the shape `core::trace` phase reports arrive in.
    /// Worker-thread only (takes the worker mutex).
    pub fn record_nested(&self, name: &'static str, duration: Duration) {
        let dur_us = us(duration);
        let end_us = us(self.started.elapsed());
        self.worker_lock().nested.push(Span {
            name,
            start_us: end_us.saturating_sub(dur_us),
            dur_us,
            parent: Some("handler"),
        });
    }

    /// The stage slots recorded so far, as spans in recording order.
    fn stage_spans(&self) -> Vec<Span> {
        let mut recorded: Vec<(u64, Span)> = SPANS
            .iter()
            .zip(&self.shared.stages)
            .filter_map(|(def, cell)| {
                let seq = cell.seq.load(Ordering::Acquire);
                (seq > 0).then(|| {
                    (
                        seq,
                        Span {
                            name: def.name,
                            start_us: cell.start_us.load(Ordering::Relaxed),
                            dur_us: cell.dur_us.load(Ordering::Relaxed),
                            parent: None,
                        },
                    )
                })
            })
            .collect();
        recorded.sort_by_key(|&(seq, _)| seq);
        recorded.into_iter().map(|(_, span)| span).collect()
    }

    /// The spans recorded so far as `(name, dur_us)` pairs, stages in
    /// recording order followed by nested spans — what an access log
    /// emitted mid-pipeline can know (later stages like `write` have not
    /// happened yet). Worker-thread only (takes the worker mutex).
    #[must_use]
    pub fn stages_us(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = self
            .stage_spans()
            .iter()
            .map(|s| (s.name, s.dur_us))
            .collect();
        out.extend(self.worker_lock().nested.iter().map(|s| (s.name, s.dur_us)));
        out
    }

    /// Sets the route label the server resolved. Worker-thread only
    /// (takes the worker mutex).
    pub fn set_route(&self, route: &'static str) {
        self.worker_lock().route = route;
    }

    /// Sets the response status.
    pub fn set_status(&self, status: u16) {
        self.shared.status.store(status, Ordering::Relaxed);
    }

    /// Marks the request shed by admission control.
    pub fn mark_shed(&self) {
        self.shared.shed.store(true, Ordering::Relaxed);
    }

    /// Finalizes into a [`RequestTrace`], with `total_us` measured from
    /// the first byte to now. The handle stays usable, but callers
    /// finalize exactly once, at last-byte-flushed.
    ///
    /// Runs on the reactor thread, so the worker state is read with
    /// `try_lock`: by last-byte-flushed the worker finished with this
    /// request long ago, so contention means a *different* request's
    /// recorder holds the lock — never wait for it. On the (theoretical)
    /// miss the trace ships without route/nested spans rather than
    /// stalling the tick loop.
    #[must_use]
    pub fn finish(&self) -> RequestTrace {
        let total_us = us(self.started.elapsed());
        let mut spans = self.stage_spans();
        let (route, nested) = match self.shared.worker.try_lock() {
            Ok(worker) => (worker.route, worker.nested.clone()),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                let worker = poisoned.into_inner();
                (worker.route, worker.nested.clone())
            }
            Err(std::sync::TryLockError::WouldBlock) => ("", Vec::new()),
        };
        spans.extend(nested);
        RequestTrace {
            id: self.shared.id.clone(),
            method: self.shared.method.clone(),
            path: self.shared.path.clone(),
            route,
            status: self.shared.status.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            started: self.started,
            total_us,
            spans,
        }
    }
}

/// Whole saturating microseconds.
fn us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(0);

/// A process-unique request id (`r-<hex>`).
#[must_use]
pub fn next_request_id() -> String {
    format!(
        "r-{:08x}",
        NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed) + 1
    )
}

/// Accepts a client-supplied request id when it is 1–64 chars of
/// `[A-Za-z0-9._-]` — safe to echo into headers, logs, and JSON without
/// escaping surprises. Anything else is ignored (a fresh id is used).
#[must_use]
pub fn sanitize_request_id(raw: &str) -> Option<String> {
    let trimmed = raw.trim();
    let ok = !trimmed.is_empty()
        && trimmed.len() <= MAX_REQUEST_ID_LEN
        && trimmed
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    ok.then(|| trimmed.to_owned())
}

/// Where finished traces go. The server installs a sink that feeds the
/// tail sampler, stage histograms, and (for requests that never reached
/// a handler) the access log.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Accepts one finished trace.
    fn record(&self, trace: RequestTrace);
}

/// Discards every trace (tests; tracing disabled).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTraceSink;

impl TraceSink for NoopTraceSink {
    fn record(&self, _trace: RequestTrace) {}
}

/// Traces kept in the slowest-set per window by default.
pub const DEFAULT_SLOW_CAPACITY: usize = 64;
/// Errored (and separately, shed) traces kept per window by default.
pub const DEFAULT_ERROR_CAPACITY: usize = 32;
/// Records per rolling window by default.
pub const DEFAULT_WINDOW: u64 = 4096;

#[derive(Debug, Default)]
struct Generation {
    slow: Vec<RequestTrace>,
    errored: Vec<RequestTrace>,
    shed: Vec<RequestTrace>,
}

#[derive(Debug, Default)]
struct SamplerInner {
    seen_in_window: u64,
    cur: Generation,
    prev: Generation,
}

/// Lock-light tail sampler: keeps the slowest requests per rolling
/// window plus bounded sets of errored and shed requests, spanning the
/// current and previous window so a fresh rotation never empties
/// `/debug/traces`.
///
/// The fast path is one relaxed atomic load: a healthy request slower
/// than none of the retained set returns without locking. The floor is
/// conservative (it only rises when the slow set is full, and resets on
/// rotation), so the slowest request of a window is never skipped.
#[derive(Debug)]
pub struct TraceSampler {
    slow_capacity: usize,
    error_capacity: usize,
    window: u64,
    /// Admission floor: healthy traces strictly faster than this cannot
    /// enter the slow set, so they skip the lock entirely.
    floor_us: AtomicU64,
    recorded: AtomicU64,
    inner: Mutex<SamplerInner>,
}

impl Default for TraceSampler {
    fn default() -> Self {
        Self::new(
            DEFAULT_SLOW_CAPACITY,
            DEFAULT_ERROR_CAPACITY,
            DEFAULT_WINDOW,
        )
    }
}

impl TraceSampler {
    /// A sampler keeping the `slow_capacity` slowest plus
    /// `error_capacity` errored and shed traces per `window` records.
    #[must_use]
    pub fn new(slow_capacity: usize, error_capacity: usize, window: u64) -> Self {
        Self {
            slow_capacity: slow_capacity.max(1),
            error_capacity: error_capacity.max(1),
            window: window.max(1),
            floor_us: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            inner: Mutex::new(SamplerInner::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SamplerInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Total traces offered to the sampler (kept or not).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Traces currently retained across both windows (before id dedup).
    #[must_use]
    pub fn retained(&self) -> usize {
        let inner = self.lock();
        [&inner.cur, &inner.prev]
            .iter()
            .map(|g| g.slow.len() + g.errored.len() + g.shed.len())
            .sum()
    }

    /// The retained traces, deduplicated by id, slowest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<RequestTrace> {
        let inner = self.lock();
        let mut out: Vec<RequestTrace> = Vec::new();
        for generation in [&inner.cur, &inner.prev] {
            for trace in generation
                .slow
                .iter()
                .chain(&generation.errored)
                .chain(&generation.shed)
            {
                if !out.iter().any(|t| t.id == trace.id) {
                    out.push(trace.clone());
                }
            }
        }
        drop(inner);
        out.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.id.cmp(&b.id)));
        out
    }
}

impl TraceSink for TraceSampler {
    fn record(&self, trace: RequestTrace) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let interesting = trace.shed || trace.status >= 400;
        // Fast path: healthy and beneath the slow-set floor — the trace
        // could not be retained, so skip the lock. `<` (not `<=`) keeps
        // the invariant that a window's maximum-latency trace always
        // passes: the floor never exceeds the slow set's minimum.
        if !interesting && trace.total_us < self.floor_us.load(Ordering::Relaxed) {
            return;
        }
        let mut inner = self.lock();
        inner.seen_in_window += 1;
        if inner.seen_in_window >= self.window {
            inner.seen_in_window = 0;
            inner.prev = std::mem::take(&mut inner.cur);
            // New window: everything qualifies again until the set fills.
            self.floor_us.store(0, Ordering::Relaxed);
        }
        if trace.shed {
            bounded_push(&mut inner.cur.shed, trace.clone(), self.error_capacity);
        } else if trace.status >= 400 {
            bounded_push(&mut inner.cur.errored, trace.clone(), self.error_capacity);
        }
        // The slow set admits every outcome: an errored request can also
        // be the slowest, and keeping it here preserves it past the
        // bounded FIFO above.
        if inner.cur.slow.len() < self.slow_capacity {
            inner.cur.slow.push(trace);
            if inner.cur.slow.len() == self.slow_capacity {
                // The set just filled: from here on, only traces at or
                // above its minimum can displace anything.
                let floor = inner.cur.slow.iter().map(|t| t.total_us).min().unwrap_or(0);
                self.floor_us.store(floor, Ordering::Relaxed);
            }
            return;
        }
        let min = inner
            .cur
            .slow
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| t.total_us)
            .map(|(i, t)| (i, t.total_us));
        if let Some((index, min_us)) = min {
            if trace.total_us > min_us {
                if let Some(slot) = inner.cur.slow.get_mut(index) {
                    *slot = trace;
                }
            }
            let new_floor = inner.cur.slow.iter().map(|t| t.total_us).min().unwrap_or(0);
            self.floor_us.store(new_floor, Ordering::Relaxed);
        }
    }
}

fn bounded_push(list: &mut Vec<RequestTrace>, trace: RequestTrace, capacity: usize) {
    if list.len() >= capacity {
        list.remove(0); // oldest out; capacity is small (≤ dozens)
    }
    list.push(trace);
}

/// Escapes `s` for embedding inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders traces as Chrome trace-event JSON (the `traceEvents` array
/// format `chrome://tracing` and Perfetto load). Each request gets its
/// own `tid`; timestamps are microseconds relative to the earliest
/// retained request, so concurrent requests align on one timeline.
#[must_use]
pub fn chrome_trace_json(traces: &[RequestTrace]) -> String {
    let epoch = traces.iter().map(|t| t.started).min();
    let mut events: Vec<String> = Vec::new();
    for (index, trace) in traces.iter().enumerate() {
        let tid = index + 1;
        let base = epoch.map_or(0, |e| us(trace.started.saturating_duration_since(e)));
        events.push(format!(
            "{{\"name\":\"{} {}\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"request_id\":\"{}\",\"route\":\"{}\",\
             \"status\":{},\"shed\":{}}}}}",
            json_escape(&trace.method),
            json_escape(&trace.path),
            base,
            trace.total_us,
            tid,
            json_escape(&trace.id),
            trace.route_label(),
            trace.status,
            trace.shed,
        ));
        for span in &trace.spans {
            let parent = span.parent.unwrap_or("");
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"request_id\":\"{}\",\"parent\":\"{}\"}}}}",
                span.name,
                base.saturating_add(span.start_us),
                span.dur_us,
                tid,
                json_escape(&trace.id),
                parent,
            ));
        }
    }
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

/// Renders traces as folded-stack lines (`route;stage dur_us`), the
/// input format of flamegraph tooling. Durations aggregate across the
/// retained set; `handler` lines carry its self time (total minus the
/// nested seeker phases), so stack totals are not double-counted.
#[must_use]
pub fn folded_stacks(traces: &[RequestTrace]) -> String {
    let mut stacks: Vec<(String, u64)> = Vec::new();
    let mut bump = |stack: String, dur: u64| {
        if let Some(entry) = stacks.iter_mut().find(|(s, _)| *s == stack) {
            entry.1 = entry.1.saturating_add(dur);
        } else {
            stacks.push((stack, dur));
        }
    };
    for trace in traces {
        let route = trace.route_label();
        let nested_us: u64 = trace
            .spans
            .iter()
            .filter(|s| s.parent.is_some())
            .map(|s| s.dur_us)
            .fold(0u64, u64::saturating_add);
        for span in &trace.spans {
            match span.parent {
                Some(parent) => bump(format!("{route};{parent};{}", span.name), span.dur_us),
                None if span.name == "handler" => {
                    bump(
                        format!("{route};handler"),
                        span.dur_us.saturating_sub(nested_us),
                    );
                }
                None => bump(format!("{route};{}", span.name), span.dur_us),
            }
        }
    }
    stacks.sort();
    let mut out = String::new();
    for (stack, dur) in stacks {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&dur.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: &str, total_us: u64, status: u16, shed: bool) -> RequestTrace {
        RequestTrace {
            id: id.to_owned(),
            method: "GET".to_owned(),
            path: "/x".to_owned(),
            route: if shed || status == 431 { "" } else { "next" },
            status,
            shed,
            started: Instant::now(),
            total_us,
            spans: vec![
                Span {
                    name: "parse",
                    start_us: 0,
                    dur_us: 5,
                    parent: None,
                },
                Span {
                    name: "handler",
                    start_us: 5,
                    dur_us: total_us.saturating_sub(5),
                    parent: None,
                },
            ],
        }
    }

    #[test]
    fn active_trace_records_spans_and_outcome() {
        let t0 = Instant::now();
        let t = ActiveTrace::start(Some("client-1"), "GET", "/sessions/s1/next", t0);
        t.record("parse", t0);
        t.record_nested("materialization", Duration::from_micros(40));
        t.set_route("next");
        t.set_status(200);
        let done = t.finish();
        assert_eq!(done.id, "client-1");
        assert_eq!(done.route, "next");
        assert_eq!(done.status, 200);
        assert!(!done.shed);
        assert_eq!(done.spans.len(), 2);
        let nested = done.spans.get(1).unwrap();
        assert_eq!(nested.parent, Some("handler"));
        assert_eq!(nested.dur_us, 40);
        assert!(done.total_us >= done.spans.first().unwrap().dur_us);
        assert_eq!(done.stage_sum_us(), done.spans.first().unwrap().dur_us);
    }

    #[test]
    fn request_ids_are_honored_sanitized_or_generated() {
        assert_eq!(
            sanitize_request_id("abc-123_X.y").as_deref(),
            Some("abc-123_X.y")
        );
        assert_eq!(
            sanitize_request_id("  trimmed  ").as_deref(),
            Some("trimmed")
        );
        assert_eq!(sanitize_request_id(""), None);
        assert_eq!(sanitize_request_id("has space"), None);
        assert_eq!(sanitize_request_id("newline\ninjection"), None);
        assert_eq!(sanitize_request_id(&"a".repeat(65)), None);
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
        assert!(a.starts_with("r-"), "{a}");
        let t = ActiveTrace::start(Some("x\r\ny"), "GET", "/", Instant::now());
        assert!(t.id().starts_with("r-"), "bad client id must be replaced");
    }

    #[test]
    fn sampler_keeps_slowest_and_all_interesting() {
        let sampler = TraceSampler::new(4, 4, 10_000);
        for n in 0..100u64 {
            sampler.record(trace(&format!("ok-{n}"), n, 200, false));
        }
        sampler.record(trace("err-1", 1, 500, false));
        sampler.record(trace("shed-1", 2, 503, true));
        let kept = sampler.snapshot();
        let ids: Vec<&str> = kept.iter().map(|t| t.id.as_str()).collect();
        for want in ["ok-99", "ok-98", "ok-97", "ok-96", "err-1", "shed-1"] {
            assert!(ids.contains(&want), "missing {want}: {ids:?}");
        }
        assert!(!ids.contains(&"ok-50"), "fast healthy traces roll out");
        assert_eq!(sampler.recorded(), 102);
        // Slowest first.
        assert_eq!(kept.first().map(|t| t.id.as_str()), Some("ok-99"));
    }

    #[test]
    fn sampler_floor_skips_fast_healthy_traces_without_losing_the_max() {
        let sampler = TraceSampler::new(2, 2, 10_000);
        sampler.record(trace("a", 100, 200, false));
        sampler.record(trace("b", 200, 200, false));
        assert_eq!(sampler.floor_us.load(Ordering::Relaxed), 100);
        sampler.record(trace("c", 50, 200, false)); // fast path, skipped
        sampler.record(trace("d", 300, 200, false)); // evicts "a"
        let ids: Vec<String> = sampler.snapshot().iter().map(|t| t.id.clone()).collect();
        assert_eq!(ids, ["d", "b"]);
        assert_eq!(sampler.floor_us.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn window_rotation_preserves_the_previous_generation() {
        let sampler = TraceSampler::new(8, 8, 4);
        for n in 0..4u64 {
            sampler.record(trace(&format!("w1-{n}"), 1000 + n, 200, false));
        }
        // The 4th record rotated; record one in the new window.
        sampler.record(trace("w2-0", 5, 200, false));
        let ids: Vec<String> = sampler.snapshot().iter().map(|t| t.id.clone()).collect();
        assert!(ids.contains(&"w2-0".to_owned()), "{ids:?}");
        assert!(
            ids.contains(&"w1-3".to_owned()),
            "previous window retained: {ids:?}"
        );
        assert!(sampler.retained() <= 2 * (8 + 8 + 8));
    }

    #[test]
    fn chrome_trace_json_golden_shape() {
        let t = trace("req-7", 105, 200, false);
        let json = chrome_trace_json(std::slice::from_ref(&t));
        let expected = concat!(
            "{\"traceEvents\":[",
            "{\"name\":\"GET /x\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":0,\"dur\":105,",
            "\"pid\":1,\"tid\":1,\"args\":{\"request_id\":\"req-7\",\"route\":\"next\",",
            "\"status\":200,\"shed\":false}},",
            "{\"name\":\"parse\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":0,\"dur\":5,",
            "\"pid\":1,\"tid\":1,\"args\":{\"request_id\":\"req-7\",\"parent\":\"\"}},",
            "{\"name\":\"handler\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":5,\"dur\":100,",
            "\"pid\":1,\"tid\":1,\"args\":{\"request_id\":\"req-7\",\"parent\":\"\"}}]}",
        );
        assert_eq!(json, expected);
    }

    #[test]
    fn chrome_trace_json_escapes_hostile_paths() {
        let mut t = trace("req-8", 10, 200, false);
        t.path = "/quote\"back\\slash\nnewline".to_owned();
        let json = chrome_trace_json(std::slice::from_ref(&t));
        assert!(json.contains("/quote\\\"back\\\\slash\\nnewline"), "{json}");
        // Still a single well-formed JSON object per event: every quote
        // inside string values is escaped.
        assert!(!json.contains("slash\n"), "raw newline leaked: {json}");
    }

    #[test]
    fn folded_stacks_aggregate_and_subtract_nested_time() {
        let mut t = trace("req-9", 100, 200, false);
        t.spans.push(Span {
            name: "materialization",
            start_us: 10,
            dur_us: 30,
            parent: Some("handler"),
        });
        let folded = folded_stacks(&[t.clone(), t]);
        let mut lines: Vec<&str> = folded.lines().collect();
        lines.sort_unstable();
        assert_eq!(
            lines,
            [
                "next;handler 130",                // 2 × (95 − 30) self time
                "next;handler;materialization 60", // 2 × 30
                "next;parse 10",                   // 2 × 5
            ]
        );
    }

    #[test]
    fn sampler_is_safe_under_concurrent_recording() {
        let sampler = Arc::new(TraceSampler::new(16, 8, 1_000_000));
        std::thread::scope(|scope| {
            for thread in 0..4u64 {
                let sampler = Arc::clone(&sampler);
                scope.spawn(move || {
                    for n in 0..500u64 {
                        let latency = (n * 7919 + thread * 104_729) % 10_000;
                        sampler.record(trace(&format!("t{thread}-{n}"), latency, 200, false));
                    }
                });
            }
        });
        assert_eq!(sampler.recorded(), 2000);
        let kept = sampler.snapshot();
        assert!(kept.len() <= 16);
        // The globally slowest trace always survives: the floor can never
        // exceed the slow set's minimum, which is bounded by the max.
        let max = (0..4u64)
            .flat_map(|t| (0..500u64).map(move |n| (n * 7919 + t * 104_729) % 10_000))
            .max()
            .unwrap_or(0);
        assert_eq!(kept.first().map(|t| t.total_us), Some(max));
    }
}
