//! `viewseeker-net`: the event-driven network core.
//!
//! A non-blocking readiness reactor (epoll on Linux) drives per-connection
//! HTTP/1.1 state machines — accept → incremental read/parse (with
//! pipelining) → dispatch to a worker pool → buffered ordered write →
//! keep-alive reuse — with bounded accept/read/write budgets per tick so
//! one slow client cannot starve the loop, and admission control
//! (max-inflight + queue-deadline shedding answered with
//! `503 Service Unavailable` and `Retry-After`) so overload degrades into
//! fast, explicit rejections instead of unbounded queues.
//!
//! * [`sys`] — the raw epoll syscall surface. **The only module in the
//!   workspace allowed to contain `unsafe`** (enforced by the vslint
//!   `forbid-unsafe` rule); everything above it consumes a safe
//!   [`sys::Poller`] API.
//! * [`http1`] — the incremental HTTP/1.1 parser and encoder shared by
//!   this reactor and the blocking oracle path in `viewseeker-server`:
//!   tolerant of partial reads and split CRLFs, strict about oversized
//!   header blocks (`431`) and bodies (`413`).
//! * [`hist`] — the log-linear latency histogram (re-exported by
//!   `viewseeker-server::hist`), used here for loop-tick timing and by
//!   `viewseeker-loadgen` for client-side latencies.
//! * [`stats`] — the `viewseeker_net_*` counter/gauge/histogram state the
//!   server's Prometheus exporter scrapes.
//! * [`conn`] — the per-connection state machine: buffered reads, parsed
//!   request sequencing, out-of-order completion reordering, buffered
//!   writes, keep-alive bookkeeping.
//! * [`reactor`] — the event loop itself plus the worker dispatch pool
//!   and the admission queue.
//! * [`trace`] — per-request tracing: ids (honored or generated
//!   `X-Request-Id`), span trees stamped across the pipeline stages, the
//!   lock-light tail sampler behind `GET /debug/traces`, and the Chrome
//!   trace-event / folded-stack exporters.
//!
//! This crate is deliberately protocol-only: it knows nothing about
//! sessions, datasets, or JSON. `viewseeker-server` mounts its `Router`
//! behind [`http1::Handler`] and selects this reactor with
//! `serve --io event`.

// The one sanctioned hole in the workspace-wide `forbid(unsafe_code)`
// policy: `deny` here (instead of `forbid`) so the `sys` module alone can
// opt back in with a scoped `allow`. The vslint `forbid-unsafe` rule
// checks this exact arrangement: this root must carry `deny(unsafe_code)`
// and no file outside `crates/net/src/sys.rs` may contain an `unsafe`
// token.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod hist;
pub mod http1;
pub mod reactor;
pub mod stats;
#[allow(unsafe_code)]
pub mod sys;
pub mod trace;

pub use http1::{Handler, Request, Response};
pub use reactor::{serve_event, EventConfig, EventHandle};
pub use stats::NetStats;
pub use trace::{ActiveTrace, NoopTraceSink, RequestTrace, TraceSampler, TraceSink};
