//! The event loop: a single reactor thread multiplexing every connection
//! through one [`Poller`], plus a worker pool handling requests off a
//! channel.
//!
//! # Tick anatomy
//!
//! Each loop tick: wait for readiness (bounded by the nearest admission
//! deadline) → drain the waker pipe → apply worker completions → shed or
//! dispatch from the admission queue → accept (bounded by
//! [`EventConfig::accept_budget`]) → per-connection reads (bounded by
//! [`EventConfig::read_budget`], parsing pipelined requests as they
//! complete) → per-connection writes (bounded by
//! [`EventConfig::write_budget`]). Level-triggered epoll makes the budgets
//! safe: readiness left on the table is simply reported again next tick,
//! so one slow or floody client costs everyone at most a bounded slice of
//! each tick, never the loop.
//!
//! # Admission control
//!
//! Parsed requests enter a FIFO admission queue rather than going straight
//! to the workers. At most [`EventConfig::max_inflight`] requests are with
//! the workers at once; the rest wait, and any request that waits longer
//! than [`EventConfig::queue_deadline`] is shed with
//! `503 Service Unavailable` + `Retry-After` (connection kept alive, so a
//! backing-off client reuses its socket). Overload therefore degrades into
//! fast explicit rejections with bounded memory — never an unbounded queue
//! or a hung accept backlog.
//!
//! # Ordering
//!
//! Workers complete in any order; [`crate::conn::Conn`] re-orders
//! responses by per-connection sequence number before they reach the
//! socket, which is what makes pipelining safe.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel;

use crate::conn::Conn;
use crate::http1::{self, Handler, Request, Response};
use crate::stats::NetStats;
use crate::sys::{Interest, Poller};
use crate::trace::{ActiveTrace, TraceSink};

/// Token for the listening socket.
const LISTENER: u64 = 0;
/// Token for the waker pipe's read end.
const WAKER: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN: u64 = 2;

/// Tuning knobs for the reactor. [`EventConfig::default`] is sized for
/// the CI box; every field exists to bound something.
#[derive(Debug, Clone)]
pub struct EventConfig {
    /// Worker threads handling requests.
    pub workers: usize,
    /// Max requests dispatched to workers at once; beyond this, requests
    /// wait in the admission queue.
    pub max_inflight: usize,
    /// Max time a request may wait in the admission queue before being
    /// shed with `503`.
    pub queue_deadline: Duration,
    /// `Retry-After` seconds advertised on shed responses.
    pub retry_after_secs: u32,
    /// Max connections accepted per tick.
    pub accept_budget: usize,
    /// Max bytes read from one connection per tick.
    pub read_budget: usize,
    /// Max bytes written to one connection per tick.
    pub write_budget: usize,
    /// Max pipelined requests parsed-but-unanswered per connection;
    /// beyond this the connection's reads pause (kernel backpressure).
    pub max_pipeline: usize,
}

impl Default for EventConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_inflight: 256,
            queue_deadline: Duration::from_millis(500),
            retry_after_secs: 1,
            accept_budget: 128,
            read_budget: 64 * 1024,
            write_budget: 64 * 1024,
            max_pipeline: 64,
        }
    }
}

/// A running reactor: loop thread + worker pool, stoppable.
pub struct EventHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: UnixStream,
    loop_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl EventHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the loop, drains in-flight work, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = (&self.waker).write(&[1]);
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for EventHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A request travelling to the workers and its routing info back.
struct Job {
    token: u64,
    seq: u64,
    keep_alive: bool,
    request: Request,
    trace: ActiveTrace,
    /// When the reactor handed the job to the worker channel (the
    /// `dispatch` span runs from here to worker pickup).
    dispatched: Instant,
}

/// A worker's finished response.
struct Completion {
    token: u64,
    seq: u64,
    keep_alive: bool,
    response: Response,
    trace: ActiveTrace,
    /// When the handler returned (the `write` span starts here).
    finished_at: Instant,
}

/// A parsed request waiting for a worker slot.
struct Queued {
    token: u64,
    seq: u64,
    keep_alive: bool,
    request: Request,
    trace: ActiveTrace,
    enqueued: Instant,
}

/// A request whose response is (or is about to be) in the write buffer;
/// its trace finalizes once the buffer drains past its sequence number.
struct PendingFinish {
    seq: u64,
    trace: ActiveTrace,
    write_start: Instant,
}

/// Binds `addr` and serves `handler` on the event reactor until
/// [`EventHandle::shutdown`]. `stats` is scraped by the caller (the
/// server's `/metrics` endpoint); `queue_depth` mirrors the admission
/// queue length (pending-dispatch count); `sink` receives every
/// finished [`crate::trace::RequestTrace`] — including sheds and parse
/// rejections — once the response's last byte is flushed.
///
/// # Errors
///
/// Propagates bind/epoll setup failure; on non-Linux platforms, fails
/// with [`io::ErrorKind::Unsupported`].
pub fn serve_event<H: Handler>(
    addr: impl ToSocketAddrs,
    config: EventConfig,
    handler: Arc<H>,
    stats: Arc<NetStats>,
    queue_depth: Arc<AtomicU64>,
    sink: Arc<dyn TraceSink>,
) -> io::Result<EventHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;

    let poller = Poller::new()?;
    poller.add(listener.as_raw_fd(), LISTENER, Interest::READ)?;

    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    poller.add(wake_rx.as_raw_fd(), WAKER, Interest::READ)?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let (job_tx, job_rx) = channel::unbounded::<Job>();
    let (done_tx, done_rx) = channel::unbounded::<Completion>();

    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let job_rx = job_rx.clone();
        let done_tx = done_tx.clone();
        let handler = Arc::clone(&handler);
        let waker = wake_tx.try_clone()?;
        workers.push(
            std::thread::Builder::new()
                .name(format!("vs-net-worker-{i}"))
                .spawn(move || {
                    // recv() errors once the loop drops the sender — exit.
                    while let Ok(job) = job_rx.recv() {
                        job.trace.record("dispatch", job.dispatched);
                        let handler_start = Instant::now();
                        let mut response = handler.handle_traced(&job.request, &job.trace);
                        job.trace.record("handler", handler_start);
                        job.trace.set_status(response.status);
                        response.request_id = Some(job.trace.id());
                        let _ = done_tx.send(Completion {
                            token: job.token,
                            seq: job.seq,
                            keep_alive: job.keep_alive,
                            response,
                            trace: job.trace,
                            finished_at: Instant::now(),
                        });
                        // Nonblocking wake; a full pipe still wakes the loop.
                        let _ = (&waker).write(&[1]);
                    }
                })?,
        );
    }
    drop(job_rx);
    drop(done_tx);

    let loop_shutdown = Arc::clone(&shutdown);
    let loop_thread = std::thread::Builder::new()
        .name("vs-net-loop".into())
        .spawn(move || {
            let mut reactor = Reactor {
                listener,
                poller,
                wake_rx,
                conns: HashMap::new(),
                next_token: FIRST_CONN,
                admission: VecDeque::new(),
                inflight: 0,
                config,
                stats,
                queue_depth,
                job_tx,
                done_rx,
                sink,
            };
            reactor.run(&loop_shutdown);
        })?;

    Ok(EventHandle {
        addr: local,
        shutdown,
        waker: wake_tx,
        loop_thread: Some(loop_thread),
        workers,
    })
}

/// One connection plus the interest set currently registered for it,
/// cached to skip redundant `epoll_ctl` calls.
struct Entry {
    conn: Conn,
    interest: Interest,
    /// When the first unparsed byte of the in-progress request arrived;
    /// the next parsed request's trace (and its `parse` span) starts
    /// here. `None` while the read buffer holds no request prefix.
    first_byte: Option<Instant>,
    /// Traces awaiting last-byte-flushed finalization, in seq order.
    finalizing: Vec<PendingFinish>,
}

struct Reactor {
    listener: TcpListener,
    poller: Poller,
    wake_rx: UnixStream,
    conns: HashMap<u64, Entry>,
    next_token: u64,
    admission: VecDeque<Queued>,
    /// Requests currently with the workers.
    inflight: usize,
    config: EventConfig,
    stats: Arc<NetStats>,
    /// Mirrors `admission.len()` for the Prometheus gauge.
    queue_depth: Arc<AtomicU64>,
    job_tx: channel::Sender<Job>,
    done_rx: channel::Receiver<Completion>,
    /// Receives every finished request trace.
    sink: Arc<dyn TraceSink>,
}

impl Reactor {
    fn run(&mut self, shutdown: &AtomicBool) {
        let mut events = Vec::new();
        while !shutdown.load(Ordering::SeqCst) {
            events.clear();
            if self.poller.wait(self.timeout_ms(), &mut events).is_err() {
                break; // epoll itself failed; nothing recoverable
            }
            let tick_start = Instant::now();
            let mut busy = false;

            for event in events.clone() {
                match event.token {
                    LISTENER => busy |= self.accept_burst(),
                    WAKER => self.drain_waker(),
                    token => {
                        if event.error {
                            self.close(token);
                            busy = true;
                            continue;
                        }
                        if event.readable {
                            busy |= self.readable(token);
                        }
                        if event.writable {
                            busy |= self.writable(token);
                        }
                    }
                }
            }
            busy |= self.apply_completions();
            busy |= self.shed_and_dispatch();
            self.publish_queue_depth();

            if busy {
                let us = u64::try_from(tick_start.elapsed().as_micros()).unwrap_or(u64::MAX);
                self.stats.record_tick(us);
            }
        }
        // Dropping `job_tx` (with self) retires the workers; the handle
        // joins them after the loop thread exits.
    }

    /// Epoll timeout: the nearest admission deadline, else a 200 ms
    /// heartbeat (shed checks and shutdown polling need an upper bound).
    fn timeout_ms(&self) -> i32 {
        let heartbeat = 200u128;
        let ms = match self.admission.front() {
            Some(q) => {
                let waited = q.enqueued.elapsed();
                self.config
                    .queue_deadline
                    .saturating_sub(waited)
                    .as_millis()
                    .min(heartbeat)
            }
            None => heartbeat,
        };
        i32::try_from(ms).unwrap_or(200)
    }

    fn publish_queue_depth(&self) {
        self.queue_depth
            .store(self.admission.len() as u64, Ordering::Relaxed);
    }

    /// Accepts up to `accept_budget` connections.
    fn accept_burst(&mut self) -> bool {
        let mut accepted_any = false;
        for _ in 0..self.config.accept_budget {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue; // kernel refused; drop the socket
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Entry {
                            conn: Conn::new(stream),
                            interest: Interest::READ,
                            first_byte: None,
                            finalizing: Vec::new(),
                        },
                    );
                    self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    self.stats.active.fetch_add(1, Ordering::Relaxed);
                    accepted_any = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break, // transient (EMFILE etc.); retry next tick
            }
        }
        accepted_any
    }

    fn drain_waker(&mut self) {
        let mut sink = [0u8; 256];
        while let Ok(n) = (&self.wake_rx).read(&mut sink) {
            if n < sink.len() {
                break;
            }
        }
    }

    /// Reads from `token` under the tick budget and parses what arrived.
    fn readable(&mut self, token: u64) -> bool {
        let Some(entry) = self.conns.get_mut(&token) else {
            return false;
        };
        if entry.conn.closing || entry.conn.inflight >= self.config.max_pipeline {
            return false;
        }
        let mut budget = self.config.read_budget;
        let mut chunk = [0u8; 8192];
        let mut did_read = false;
        let mut saw_wouldblock = false;
        loop {
            if budget == 0 {
                break;
            }
            let want = budget.min(chunk.len());
            let result = match chunk.get_mut(..want) {
                Some(dst) => entry.conn.stream.read(dst),
                None => entry.conn.stream.read(&mut chunk),
            };
            match result {
                Ok(0) => {
                    // Peer half-closed: no more requests will arrive.
                    // Finish what is queued, then drop the connection.
                    entry.conn.closing = true;
                    break;
                }
                Ok(n) => {
                    did_read = true;
                    budget = budget.saturating_sub(n);
                    if entry.first_byte.is_none() {
                        entry.first_byte = Some(Instant::now());
                    }
                    entry
                        .conn
                        .read_buf
                        .extend_from_slice(chunk.get(..n).unwrap_or_default());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    saw_wouldblock = true;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(token);
                    return true;
                }
            }
        }
        let parsed_any = self.parse_conn(token);
        if let Some(entry) = self.conns.get_mut(&token) {
            if saw_wouldblock && !entry.conn.read_buf.is_empty() {
                // Socket drained mid-request: the request is split across
                // reads and the loop will resume it when more bytes land.
                self.stats.read_stalls.fetch_add(1, Ordering::Relaxed);
            }
            if entry.conn.finished() {
                self.close(token);
            } else {
                self.update_interest(token);
            }
        }
        did_read || parsed_any
    }

    /// Parses every complete pipelined request sitting in `token`'s read
    /// buffer (up to `max_pipeline`) into the admission queue.
    fn parse_conn(&mut self, token: u64) -> bool {
        let mut parsed_any = false;
        loop {
            let Some(entry) = self.conns.get_mut(&token) else {
                return parsed_any;
            };
            if entry.conn.closing
                || entry.conn.inflight >= self.config.max_pipeline
                || entry.conn.read_buf.is_empty()
            {
                return parsed_any;
            }
            match http1::parse_request(&entry.conn.read_buf) {
                Ok(Some(parsed)) => {
                    entry.conn.read_buf.drain(..parsed.consumed);
                    let started = entry.first_byte.take().unwrap_or_else(Instant::now);
                    if !entry.conn.read_buf.is_empty() {
                        // A pipelined successor's bytes are already here;
                        // its parse clock starts now, not at this
                        // request's first byte.
                        entry.first_byte = Some(Instant::now());
                    }
                    let trace = ActiveTrace::start(
                        parsed.request.header("x-request-id"),
                        &parsed.request.method,
                        &parsed.request.path,
                        started,
                    );
                    trace.record("parse", started);
                    let seq = entry.conn.assign_seq();
                    self.admission.push_back(Queued {
                        token,
                        seq,
                        keep_alive: parsed.keep_alive,
                        request: parsed.request,
                        trace,
                        enqueued: Instant::now(),
                    });
                    parsed_any = true;
                }
                Ok(None) => return parsed_any,
                Err(e) => {
                    // The byte stream is unrecoverable: answer in order
                    // (after any pipelined predecessors) and close. The
                    // rejection is traced too — 400/431/413 responses
                    // carry a request id and reach the sink's logs.
                    let started = entry.first_byte.take().unwrap_or_else(Instant::now);
                    let trace = ActiveTrace::start(None, "-", "-", started);
                    trace.record("parse", started);
                    trace.set_status(e.status());
                    let mut response = e.to_response();
                    response.request_id = Some(trace.id());
                    let seq = entry.conn.assign_seq();
                    entry.conn.complete(seq, response, false);
                    entry.conn.closing = true;
                    entry.finalizing.push(PendingFinish {
                        seq,
                        trace,
                        write_start: Instant::now(),
                    });
                    return true;
                }
            }
        }
    }

    /// Writes buffered response bytes under the tick budget.
    fn writable(&mut self, token: u64) -> bool {
        let Some(entry) = self.conns.get_mut(&token) else {
            return false;
        };
        let mut budget = self.config.write_budget;
        let mut wrote = false;
        loop {
            if entry.conn.pending().is_empty() || budget == 0 {
                break;
            }
            match entry.conn.write_some(budget) {
                Ok(0) => {
                    self.close(token);
                    return true;
                }
                Ok(n) => {
                    wrote = true;
                    budget = budget.saturating_sub(n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.stats.write_stalls.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Early client disconnect mid-response (EPIPE/reset):
                    // discard the connection, never the loop.
                    self.close(token);
                    return true;
                }
            }
        }
        if entry.conn.wants_write() && budget == 0 {
            self.stats.write_stalls.fetch_add(1, Ordering::Relaxed);
        }
        self.finalize_flushed(token);
        let finished = self.conns.get(&token).is_some_and(|e| e.conn.finished());
        if finished {
            self.close(token);
        } else {
            self.update_interest(token);
        }
        wrote
    }

    /// Finalizes every trace whose response bytes have fully reached the
    /// socket: the in-order flush cursor has passed its sequence number
    /// and the write buffer is drained. The `write` span runs from
    /// handler completion (or shed/reject decision) to this moment.
    fn finalize_flushed(&mut self, token: u64) {
        let sink = Arc::clone(&self.sink);
        let Some(entry) = self.conns.get_mut(&token) else {
            return;
        };
        if entry.conn.wants_write() || entry.finalizing.is_empty() {
            return;
        }
        let flushed = entry.conn.flushed_seq();
        let mut index = 0;
        while index < entry.finalizing.len() {
            if entry.finalizing.get(index).is_some_and(|p| p.seq < flushed) {
                let p = entry.finalizing.remove(index);
                p.trace.record("write", p.write_start);
                sink.record(p.trace.finish());
            } else {
                index += 1;
            }
        }
    }

    /// Applies every completion the workers produced, re-parsing any
    /// connection whose pipeline slot freed up.
    fn apply_completions(&mut self) -> bool {
        let mut any = false;
        while let Ok(done) = self.done_rx.try_recv() {
            any = true;
            self.inflight = self.inflight.saturating_sub(1);
            let Some(entry) = self.conns.get_mut(&done.token) else {
                continue; // connection died while the worker ran
            };
            entry
                .conn
                .complete(done.seq, done.response, done.keep_alive);
            entry.finalizing.push(PendingFinish {
                seq: done.seq,
                trace: done.trace,
                write_start: done.finished_at,
            });
            // A freed pipeline slot may unblock buffered requests.
            self.parse_conn(done.token);
            // Flush eagerly: most responses fit the socket buffer, so this
            // saves a tick of latency over waiting for EPOLLOUT.
            self.writable(done.token);
            if let Some(_entry) = self.conns.get_mut(&done.token) {
                self.update_interest(done.token);
            }
        }
        any
    }

    /// Sheds expired queue entries, then dispatches while worker slots
    /// remain.
    fn shed_and_dispatch(&mut self) -> bool {
        let mut any = false;
        // FIFO queue: the front is always the oldest entry.
        while let Some(front) = self.admission.front() {
            if front.enqueued.elapsed() < self.config.queue_deadline {
                break;
            }
            let Some(q) = self.admission.pop_front() else {
                break;
            };
            any = true;
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            let retry = self.config.retry_after_secs;
            if let Some(entry) = self.conns.get_mut(&q.token) {
                q.trace.record("queue_wait", q.enqueued);
                q.trace.mark_shed();
                q.trace.set_status(503);
                let mut response = Response::unavailable(retry);
                response.request_id = Some(q.trace.id());
                // Shed keeps the connection: a backing-off client reuses
                // its socket after Retry-After.
                entry.conn.complete(q.seq, response, q.keep_alive);
                entry.finalizing.push(PendingFinish {
                    seq: q.seq,
                    trace: q.trace,
                    write_start: Instant::now(),
                });
                self.writable(q.token);
            }
        }
        while self.inflight < self.config.max_inflight {
            let Some(q) = self.admission.pop_front() else {
                break;
            };
            any = true;
            if !self.conns.contains_key(&q.token) {
                continue; // connection died while queued
            }
            q.trace.record("queue_wait", q.enqueued);
            if self
                .job_tx
                .send(Job {
                    token: q.token,
                    seq: q.seq,
                    keep_alive: q.keep_alive,
                    request: q.request,
                    trace: q.trace,
                    dispatched: Instant::now(),
                })
                .is_ok()
            {
                self.inflight += 1;
            }
        }
        any
    }

    /// Syncs the registered interest set with what the connection wants.
    fn update_interest(&mut self, token: u64) {
        let Some(entry) = self.conns.get_mut(&token) else {
            return;
        };
        let want = Interest {
            // Pause reads while closing or while the pipeline cap is hit;
            // level-triggered epoll would otherwise spin on readability.
            readable: !entry.conn.closing && entry.conn.inflight < self.config.max_pipeline,
            writable: entry.conn.wants_write(),
        };
        if want != entry.interest {
            let fd = entry.conn.stream.as_raw_fd();
            if self.poller.modify(fd, token, want).is_ok() {
                entry.interest = want;
            }
        }
    }

    /// Deregisters and drops a connection, finalizing any traces still
    /// waiting on a flush (their `write` span ends at the close — the
    /// honest duration when the peer vanished mid-response).
    fn close(&mut self, token: u64) {
        if let Some(entry) = self.conns.remove(&token) {
            let _ = self.poller.remove(entry.conn.stream.as_raw_fd());
            self.stats.active.fetch_sub(1, Ordering::Relaxed);
            for p in entry.finalizing {
                p.trace.record("write", p.write_start);
                self.sink.record(p.trace.finish());
            }
        }
    }
}

#[cfg(test)]
#[cfg(target_os = "linux")]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    /// Echoes the path; sleeps when the path asks for it, so tests can
    /// force out-of-order completion.
    struct Echo;
    impl Handler for Echo {
        fn handle(&self, request: &Request) -> Response {
            if let Some(ms) = request.query_param("sleep_ms") {
                std::thread::sleep(Duration::from_millis(ms.parse().unwrap_or(0)));
            }
            Response::json(format!("{{\"path\": {:?}}}", request.path))
        }
    }

    /// Captures every finalized trace for assertions.
    #[derive(Debug, Default)]
    struct CaptureSink {
        traces: std::sync::Mutex<Vec<crate::trace::RequestTrace>>,
    }

    impl TraceSink for CaptureSink {
        fn record(&self, trace: crate::trace::RequestTrace) {
            self.traces.lock().unwrap().push(trace);
        }
    }

    impl CaptureSink {
        fn take(&self) -> Vec<crate::trace::RequestTrace> {
            self.traces.lock().unwrap().clone()
        }

        fn wait_for(&self, count: usize) -> Vec<crate::trace::RequestTrace> {
            let deadline = Instant::now() + Duration::from_secs(2);
            while self.take().len() < count && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            self.take()
        }
    }

    fn start(config: EventConfig) -> (EventHandle, Arc<NetStats>, Arc<CaptureSink>) {
        let stats = Arc::new(NetStats::new());
        let depth = Arc::new(AtomicU64::new(0));
        let sink = Arc::new(CaptureSink::default());
        let handle = serve_event(
            "127.0.0.1:0",
            config,
            Arc::new(Echo),
            Arc::clone(&stats),
            depth,
            Arc::clone(&sink) as Arc<dyn TraceSink>,
        )
        .unwrap();
        (handle, stats, sink)
    }

    fn read_one_response(reader: &mut BufReader<TcpStream>) -> (u16, String, Vec<String>) {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let status: u16 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            reader.read_line(&mut h).unwrap();
            let h = h.trim_end().to_owned();
            if h.is_empty() {
                break;
            }
            if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
            headers.push(h);
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap(), headers)
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_socket() {
        let (handle, stats, _) = start(EventConfig::default());
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..3 {
            (&stream)
                .write_all(format!("GET /r{i} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap();
            let (status, body, headers) = read_one_response(&mut reader);
            assert_eq!(status, 200);
            assert!(body.contains(&format!("/r{i}")), "{body}");
            assert!(
                headers.iter().any(|h| h == "Connection: keep-alive"),
                "{headers:?}"
            );
        }
        drop(stream);
        assert_eq!(
            NetStats::get(&stats.accepted),
            1,
            "one socket, three requests"
        );
        handle.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order_despite_slow_first() {
        let (handle, _, _) = start(EventConfig::default());
        let stream = TcpStream::connect(handle.addr()).unwrap();
        // First request sleeps; the second would finish first without
        // reordering.
        (&stream)
            .write_all(
                b"GET /slow?sleep_ms=150 HTTP/1.1\r\nHost: x\r\n\r\nGET /fast HTTP/1.1\r\nHost: x\r\n\r\n",
            )
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (_, first, _) = read_one_response(&mut reader);
        let (_, second, _) = read_one_response(&mut reader);
        assert!(first.contains("/slow"), "{first}");
        assert!(second.contains("/fast"), "{second}");
        handle.shutdown();
    }

    #[test]
    fn byte_at_a_time_request_completes() {
        let (handle, _, _) = start(EventConfig::default());
        let stream = TcpStream::connect(handle.addr()).unwrap();
        for &b in b"GET /dribble HTTP/1.1\r\nHost: x\r\n\r\n" {
            (&stream).write_all(&[b]).unwrap();
            (&stream).flush().unwrap();
        }
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, body, _) = read_one_response(&mut reader);
        assert_eq!(status, 200);
        assert!(body.contains("/dribble"), "{body}");
        handle.shutdown();
    }

    #[test]
    fn connection_close_is_honored_and_socket_ends() {
        let (handle, _, _) = start(EventConfig::default());
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .write_all(b"GET /bye HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap(); // EOF proves close
        assert!(out.contains("Connection: close"), "{out}");
        assert!(out.contains("/bye"), "{out}");
        handle.shutdown();
    }

    #[test]
    fn overload_sheds_503_with_retry_after_and_keeps_the_connection() {
        let config = EventConfig {
            workers: 1,
            max_inflight: 1,
            queue_deadline: Duration::from_millis(50),
            ..EventConfig::default()
        };
        let (handle, stats, _) = start(config);
        // One slow request occupies the only worker slot...
        let blocker = TcpStream::connect(handle.addr()).unwrap();
        (&blocker)
            .write_all(b"GET /block?sleep_ms=600 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // ...so this one exceeds the queue deadline and gets shed.
        let victim = TcpStream::connect(handle.addr()).unwrap();
        (&victim)
            .write_all(b"GET /shed HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut reader = BufReader::new(victim.try_clone().unwrap());
        let (status, body, headers) = read_one_response(&mut reader);
        assert_eq!(status, 503, "{body}");
        assert!(
            headers.iter().any(|h| h.starts_with("Retry-After:")),
            "{headers:?}"
        );
        assert!(
            headers.iter().any(|h| h == "Connection: keep-alive"),
            "shed must not burn the socket: {headers:?}"
        );
        assert!(NetStats::get(&stats.shed) >= 1);
        // The shed connection still works once load clears.
        let mut blocker_reader = BufReader::new(blocker.try_clone().unwrap());
        let (status, _, _) = read_one_response(&mut blocker_reader);
        assert_eq!(status, 200);
        (&victim)
            .write_all(b"GET /after HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let (status, body, _) = read_one_response(&mut reader);
        assert_eq!(status, 200);
        assert!(body.contains("/after"), "{body}");
        handle.shutdown();
    }

    #[test]
    fn oversized_headers_get_431_and_close() {
        let (handle, _, _) = start(EventConfig::default());
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut raw = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', http1::MAX_HEADER_BYTES + 10));
        raw.extend_from_slice(b"\r\n\r\n");
        stream.write_all(&raw).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 431"), "{out}");
        assert!(out.contains("Connection: close"), "{out}");
        handle.shutdown();
    }

    #[test]
    fn early_disconnect_mid_response_is_survived() {
        let (handle, stats, _) = start(EventConfig::default());
        for _ in 0..5 {
            let stream = TcpStream::connect(handle.addr()).unwrap();
            (&stream)
                .write_all(b"GET /gone?sleep_ms=30 HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            drop(stream); // gone before the worker answers
        }
        // The loop must still serve a healthy client afterwards.
        std::thread::sleep(Duration::from_millis(120));
        let stream = TcpStream::connect(handle.addr()).unwrap();
        (&stream)
            .write_all(b"GET /alive HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, body, _) = read_one_response(&mut reader);
        assert_eq!(status, 200);
        assert!(body.contains("/alive"), "{body}");
        assert_eq!(NetStats::get(&stats.accepted), 6);
        // All five dead connections were reaped.
        let deadline = Instant::now() + Duration::from_secs(2);
        while NetStats::get(&stats.active) > 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(NetStats::get(&stats.active) <= 1);
        handle.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_with_open_connections() {
        let (handle, _, _) = start(EventConfig::default());
        let _idle = TcpStream::connect(handle.addr()).unwrap();
        handle.shutdown();
    }

    #[test]
    fn requests_are_traced_end_to_end_with_id_echo() {
        let (handle, _, sink) = start(EventConfig::default());
        let stream = TcpStream::connect(handle.addr()).unwrap();
        (&stream)
            .write_all(b"GET /traced HTTP/1.1\r\nX-Request-Id: my-id-1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, _, headers) = read_one_response(&mut reader);
        assert_eq!(status, 200);
        assert!(
            headers.iter().any(|h| h == "X-Request-Id: my-id-1"),
            "honored id must echo: {headers:?}"
        );
        let traces = sink.wait_for(1);
        let trace = traces.first().expect("one finalized trace");
        assert_eq!(trace.id, "my-id-1");
        assert_eq!(
            (trace.method.as_str(), trace.path.as_str()),
            ("GET", "/traced")
        );
        assert_eq!(trace.status, 200);
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name).collect();
        for stage in ["parse", "queue_wait", "dispatch", "handler", "write"] {
            assert!(names.contains(&stage), "missing {stage}: {names:?}");
        }
        assert!(
            trace.stage_sum_us() <= trace.total_us,
            "stages {} cannot exceed wall {}",
            trace.stage_sum_us(),
            trace.total_us
        );
        handle.shutdown();
    }

    #[test]
    fn shed_and_parse_reject_traces_reach_the_sink() {
        let config = EventConfig {
            workers: 1,
            max_inflight: 1,
            queue_deadline: Duration::from_millis(50),
            ..EventConfig::default()
        };
        let (handle, _, sink) = start(config);
        let blocker = TcpStream::connect(handle.addr()).unwrap();
        (&blocker)
            .write_all(b"GET /block?sleep_ms=400 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let victim = TcpStream::connect(handle.addr()).unwrap();
        (&victim)
            .write_all(b"GET /shed HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut reader = BufReader::new(victim.try_clone().unwrap());
        let (status, _, headers) = read_one_response(&mut reader);
        assert_eq!(status, 503);
        assert!(
            headers.iter().any(|h| h.starts_with("X-Request-Id: ")),
            "shed responses carry an id: {headers:?}"
        );
        let mut garbage = TcpStream::connect(handle.addr()).unwrap();
        garbage.write_all(b"garbage\r\n\r\n").unwrap();
        let mut out = String::new();
        garbage.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        assert!(out.contains("X-Request-Id: "), "{out}");

        // Sink sees: the shed (503, shed flag, queue_wait span) and the
        // reject (400, parse span) — plus the blocker once it flushes.
        let traces = sink.wait_for(2);
        let shed = traces.iter().find(|t| t.shed).expect("shed trace recorded");
        assert_eq!(shed.status, 503);
        assert!(shed.spans.iter().any(|s| s.name == "queue_wait"));
        let reject = traces
            .iter()
            .find(|t| t.status == 400)
            .expect("parse-reject trace recorded");
        assert!(reject.spans.iter().any(|s| s.name == "parse"));
        assert_eq!(reject.route_label(), "rejected");
        handle.shutdown();
    }
}
