//! Shared counters behind the `viewseeker_net_*` Prometheus series.
//!
//! The reactor increments these; `viewseeker-server`'s exporter scrapes
//! them. Everything is lock-free atomics, including the loop-tick
//! histogram: the loop records it once per tick, and a mutex shared with
//! the scrape thread there would let a slow scrape stall every
//! connection at once (the `blocking-in-reactor` vslint rule enforces
//! this).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::{AtomicHistogram, Histogram};

/// Counters and gauges for one reactor instance.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections accepted, total (`viewseeker_net_accepted_total`).
    pub accepted: AtomicU64,
    /// Requests shed with `503` by admission control, total
    /// (`viewseeker_net_shed_total`).
    pub shed: AtomicU64,
    /// Currently open connections (`viewseeker_net_active_connections`).
    pub active: AtomicU64,
    /// Reads that drained the socket without completing a request, total
    /// (`viewseeker_net_read_stalls_total`).
    pub read_stalls: AtomicU64,
    /// Writes cut short by `EWOULDBLOCK` or the per-tick budget, total
    /// (`viewseeker_net_write_stalls_total`).
    pub write_stalls: AtomicU64,
    /// Busy loop-tick durations (`viewseeker_net_loop_tick_seconds`).
    ticks: AtomicHistogram,
}

impl NetStats {
    /// Fresh, all-zero stats.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one busy loop tick of `us` microseconds. Lock-free: this
    /// runs on the reactor's tick path.
    pub fn record_tick(&self, us: u64) {
        self.ticks.record(us);
    }

    /// A snapshot of the loop-tick histogram.
    #[must_use]
    pub fn tick_histogram(&self) -> Histogram {
        self.ticks.snapshot()
    }

    /// Convenience relaxed read of a counter field.
    #[must_use]
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_accumulate_and_snapshot() {
        let stats = NetStats::new();
        stats.record_tick(120);
        stats.record_tick(880);
        let h = stats.tick_histogram();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_us(), 1000);
        assert_eq!(h.max_us(), 880);
    }

    #[test]
    fn counters_start_at_zero() {
        let stats = NetStats::new();
        assert_eq!(NetStats::get(&stats.accepted), 0);
        assert_eq!(NetStats::get(&stats.shed), 0);
        assert_eq!(NetStats::get(&stats.active), 0);
    }
}
