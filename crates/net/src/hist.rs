//! Log-linear bucketed latency histograms (HDR-style).
//!
//! Lives in `viewseeker-net` so the reactor (loop-tick timing), the
//! server's per-route metrics (via the `viewseeker-server::hist`
//! re-export), and `viewseeker-loadgen` (client-side latencies) all share
//! one mergeable layout.
//!
//! Values are microseconds. The bucket layout is *fixed* — derived from the
//! value's binary magnitude, never from the data — so two histograms (e.g.
//! one per worker thread, or scrapes of the same route over time) merge by
//! element-wise addition, with no global sort and no re-bucketing:
//!
//! * values `0..8` get unit-width buckets (`[0,1), [1,2), … [7,8)`);
//! * every octave `[2^m, 2^(m+1))` for `m ≥ 3` is split into 8 linear
//!   sub-buckets of width `2^(m-3)`.
//!
//! A bucket's width is at most 1/8 of its lower bound, so any quantile read
//! from the histogram is within 12.5% (one bucket width) of the exact
//! sample quantile — tight enough for latency SLOs, at 496 fixed `u64`
//! counters per route instead of an unbounded sample reservoir. The exact
//! `count`, `sum`, and `max` are tracked alongside the buckets, so rates
//! and averages stay precise; only quantiles are approximated.

/// Unit-width buckets before the log-linear region starts.
const LINEAR_CUTOFF: u64 = 8;

/// Sub-buckets per power-of-two octave.
const SUBBUCKETS: usize = 8;

/// Total buckets: 8 unit buckets + 8 sub-buckets for each of the 61
/// octaves `2^3..2^63`, covering the full `u64` range.
pub const BUCKETS: usize = LINEAR_CUTOFF as usize + (64 - 3) * SUBBUCKETS;

/// Bucket index for a microsecond value. Total order: `v < w` implies
/// `bucket_index(v) <= bucket_index(w)`.
#[must_use]
pub fn bucket_index(us: u64) -> usize {
    if us < LINEAR_CUTOFF {
        return us as usize;
    }
    let magnitude = 63 - us.leading_zeros() as usize; // >= 3 here
    let sub = ((us >> (magnitude - 3)) - LINEAR_CUTOFF) as usize;
    LINEAR_CUTOFF as usize + (magnitude - 3) * SUBBUCKETS + sub
}

/// The `[lo, hi)` microsecond range of bucket `index`.
///
/// # Panics
///
/// If `index >= BUCKETS`.
#[must_use]
pub fn bucket_range(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    if index < LINEAR_CUTOFF as usize {
        return (index as u64, index as u64 + 1);
    }
    let magnitude = (index - LINEAR_CUTOFF as usize) / SUBBUCKETS + 3;
    let sub = ((index - LINEAR_CUTOFF as usize) % SUBBUCKETS) as u64;
    let width = 1u64 << (magnitude - 3);
    let lo = (LINEAR_CUTOFF + sub) << (magnitude - 3);
    (lo, lo.saturating_add(width))
}

/// A mergeable latency histogram over microsecond observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, us: u64) {
        if let Some(slot) = self.counts.get_mut(bucket_index(us)) {
            *slot += 1;
        }
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Adds every observation of `other` into `self`. The fixed layout
    /// makes this an element-wise sum — the property that lets per-thread
    /// or per-scrape histograms aggregate without a global sort.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Observations recorded (exact).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, microseconds (exact, saturating).
    #[must_use]
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Largest observation, microseconds (exact).
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The nearest-rank `q`-quantile (`q` in `[0, 1]`), reported as the
    /// inclusive upper bound of the bucket holding that rank (clamped to
    /// the exact max) — within one bucket width (≤ 12.5%) above the exact
    /// sample quantile. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (bucket_range(index).1 - 1).min(self.max_us);
            }
        }
        self.max_us
    }

    /// `(inclusive upper bound µs, count)` for every non-empty bucket, in
    /// ascending bound order. Counts are per-bucket, not cumulative.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(index, &c)| (bucket_range(index).1 - 1, c))
            .collect()
    }
}

/// A lock-free variant of [`Histogram`] for writers that must never
/// block: the reactor records its loop-tick duration on the hot path,
/// where a mutex shared with the scrape thread would stall every
/// connection at once. Same fixed bucket layout; [`AtomicHistogram::snapshot`]
/// materializes a plain mergeable [`Histogram`].
///
/// All operations are `Relaxed`: a scrape racing a record may observe a
/// bucket increment before the matching `count` increment (or vice
/// versa), which is fine for metrics — successive scrapes converge.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: Vec<std::sync::atomic::AtomicU64>,
    count: std::sync::atomic::AtomicU64,
    sum_us: std::sync::atomic::AtomicU64,
    max_us: std::sync::atomic::AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: std::iter::repeat_with(std::sync::atomic::AtomicU64::default)
                .take(BUCKETS)
                .collect(),
            count: std::sync::atomic::AtomicU64::new(0),
            sum_us: std::sync::atomic::AtomicU64::new(0),
            max_us: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Records one observation without taking any lock.
    pub fn record(&self, us: u64) {
        use std::sync::atomic::Ordering::Relaxed;
        if let Some(slot) = self.counts.get(bucket_index(us)) {
            slot.fetch_add(1, Relaxed);
        }
        self.count.fetch_add(1, Relaxed);
        // Saturating add via CAS loop: latency sums can plausibly reach
        // u64::MAX over a long uptime and must not wrap.
        let mut cur = self.sum_us.load(Relaxed);
        loop {
            let next = cur.saturating_add(us);
            match self.sum_us.compare_exchange(cur, next, Relaxed, Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.max_us.fetch_max(us, Relaxed);
    }

    /// A point-in-time copy as a plain [`Histogram`].
    #[must_use]
    pub fn snapshot(&self) -> Histogram {
        use std::sync::atomic::Ordering::Relaxed;
        Histogram {
            counts: self.counts.iter().map(|c| c.load(Relaxed)).collect(),
            count: self.count.load(Relaxed),
            sum_us: self.sum_us.load(Relaxed),
            max_us: self.max_us.load(Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_exhaustive_and_ordered() {
        // Every bucket's range starts where the previous one ended.
        let mut expected_lo = 0;
        for index in 0..BUCKETS {
            let (lo, hi) = bucket_range(index);
            assert_eq!(lo, expected_lo, "bucket {index}");
            assert!(hi > lo, "bucket {index}");
            expected_lo = hi;
        }
    }

    #[test]
    fn values_land_in_their_own_bucket() {
        for us in (0..4096).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let (lo, hi) = bucket_range(bucket_index(us));
            // The topmost bucket's upper bound saturates at u64::MAX and is
            // treated as inclusive.
            assert!(
                lo <= us && (us < hi || hi == u64::MAX),
                "{us} not in [{lo},{hi})"
            );
        }
    }

    #[test]
    fn relative_error_is_at_most_one_eighth() {
        for us in 8u64..100_000 {
            let (lo, hi) = bucket_range(bucket_index(us));
            assert!((hi - lo) * 8 <= lo, "bucket [{lo},{hi}) too wide at {us}");
        }
    }

    #[test]
    fn quantiles_track_exact_within_a_bucket() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (1..=1000).map(|i| i * 13 % 5000).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5f64, 0.9, 0.99] {
            let exact = sorted[(((q * 1000.0).ceil() as usize).max(1) - 1).min(999)];
            let approx = h.quantile(q);
            assert!(approx >= exact, "q{q}: {approx} < exact {exact}");
            let (lo, hi) = bucket_range(bucket_index(exact));
            assert!(approx < hi || approx <= exact + (hi - lo), "q{q}");
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum_us(), values.iter().sum::<u64>());
        assert_eq!(h.max_us(), *sorted.last().unwrap());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in 0..500u64 {
            let v = v * 97 % 10_000;
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.nonzero_buckets(), Vec::new());
    }

    #[test]
    fn nonzero_buckets_cover_every_observation() {
        let mut h = Histogram::new();
        for v in [0, 3, 8, 100, 40_000] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<u64>(), 5);
        // Bounds ascend.
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }

    #[test]
    fn atomic_histogram_snapshot_matches_plain_recording() {
        let atomic = AtomicHistogram::new();
        let mut plain = Histogram::new();
        for v in [0, 3, 8, 100, 40_000, u64::MAX] {
            atomic.record(v);
            plain.record(v);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn atomic_histogram_is_consistent_under_concurrent_writers() {
        let atomic = AtomicHistogram::new();
        std::thread::scope(|scope| {
            for thread in 0..4u64 {
                let atomic = &atomic;
                scope.spawn(move || {
                    for n in 0..1000u64 {
                        atomic.record(n * 31 + thread);
                    }
                });
            }
        });
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), 4000);
        assert_eq!(
            snap.sum_us(),
            (0..4u64)
                .map(|t| (0..1000u64).map(|n| n * 31 + t).sum::<u64>())
                .sum()
        );
        assert_eq!(snap.max_us(), 999 * 31 + 3);
    }
}
