//! `viewseeker` — interactive terminal front-end for the ViewSeeker library.
//!
//! ```text
//! viewseeker generate --dataset diab --rows 20000 --out patients.csv
//! viewseeker views    --data patients.csv --query "a0=a0_v0"
//! viewseeker rank     --data patients.csv --query "a0=a0_v0" --utility "0.5*EMD + 0.5*KL" --k 10
//! viewseeker explore  --data patients.csv --query "a0=a0_v0" --k 5
//! viewseeker simulate --data patients.csv --query "a0=a0_v0" --ideal "0.3*EMD + 0.3*KL + 0.4*Accuracy"
//! ```
//!
//! `explore` runs the paper's interactive loop against a human: each
//! iteration renders the selected view as an ASCII target-vs-reference bar
//! chart, reads a 0–1 rating from stdin, and refreshes the personalized
//! top-k.
#![forbid(unsafe_code)]

mod chart;
mod cli;
mod commands;
mod parse;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::Command::parse(&args) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
