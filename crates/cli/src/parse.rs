//! Mini-languages for the CLI: query predicates and utility expressions.
//!
//! Queries (conjunction with `&`):
//!
//! ```text
//! a0=a0_v0                         equality on a categorical column
//! color in red|blue                membership
//! age:[20,65)                      numeric half-open range ([lo,) is open-ended)
//! a0=a0_v0 & age:[20,65)           conjunction
//! *                                select everything
//! ```
//!
//! Utility expressions (weighted sums over the 8 features):
//!
//! ```text
//! EMD
//! 0.5*EMD + 0.5*KL
//! 0.3*EMD + 0.3*KL + 0.4*Accuracy
//! ```

use viewseeker_core::{CompositeUtility, UtilityFeature};
use viewseeker_dataset::Predicate;

/// Parses the CLI query mini-language into a [`Predicate`].
///
/// # Errors
///
/// Returns a human-readable message for malformed input.
pub fn parse_query(input: &str) -> Result<Predicate, String> {
    let input = input.trim();
    if input.is_empty() || input == "*" {
        return Ok(Predicate::True);
    }
    // SQL WHERE syntax is tried first (its literals are unambiguous thanks
    // to quoting); the terser mini-language is the fallback.
    let sql = viewseeker_dataset::sql::parse_where(input);
    if let Ok(p) = sql {
        return Ok(p);
    }
    let mini = (|| {
        let conjuncts = input
            .split('&')
            .map(|term| parse_term(term.trim()))
            .collect::<Result<Vec<_>, String>>()?;
        Ok::<Predicate, String>(if conjuncts.len() == 1 {
            conjuncts.into_iter().next().expect("len checked")
        } else {
            Predicate::And(conjuncts)
        })
    })();
    mini.map_err(|mini_err| {
        let sql_err = sql.expect_err("checked above");
        format!("not a valid query (mini-language: {mini_err}; SQL: {sql_err})")
    })
}

fn parse_term(term: &str) -> Result<Predicate, String> {
    if term.is_empty() {
        return Err("empty query term".into());
    }
    // column in v1|v2|v3
    if let Some((column, values)) = term.split_once(" in ") {
        let values: Vec<String> = values
            .split('|')
            .map(|v| v.trim().to_owned())
            .filter(|v| !v.is_empty())
            .collect();
        if values.is_empty() {
            return Err(format!("no values in membership term {term:?}"));
        }
        return Ok(Predicate::is_in(column.trim(), values));
    }
    // column:[lo,hi)  — numeric range
    if let Some((column, range)) = term.split_once(":[") {
        let range = range
            .strip_suffix(')')
            .ok_or_else(|| format!("range {term:?} must end with ')'"))?;
        let (lo, hi) = range
            .split_once(',')
            .ok_or_else(|| format!("range {term:?} needs 'lo,hi'"))?;
        let lo: f64 = lo
            .trim()
            .parse()
            .map_err(|_| format!("bad lower bound in {term:?}"))?;
        let hi: f64 = if hi.trim().is_empty() {
            f64::INFINITY
        } else {
            hi.trim()
                .parse()
                .map_err(|_| format!("bad upper bound in {term:?}"))?
        };
        return Ok(Predicate::range(column.trim(), lo, hi));
    }
    // column=value
    if let Some((column, value)) = term.split_once('=') {
        return Ok(Predicate::eq(column.trim(), value.trim()));
    }
    Err(format!(
        "cannot parse query term {term:?} (expected col=value, col in a|b, or col:[lo,hi))"
    ))
}

/// Parses a feature name, case-insensitively, accepting the paper's spellings.
///
/// # Errors
///
/// Returns a message listing valid names for unknown input.
pub fn parse_feature(name: &str) -> Result<UtilityFeature, String> {
    match name.trim().to_ascii_lowercase().as_str() {
        "kl" | "kl-divergence" | "kld" => Ok(UtilityFeature::Kl),
        "emd" => Ok(UtilityFeature::Emd),
        "l1" => Ok(UtilityFeature::L1),
        "l2" => Ok(UtilityFeature::L2),
        "max_diff" | "maxdiff" | "max-diff" | "linf" => Ok(UtilityFeature::MaxDiff),
        "usability" => Ok(UtilityFeature::Usability),
        "accuracy" => Ok(UtilityFeature::Accuracy),
        "p-value" | "pvalue" | "p_value" => Ok(UtilityFeature::PValue),
        other => Err(format!(
            "unknown utility feature {other:?} (expected one of: KL, EMD, L1, L2, MAX_DIFF, Usability, Accuracy, p-value)"
        )),
    }
}

/// Parses a utility expression like `0.5*EMD + 0.5*KL` into a
/// [`CompositeUtility`]. A bare feature name means weight 1.
///
/// # Errors
///
/// Returns a human-readable message for malformed input.
pub fn parse_utility(input: &str) -> Result<CompositeUtility, String> {
    let mut terms = Vec::new();
    for raw in input.split('+') {
        let raw = raw.trim();
        if raw.is_empty() {
            return Err("empty term in utility expression".into());
        }
        let (weight, feature) = match raw.split_once('*') {
            Some((w, f)) => (
                w.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("bad weight in term {raw:?}"))?,
                f,
            ),
            None => (1.0, raw),
        };
        terms.push((parse_feature(feature)?, weight));
    }
    CompositeUtility::new(&terms).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_star_and_empty_as_true() {
        assert_eq!(parse_query("*").unwrap(), Predicate::True);
        assert_eq!(parse_query("  ").unwrap(), Predicate::True);
    }

    #[test]
    fn parses_equality() {
        assert_eq!(
            parse_query("a0=a0_v1").unwrap(),
            Predicate::eq("a0", "a0_v1")
        );
        // whitespace tolerated
        assert_eq!(
            parse_query(" color = red ").unwrap(),
            Predicate::eq("color", "red")
        );
    }

    #[test]
    fn parses_membership() {
        assert_eq!(
            parse_query("color in red|blue").unwrap(),
            Predicate::is_in("color", vec!["red".into(), "blue".into()])
        );
        assert!(parse_query("color in ").is_err());
    }

    #[test]
    fn parses_ranges() {
        assert_eq!(
            parse_query("age:[20,65)").unwrap(),
            Predicate::range("age", 20.0, 65.0)
        );
        assert_eq!(
            parse_query("age:[20,)").unwrap(),
            Predicate::range("age", 20.0, f64::INFINITY)
        );
        assert!(parse_query("age:[20,65]").is_err());
        assert!(parse_query("age:[x,65)").is_err());
    }

    #[test]
    fn parses_conjunction() {
        let p = parse_query("a0=v & age:[0,10)").unwrap();
        match p {
            Predicate::And(terms) => assert_eq!(terms.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("what is this").is_err());
    }

    #[test]
    fn sql_where_fallback() {
        // Not mini-language (quotes, >=) -- parsed as SQL WHERE.
        let p = parse_query("color = 'red' AND age >= 20").unwrap();
        assert!(matches!(p, Predicate::And(_)));
        let single = parse_query("color = 'red'").unwrap();
        assert_eq!(single, Predicate::eq("color", "red"));
    }

    #[test]
    fn parses_feature_names() {
        assert_eq!(parse_feature("EMD").unwrap(), UtilityFeature::Emd);
        assert_eq!(parse_feature("kl").unwrap(), UtilityFeature::Kl);
        assert_eq!(parse_feature("MAX_DIFF").unwrap(), UtilityFeature::MaxDiff);
        assert_eq!(parse_feature("p-value").unwrap(), UtilityFeature::PValue);
        assert!(parse_feature("bogus").is_err());
    }

    #[test]
    fn parses_utility_expressions() {
        let u = parse_utility("0.5*EMD + 0.5*KL").unwrap();
        assert_eq!(u.component_count(), 2);
        let single = parse_utility("Accuracy").unwrap();
        assert_eq!(single.component_count(), 1);
        assert!(parse_utility("0.5*EMD + ").is_err());
        assert!(parse_utility("x*EMD").is_err());
        assert!(
            parse_utility("0.5*EMD + 0.5*EMD").is_err(),
            "repeat rejected"
        );
    }
}
