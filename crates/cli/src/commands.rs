//! Subcommand implementations.

use std::fs::File;
use std::io::{BufRead, BufReader, Write};

use viewseeker_core::persist::SessionSnapshot;
use viewseeker_core::scatter::{materialize_scatter, scatter_feature_matrix, ScatterSpace};
use viewseeker_core::viewgen::{bin_spec_for, materialize_view};
use viewseeker_core::{
    tie_aware_precision_at_k, FeedbackSession, UtilityFeature, ViewId, ViewSeeker, ViewSeekerConfig,
};
use viewseeker_dataset::csv::{read_csv, write_csv};
use viewseeker_dataset::generate::{generate_diab, generate_syn, DiabConfig, SynConfig};
use viewseeker_dataset::schema::{AttributeRole, ColumnMeta, ColumnType};
use viewseeker_dataset::{Schema, SelectQuery, Table};
use viewseeker_eval::runner::{exact_feature_matrix, run_session, RunnerConfig, StopCriterion};
use viewseeker_eval::SimulatedUser;

use crate::chart::{render_density_grid, render_ranking, render_view};
use crate::cli::{ClusterCmd, Command, DatasetCmd, USAGE};
use crate::parse::{parse_query, parse_utility};

/// Executes a parsed command.
///
/// # Errors
///
/// Returns a human-readable message for any I/O, parse, or engine failure.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Generate {
            dataset,
            rows,
            seed,
            out,
        } => generate(&dataset, rows, seed, &out),
        Command::Views { data, query, bins } => views(&data, &query, &bins),
        Command::Rank {
            data,
            query,
            utility,
            k,
            bins,
            diverse,
        } => rank(&data, &query, &utility, k, &bins, diverse),
        Command::Explore {
            data,
            query,
            k,
            alpha,
            exclude,
            bins,
            save,
            resume,
            executor,
        } => explore(
            &data, &query, k, alpha, exclude, &bins, save, resume, executor,
        ),
        Command::Query { data, sql } => sql_query(&data, &sql),
        Command::Serve {
            addr,
            workers,
            max_sessions,
            ttl_secs,
            snapshot_dir,
            data_dir,
            catalog_mem_budget,
            log_format,
            log_level,
            executor,
            io,
            max_inflight,
            queue_deadline_ms,
            tracing,
            shards,
            peers,
        } => serve(ServeArgs {
            addr,
            workers,
            max_sessions,
            ttl_secs,
            snapshot_dir,
            data_dir,
            catalog_mem_budget,
            log_format,
            log_level,
            executor,
            io,
            max_inflight,
            queue_deadline_ms,
            tracing,
            shards,
            peers,
        }),
        Command::Trace {
            addr,
            format,
            n,
            out,
        } => trace_cmd(&addr, &format, n, out),
        Command::Loadgen {
            addr,
            connections,
            duration_secs,
            feedback_rounds,
            ramp_secs,
            out,
            assert_clean,
        } => loadgen(
            &addr,
            connections,
            duration_secs,
            feedback_rounds,
            ramp_secs,
            out,
            assert_clean,
        ),
        Command::Dataset(cmd) => dataset(cmd),
        Command::Cluster(cmd) => cluster(cmd),
        Command::Scatter {
            data,
            query,
            ideal,
            grid,
            k,
            max_labels,
        } => scatter(&data, &query, &ideal, grid, k, max_labels),
        Command::Simulate {
            data,
            query,
            ideal,
            k,
            max_labels,
            bins,
            executor,
        } => simulate(&data, &query, &ideal, k, max_labels, &bins, executor),
    }
}

/// Everything `viewseeker serve` needs, bundled so the flag list can grow
/// without the argument count.
struct ServeArgs {
    addr: String,
    workers: usize,
    max_sessions: usize,
    ttl_secs: u64,
    snapshot_dir: Option<String>,
    data_dir: Option<String>,
    catalog_mem_budget: u64,
    log_format: viewseeker_server::LogFormat,
    log_level: viewseeker_server::LogLevel,
    executor: viewseeker_core::MaterializeStrategy,
    io: viewseeker_server::IoModel,
    max_inflight: usize,
    queue_deadline_ms: u64,
    tracing: bool,
    shards: usize,
    peers: Vec<String>,
}

fn serve(args: ServeArgs) -> Result<(), String> {
    let ServeArgs {
        addr,
        workers,
        max_sessions,
        ttl_secs,
        snapshot_dir,
        data_dir,
        catalog_mem_budget,
        log_format,
        log_level,
        executor,
        io,
        max_inflight,
        queue_deadline_ms,
        tracing,
        shards,
        peers,
    } = args;
    let config = viewseeker_server::ServerConfig {
        addr: addr.clone(),
        workers,
        max_sessions,
        ttl: std::time::Duration::from_secs(ttl_secs),
        snapshot_dir: snapshot_dir.map(std::path::PathBuf::from),
        data_dir: data_dir.map(std::path::PathBuf::from),
        catalog_mem_budget,
        log_format,
        log_level,
        default_executor: executor,
        io,
        max_inflight,
        queue_deadline_ms,
        tracing,
        shards,
        peers,
    };
    let handle =
        viewseeker_server::serve_app(&config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "viewseeker-server listening on http://{} ({io:?} I/O, {workers} workers, \
         {max_sessions} max sessions, {ttl_secs}s TTL)",
        handle.addr()
    );
    if config.shards > 1 || !config.peers.is_empty() {
        println!(
            "  cluster: {} local shard(s), {} peer(s) — GET /cluster for status",
            config.shards.max(1),
            config.peers.len()
        );
    }
    println!("  POST /sessions             {{\"dataset\": \"diab\", \"query\": \"a0 = 'a0_v0'\"}}");
    println!("  GET  /sessions/:id/next?m=1");
    println!("  POST /sessions/:id/feedback {{\"view\": 0, \"score\": 0.8}}");
    println!("  GET  /sessions/:id/recommend?k=5[&lambda=0.5]");
    println!("  POST /datasets/:name        (body: raw CSV)");
    println!("  GET  /datasets");
    println!("  GET  /healthz");
    println!("  GET  /metrics              (Prometheus text format)");
    println!("  GET  /debug/traces         (tail-sampled slow-request traces)");
    println!("Ctrl-C to stop.");
    // Serve until killed: the accept loop and workers run on their own
    // threads, so park this one forever.
    loop {
        std::thread::park();
    }
}

/// `viewseeker loadgen`: closed-loop session replay against a running
/// server; prints the JSON report and optionally writes it to `--out`.
fn loadgen(
    addr: &str,
    connections: usize,
    duration_secs: u64,
    feedback_rounds: usize,
    ramp_secs: u64,
    out: Option<String>,
    assert_clean: bool,
) -> Result<(), String> {
    let config = viewseeker_loadgen::Config {
        addr: addr.to_owned(),
        connections,
        duration: std::time::Duration::from_secs(duration_secs),
        feedback_rounds,
        ramp: std::time::Duration::from_secs(ramp_secs),
    };
    let report = viewseeker_loadgen::run(&config).map_err(|e| format!("loadgen: {e}"))?;
    let json = report.to_json();
    println!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, format!("{json}\n")).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if assert_clean && report.protocol_errors > 0 {
        return Err(format!(
            "{} protocol errors over {} requests",
            report.protocol_errors, report.requests
        ));
    }
    Ok(())
}

/// One blocking HTTP/1.1 GET against `addr`; returns `(status, body)`.
/// Rides the same incremental parser as the server and loadgen, so framing
/// (keep-alive headers, content-length) is never hand-rolled here.
fn http_get(addr: &str, path_and_query: &str) -> Result<(u16, String), String> {
    use std::io::Read;
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    stream
        .write_all(
            format!("GET {path_and_query} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("sending request: {e}"))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some(parsed) = viewseeker_net::http1::parse_response(&buf)
            .map_err(|e| format!("bad response from {addr}: {e}"))?
        {
            let body = String::from_utf8_lossy(&parsed.body).into_owned();
            return Ok((parsed.status, body));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(format!("{addr} closed the connection mid-response")),
            Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or_default()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("reading response: {e}")),
        }
    }
}

/// `viewseeker trace`: fetches `GET /debug/traces` from a running server
/// and either re-emits the raw export (`chrome`, `folded`) or renders a
/// human summary table of the retained slow/errored/shed requests.
fn trace_cmd(addr: &str, format: &str, n: usize, out: Option<String>) -> Result<(), String> {
    let wire_format = if format == "summary" {
        "chrome"
    } else {
        format
    };
    let (status, body) = http_get(addr, &format!("/debug/traces?format={wire_format}&n={n}"))?;
    if status != 200 {
        return Err(format!("{addr} answered {status}: {body}"));
    }
    if let Some(path) = &out {
        std::fs::write(path, format!("{body}\n")).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {} bytes to {path}", body.len() + 1);
    }
    match format {
        "summary" => print_trace_summary(&body),
        _ => {
            if out.is_none() {
                println!("{body}");
            }
            Ok(())
        }
    }
}

/// Renders the Chrome trace-event export as one line per request plus an
/// indented stage breakdown, slowest first (the export order).
fn print_trace_summary(chrome_json: &str) -> Result<(), String> {
    let parsed = serde_json::parse_value(chrome_json)
        .map_err(|e| format!("unparseable /debug/traces payload: {e}"))?;
    let Some(serde_json::Value::Array(events)) = parsed.get("traceEvents").map(ToOwned::to_owned)
    else {
        return Err("payload has no traceEvents array".into());
    };
    let requests: Vec<&serde_json::Value> = events
        .iter()
        .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("request"))
        .collect();
    if requests.is_empty() {
        println!("(no traces retained — the sampler keeps slow, errored, and shed requests)");
        return Ok(());
    }
    println!("{} retained trace(s) from /debug/traces:\n", requests.len());
    for request in requests {
        let tid = request.get("tid").and_then(|t| t.as_u64()).unwrap_or(0);
        let name = request.get("name").and_then(|v| v.as_str()).unwrap_or("?");
        let dur = request.get("dur").and_then(|v| v.as_u64()).unwrap_or(0);
        let args = request.get("args");
        let field = |key: &str| -> String {
            args.and_then(|a| a.get(key))
                .map(|v| match v.as_str() {
                    Some(s) => s.to_owned(),
                    None => serde_json::render_compact(v),
                })
                .unwrap_or_default()
        };
        println!(
            "{name}  [{}]  status={} route={:?} total={dur}us{}",
            field("request_id"),
            field("status"),
            field("route"),
            if field("shed") == "true" { " SHED" } else { "" },
        );
        for stage in events.iter().filter(|e| {
            e.get("cat").and_then(|c| c.as_str()) == Some("stage")
                && e.get("tid").and_then(|t| t.as_u64()) == Some(tid)
        }) {
            let parent = stage
                .get("args")
                .and_then(|a| a.get("parent"))
                .and_then(|p| p.as_str())
                .unwrap_or("");
            let indent = if parent.is_empty() { "  " } else { "      " };
            println!(
                "{indent}{:<16} {:>9}us",
                stage.get("name").and_then(|v| v.as_str()).unwrap_or("?"),
                stage.get("dur").and_then(|v| v.as_u64()).unwrap_or(0),
            );
        }
        println!();
    }
    Ok(())
}

/// `viewseeker dataset import|append|list|inspect` over a catalog
/// directory. No
/// server involved: the catalog is opened in-process with a small cache
/// budget, so these work against the same directory a server later mounts
/// with `--data-dir`.
fn dataset(cmd: DatasetCmd) -> Result<(), String> {
    use viewseeker_catalog::Catalog;
    const CLI_CACHE_BUDGET: u64 = 64 << 20;
    match cmd {
        DatasetCmd::Import {
            data_dir,
            csv,
            name,
        } => {
            let catalog = Catalog::open(&data_dir, CLI_CACHE_BUDGET).map_err(|e| e.to_string())?;
            let name = match name {
                Some(n) => n,
                None => std::path::Path::new(&csv)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .map(str::to_owned)
                    .ok_or_else(|| format!("cannot derive a dataset name from {csv:?}"))?,
            };
            let bytes = std::fs::read(&csv).map_err(|e| format!("reading {csv}: {e}"))?;
            let entry = catalog
                .import_csv_bytes(&name, &bytes)
                .map_err(|e| e.to_string())?;
            println!(
                "imported {} ({} rows, {} columns, checksum {})",
                entry.name,
                entry.table.row_count(),
                entry.table.schema().len(),
                entry.checksum
            );
            Ok(())
        }
        DatasetCmd::Append {
            data_dir,
            csv,
            name,
        } => {
            let catalog = Catalog::open(&data_dir, CLI_CACHE_BUDGET).map_err(|e| e.to_string())?;
            let bytes = std::fs::read(&csv).map_err(|e| format!("reading {csv}: {e}"))?;
            let outcome = catalog
                .append_csv_bytes(&name, &bytes)
                .map_err(|e| e.to_string())?;
            println!(
                "appended {} rows to {} ({} rows total, checksum {})",
                outcome.appended, outcome.entry.name, outcome.total_rows, outcome.entry.checksum
            );
            Ok(())
        }
        DatasetCmd::List { data_dir } => {
            let catalog = Catalog::open(&data_dir, CLI_CACHE_BUDGET).map_err(|e| e.to_string())?;
            let datasets = catalog.list();
            if datasets.is_empty() {
                println!("(no datasets in {data_dir})");
                return Ok(());
            }
            println!("{:<24} {:>10} {:>12}  COLUMNS", "NAME", "ROWS", "BYTES");
            for d in datasets {
                println!(
                    "{:<24} {:>10} {:>12}  {}",
                    d.name,
                    d.rows,
                    d.bytes,
                    d.columns.len()
                );
            }
            Ok(())
        }
        DatasetCmd::Inspect { data_dir, name } => {
            let catalog = Catalog::open(&data_dir, CLI_CACHE_BUDGET).map_err(|e| e.to_string())?;
            let detail = catalog.describe(&name).map_err(|e| e.to_string())?;
            println!(
                "{}: {} rows, {} bytes resident, checksum {}",
                detail.name, detail.rows, detail.resident_bytes, detail.checksum
            );
            println!(
                "{:<24} {:<12} {:<10} {:>12}",
                "COLUMN", "TYPE", "ROLE", "CARDINALITY"
            );
            for c in detail.columns {
                println!(
                    "{:<24} {:<12} {:<10} {:>12}",
                    c.name, c.kind, c.role, c.cardinality
                );
            }
            Ok(())
        }
    }
}

/// `viewseeker cluster status`: fetches `GET /cluster` from a running
/// deployment and renders the ring membership and migration totals as a
/// human table.
fn cluster(cmd: ClusterCmd) -> Result<(), String> {
    let ClusterCmd::Status { addr } = cmd;
    let (status, body) = http_get(&addr, "/cluster")?;
    if status != 200 {
        return Err(format!("{addr} answered {status}: {body}"));
    }
    let parsed =
        serde_json::parse_value(&body).map_err(|e| format!("unparseable /cluster payload: {e}"))?;
    let truthy = |v: Option<&serde_json::Value>| matches!(v, Some(serde_json::Value::Bool(true)));
    let num = |key: &str| parsed.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
    let peer_count = parsed
        .get("peers")
        .and_then(|v| v.as_array())
        .map_or(0, <[serde_json::Value]>::len);
    println!(
        "cluster at {addr}: {} local shard(s), {} peer(s){}",
        num("local_shards"),
        peer_count,
        if truthy(parsed.get("rebalancing")) {
            "  [REBALANCING]"
        } else {
            ""
        }
    );
    println!(
        "forwarded {} (errors {}), migrated {} (errors {})\n",
        num("forwarded"),
        num("forward_errors"),
        num("migrated_ok"),
        num("migrated_err")
    );
    println!(
        "{:<24} {:<6} {:>10} {:>10}  UP",
        "MEMBER", "KIND", "ROUTED", "SESSIONS"
    );
    let members = parsed
        .get("members")
        .and_then(|v| v.as_array().map(<[serde_json::Value]>::to_vec))
        .unwrap_or_default();
    for m in &members {
        println!(
            "{:<24} {:<6} {:>10} {:>10}  {}",
            m.get("name").and_then(|v| v.as_str()).unwrap_or("?"),
            if truthy(m.get("local")) {
                "shard"
            } else {
                "peer"
            },
            m.get("routed").and_then(|v| v.as_u64()).unwrap_or(0),
            m.get("sessions").and_then(|v| v.as_u64()).unwrap_or(0),
            if truthy(m.get("up")) { "yes" } else { "NO" }
        );
    }
    Ok(())
}

fn generate(dataset: &str, rows: Option<usize>, seed: u64, out: &str) -> Result<(), String> {
    let table = match dataset {
        "diab" => generate_diab(&DiabConfig::small(rows.unwrap_or(20_000), seed))
            .map_err(|e| e.to_string())?,
        "syn" => generate_syn(&SynConfig::small(rows.unwrap_or(50_000), seed))
            .map_err(|e| e.to_string())?,
        other => return Err(format!("unknown dataset {other:?} (expected diab or syn)")),
    };
    let file = File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
    write_csv(&table, std::io::BufWriter::new(file)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} rows × {} columns to {out}",
        table.row_count(),
        table.schema().len()
    );
    Ok(())
}

/// Loads a CSV, inferring the schema by name convention + value sniffing:
/// measure columns are named `m_*` or `m<digits>`; any other column whose
/// sampled values all parse as numbers becomes a numeric dimension; the rest
/// are categorical dimensions.
pub fn load_table(path: &str) -> Result<Table, String> {
    let file = File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let mut reader = BufReader::new(file);

    let mut header_line = String::new();
    reader
        .read_line(&mut header_line)
        .map_err(|e| e.to_string())?;
    let header: Vec<String> = header_line
        .trim_end()
        .split(',')
        .map(|h| h.trim_matches('"').to_owned())
        .collect();

    // Sniff up to 64 data rows for numeric-ness per column.
    let mut numeric = vec![true; header.len()];
    let mut sampled = 0;
    for line in reader.lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        for (i, field) in line.split(',').enumerate() {
            if i < numeric.len() && field.trim_matches('"').parse::<f64>().is_err() {
                numeric[i] = false;
            }
        }
        sampled += 1;
        if sampled >= 64 {
            break;
        }
    }

    let schema = infer_schema(&header, &numeric)?;
    let file = File::open(path).map_err(|e| format!("reopening {path}: {e}"))?;
    read_csv(&schema, BufReader::new(file)).map_err(|e| e.to_string())
}

/// Builds a schema from header names and per-column numeric-ness.
fn infer_schema(header: &[String], numeric: &[bool]) -> Result<Schema, String> {
    let metas = header
        .iter()
        .zip(numeric)
        .map(|(name, &is_numeric)| {
            let is_measure = name.starts_with("m_")
                || (name.starts_with('m') && name[1..].chars().all(|c| c.is_ascii_digit()))
                    && !name[1..].is_empty();
            let (column_type, role) = if is_measure && is_numeric {
                (ColumnType::Numeric, AttributeRole::Measure)
            } else if is_numeric {
                (ColumnType::Numeric, AttributeRole::Dimension)
            } else {
                (ColumnType::Categorical, AttributeRole::Dimension)
            };
            ColumnMeta {
                name: name.clone(),
                column_type,
                role,
            }
        })
        .collect();
    Schema::new(metas).map_err(|e| e.to_string())
}

fn views(data: &str, query: &str, bins: &[usize]) -> Result<(), String> {
    let table = load_table(data)?;
    let predicate = parse_query(query)?;
    let q = SelectQuery::new(predicate);
    let dq = q.execute(&table).map_err(|e| e.to_string())?;
    let space = viewseeker_core::ViewSpace::enumerate(&table, bins).map_err(|e| e.to_string())?;
    println!(
        "{} rows total, query selects {} ({:.2}%)",
        table.row_count(),
        dq.len(),
        100.0 * dq.len() as f64 / table.row_count().max(1) as f64
    );
    println!("view space: {} candidate views\n", space.len());
    for id in space.ids() {
        println!(
            "  [{:>3}] {}",
            id.index(),
            space.def(id).map_err(|e| e.to_string())?
        );
    }
    Ok(())
}

fn rank(
    data: &str,
    query: &str,
    utility: &str,
    k: usize,
    bins: &[usize],
    diverse: Option<f64>,
) -> Result<(), String> {
    let table = load_table(data)?;
    let q = SelectQuery::new(parse_query(query)?);
    let composite = parse_utility(utility)?;
    let config = ViewSeekerConfig {
        bin_configs: bins.to_vec(),
        ..ViewSeekerConfig::default()
    };
    let matrix = exact_feature_matrix(&table, &q, &config).map_err(|e| e.to_string())?;
    let space = viewseeker_core::ViewSpace::enumerate(&table, bins).map_err(|e| e.to_string())?;
    let scores = composite.scores(&matrix).map_err(|e| e.to_string())?;
    let top = match diverse {
        Some(lambda) => viewseeker_core::diverse_top_k(&matrix, &scores, k, lambda)
            .map_err(|e| e.to_string())?,
        None => composite.top_k(&matrix, k).map_err(|e| e.to_string())?,
    };

    match diverse {
        Some(lambda) => println!(
            "top-{k} views by fixed utility {} (MMR-diversified, λ = {lambda})\n",
            composite.name()
        ),
        None => println!("top-{k} views by fixed utility {}\n", composite.name()),
    }
    let rows: Vec<(usize, String, f64)> = top
        .iter()
        .enumerate()
        .map(|(i, v)| {
            Ok((
                i + 1,
                space.def(*v).map_err(|e| e.to_string())?.to_string(),
                scores[v.index()],
            ))
        })
        .collect::<Result<_, String>>()?;
    println!("{}", render_ranking(&rows));

    // Chart the winner.
    if let Some(best) = top.first() {
        let def = space.def(*best).map_err(|e| e.to_string())?;
        let dq = q.execute(&table).map_err(|e| e.to_string())?;
        let spec = bin_spec_for(&table, def).map_err(|e| e.to_string())?;
        let vd =
            materialize_view(&table, &dq, &table.all_rows(), def).map_err(|e| e.to_string())?;
        println!("{}", render_view(&def.to_string(), &spec, &vd));
    }
    Ok(())
}

/// One line of user input during `explore`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RatingInput {
    /// A 0–1 interestingness rating.
    Score(f64),
    /// Show the current top-k and continue.
    ShowTop,
    /// End the session.
    Quit,
}

/// Parses a rating prompt line.
///
/// # Errors
///
/// Returns a help message for unrecognized input.
pub fn parse_rating(line: &str) -> Result<RatingInput, String> {
    match line.trim().to_ascii_lowercase().as_str() {
        "q" | "quit" | "done" => Ok(RatingInput::Quit),
        "t" | "top" => Ok(RatingInput::ShowTop),
        other => {
            let score: f64 = other.parse().map_err(|_| {
                "enter a rating in [0,1], 't' for top-k, or 'q' to finish".to_owned()
            })?;
            if (0.0..=1.0).contains(&score) {
                Ok(RatingInput::Score(score))
            } else {
                Err(format!("rating {score} outside [0,1]"))
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn explore(
    data: &str,
    query: &str,
    k: usize,
    alpha: f64,
    exclude: Vec<String>,
    bins: &[usize],
    save: Option<String>,
    resume: Option<String>,
    executor: viewseeker_core::MaterializeStrategy,
) -> Result<(), String> {
    let table = load_table(data)?;
    let q = SelectQuery::new(parse_query(query)?);
    let config = ViewSeekerConfig {
        bin_configs: bins.to_vec(),
        alpha,
        excluded_dimensions: exclude,
        materialize: executor,
        ..ViewSeekerConfig::default()
    };
    let mut seeker = match resume {
        Some(path) => {
            let json =
                std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
            let snapshot = SessionSnapshot::from_json(&json).map_err(|e| e.to_string())?;
            let restored = snapshot
                .restore_seeker(&table, &q, config)
                .map_err(|e| e.to_string())?;
            println!(
                "resumed session from {path}: {} labels replayed",
                restored.label_count()
            );
            restored
        }
        None => ViewSeeker::new(&table, &q, config).map_err(|e| e.to_string())?,
    };
    let dq = seeker.dq().clone();
    println!(
        "exploring {} rows ({} selected by the query); {} candidate views",
        table.row_count(),
        dq.len(),
        seeker.view_space().len()
    );
    println!("rate each view 0 (boring) … 1 (fascinating); 't' shows the top-{k}; 'q' finishes\n");

    let stdin = std::io::stdin();
    let mut line = String::new();
    'session: loop {
        let Some(view) = seeker.next_views(1).map_err(|e| e.to_string())?.pop() else {
            println!("every view has been labeled — ending the session");
            break;
        };
        show_view(&table, &dq, &seeker, view)?;
        loop {
            print!("your rating> ");
            std::io::stdout().flush().map_err(|e| e.to_string())?;
            line.clear();
            if stdin
                .lock()
                .read_line(&mut line)
                .map_err(|e| e.to_string())?
                == 0
            {
                break 'session; // EOF
            }
            match parse_rating(&line) {
                Ok(RatingInput::Quit) => break 'session,
                Ok(RatingInput::ShowTop) => {
                    if seeker.label_count() == 0 {
                        println!("(no labels yet — rate at least one view first)");
                    } else {
                        print_top_k(&seeker, k)?;
                    }
                }
                Ok(RatingInput::Score(score)) => {
                    seeker
                        .submit_feedback(view, score)
                        .map_err(|e| e.to_string())?;
                    break;
                }
                Err(msg) => println!("{msg}"),
            }
        }
    }

    if let Some(path) = save {
        let json = SessionSnapshot::from_seeker(&seeker)
            .to_json()
            .map_err(|e| e.to_string())?;
        std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("session snapshot saved to {path}");
    }
    if seeker.label_count() == 0 {
        println!("no feedback collected; nothing to recommend");
        return Ok(());
    }
    println!(
        "\nsession finished after {} labels — your personalized top-{k}:\n",
        seeker.label_count()
    );
    print_top_k(&seeker, k)?;
    if let Some(weights) = seeker.learned_weights() {
        println!("\nyour learned utility function:");
        for (feature, w) in UtilityFeature::all().iter().zip(weights) {
            println!("  {feature:<10} {w:+.3}");
        }
    }
    Ok(())
}

fn show_view(
    table: &Table,
    dq: &viewseeker_dataset::RowSet,
    seeker: &ViewSeeker<'_>,
    view: ViewId,
) -> Result<(), String> {
    let def = seeker.view_space().def(view).map_err(|e| e.to_string())?;
    let spec = bin_spec_for(table, def).map_err(|e| e.to_string())?;
    let vd = materialize_view(table, dq, &table.all_rows(), def).map_err(|e| e.to_string())?;
    println!("{}", render_view(&def.to_string(), &spec, &vd));
    Ok(())
}

fn print_top_k(seeker: &ViewSeeker<'_>, k: usize) -> Result<(), String> {
    let scores = seeker.predicted_scores().map_err(|e| e.to_string())?;
    let rows: Vec<(usize, String, f64)> = seeker
        .recommend(k)
        .map_err(|e| e.to_string())?
        .iter()
        .enumerate()
        .map(|(i, v)| {
            Ok((
                i + 1,
                seeker
                    .view_space()
                    .def(*v)
                    .map_err(|e| e.to_string())?
                    .to_string(),
                scores[v.index()],
            ))
        })
        .collect::<Result<_, String>>()?;
    println!("{}", render_ranking(&rows));
    Ok(())
}

fn simulate(
    data: &str,
    query: &str,
    ideal: &str,
    k: usize,
    max_labels: usize,
    bins: &[usize],
    executor: viewseeker_core::MaterializeStrategy,
) -> Result<(), String> {
    let table = load_table(data)?;
    let q = SelectQuery::new(parse_query(query)?);
    let composite = parse_utility(ideal)?;
    let config = ViewSeekerConfig {
        bin_configs: bins.to_vec(),
        materialize: executor,
        ..ViewSeekerConfig::default()
    };
    println!(
        "simulating a user whose hidden ideal utility is {}\n",
        composite.name()
    );
    let outcome = run_session(
        &table,
        &q,
        config.clone(),
        &composite,
        &RunnerConfig {
            k,
            max_labels,
            stop: StopCriterion::Precision(1.0),
        },
    )
    .map_err(|e| e.to_string())?;

    for (i, (p, ud)) in outcome
        .precision_trace
        .iter()
        .zip(&outcome.ud_trace)
        .enumerate()
    {
        println!(
            "label {:>3}: precision@{k} {:>5.1}%   utility distance {:.4}",
            i + 1,
            p * 100.0,
            ud
        );
    }
    println!(
        "\n{} after {} labels (init {:.2?}, user-perceived total {:.2?})",
        if outcome.converged {
            "reached 100% precision"
        } else {
            "stopped at the label budget"
        },
        outcome.labels_used,
        outcome.init_time,
        outcome.system_time,
    );

    // Show what the user would have seen: the ideal top-k.
    let matrix = exact_feature_matrix(&table, &q, &config).map_err(|e| e.to_string())?;
    let space = viewseeker_core::ViewSpace::enumerate(&table, bins).map_err(|e| e.to_string())?;
    let user = SimulatedUser::new(&composite, &matrix).map_err(|e| e.to_string())?;
    println!("\nideal top-{k} under that utility:");
    let rows: Vec<(usize, String, f64)> = user
        .ideal_top_k(k)
        .iter()
        .enumerate()
        .map(|(i, v)| {
            Ok((
                i + 1,
                space.def(*v).map_err(|e| e.to_string())?.to_string(),
                user.label(*v).map_err(|e| e.to_string())?,
            ))
        })
        .collect::<Result<_, String>>()?;
    println!("{}", render_ranking(&rows));
    Ok(())
}

/// Ad-hoc SQL against a CSV.
fn sql_query(data: &str, sql: &str) -> Result<(), String> {
    let table = load_table(data)?;
    let result = viewseeker_dataset::sql::execute(sql, &table).map_err(|e| e.to_string())?;
    print!("{}", result.to_text_table());
    println!("({} rows)", result.rows.len());
    Ok(())
}

/// Simulated session over scatter-plot views.
fn scatter(
    data: &str,
    query: &str,
    ideal: &str,
    grid: usize,
    k: usize,
    max_labels: usize,
) -> Result<(), String> {
    let table = load_table(data)?;
    let q = SelectQuery::new(parse_query(query)?);
    let composite = parse_utility(ideal)?;
    let dq = q.execute(&table).map_err(|e| e.to_string())?;
    let space = ScatterSpace::enumerate(&table, grid).map_err(|e| e.to_string())?;
    println!(
        "scatter view space: {} measure pairs on a {grid}x{grid} grid",
        space.len()
    );
    let matrix =
        scatter_feature_matrix(&table, &dq, &table.all_rows(), &space, (grid * grid) as f64)
            .map_err(|e| e.to_string())?;
    let truth = composite
        .normalized_scores(&matrix)
        .map_err(|e| e.to_string())?;

    let mut session =
        FeedbackSession::new(matrix, ViewSeekerConfig::default()).map_err(|e| e.to_string())?;
    let mut labels = 0;
    let mut precision = 0.0;
    while labels < max_labels && precision < 1.0 {
        let Some(item) = session.next_items(1).map_err(|e| e.to_string())?.pop() else {
            break;
        };
        session
            .submit_feedback(item, truth[item.index()])
            .map_err(|e| e.to_string())?;
        labels += 1;
        precision =
            tie_aware_precision_at_k(&truth, &session.recommend(k).map_err(|e| e.to_string())?, k);
    }
    println!(
        "after {labels} simulated ratings: precision@{k} = {:.0}%\n",
        precision * 100.0
    );

    println!("top-{k} scatter views:");
    for (rank, item) in session
        .recommend(k)
        .map_err(|e| e.to_string())?
        .iter()
        .enumerate()
    {
        let def = space.def(*item).map_err(|e| e.to_string())?;
        println!("  {}. {def}", rank + 1);
    }
    // Render the winner's density comparison.
    if let Some(best) = session.recommend(1).map_err(|e| e.to_string())?.first() {
        let def = space.def(*best).map_err(|e| e.to_string())?;
        let vd =
            materialize_scatter(&table, &dq, &table.all_rows(), def).map_err(|e| e.to_string())?;
        println!();
        print!(
            "{}",
            render_density_grid(
                &def.to_string(),
                grid,
                vd.target.masses(),
                vd.reference.masses()
            )
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rating_parser_accepts_scores_and_commands() {
        assert_eq!(parse_rating("0.7").unwrap(), RatingInput::Score(0.7));
        assert_eq!(parse_rating(" 1 ").unwrap(), RatingInput::Score(1.0));
        assert_eq!(parse_rating("q").unwrap(), RatingInput::Quit);
        assert_eq!(parse_rating("DONE").unwrap(), RatingInput::Quit);
        assert_eq!(parse_rating("t").unwrap(), RatingInput::ShowTop);
        assert!(parse_rating("1.5").is_err());
        assert!(parse_rating("meh").is_err());
    }

    #[test]
    fn schema_inference_convention() {
        let header: Vec<String> = ["region", "n_age", "m_sales", "m0"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let numeric = vec![false, true, true, true];
        let schema = infer_schema(&header, &numeric).unwrap();
        assert_eq!(schema.dimension_names(), vec!["region", "n_age"]);
        assert_eq!(schema.measure_names(), vec!["m_sales", "m0"]);
        assert_eq!(
            schema.column("n_age").unwrap().column_type,
            ColumnType::Numeric
        );
        assert_eq!(
            schema.column("region").unwrap().column_type,
            ColumnType::Categorical
        );
    }

    #[test]
    fn measure_named_column_with_text_values_degrades_to_categorical() {
        let header: Vec<String> = ["m_notes"].iter().map(|s| (*s).to_owned()).collect();
        let schema = infer_schema(&header, &[false]).unwrap();
        assert_eq!(schema.measure_names().len(), 0);
        assert_eq!(schema.dimension_names(), vec!["m_notes"]);
    }

    #[test]
    fn generate_then_load_round_trip() {
        let dir = std::env::temp_dir().join("viewseeker_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        let path_str = path.to_str().unwrap().to_owned();
        generate("diab", Some(300), 3, &path_str).unwrap();
        let table = load_table(&path_str).unwrap();
        assert_eq!(table.row_count(), 300);
        assert_eq!(table.measure_names().len(), 8);
        assert_eq!(table.dimension_names().len(), 7);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn syn_load_infers_numeric_dimensions() {
        let dir = std::env::temp_dir().join("viewseeker_cli_test_syn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.csv");
        let path_str = path.to_str().unwrap().to_owned();
        generate("syn", Some(200), 4, &path_str).unwrap();
        let table = load_table(&path_str).unwrap();
        assert_eq!(table.dimension_names(), vec!["d0", "d1", "d2", "d3", "d4"]);
        assert!(!table.column_by_name("d0").unwrap().is_categorical());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unknown_dataset_rejected() {
        assert!(generate("nope", None, 1, "/tmp/x.csv").is_err());
    }
}
