//! Command-line parsing for the `viewseeker` binary.

use viewseeker_core::MaterializeStrategy;
use viewseeker_server::{IoModel, LogFormat, LogLevel};

/// Usage text shown on parse errors and `--help`.
pub const USAGE: &str = "\
viewseeker — interactive view recommendation (ViewSeeker reproduction)

USAGE:
  viewseeker generate --dataset diab|syn [--rows N] [--seed N] --out FILE.csv
  viewseeker views    --data FILE.csv --query QUERY [--bins 3,4]
  viewseeker rank     --data FILE.csv --query QUERY --utility EXPR [--k N] [--diverse LAMBDA]
  viewseeker explore  --data FILE.csv --query QUERY [--k N] [--alpha F] [--exclude col1,col2]
                      [--save SESSION.json] [--resume SESSION.json]
                      [--executor naive|shared|fused]
  viewseeker simulate --data FILE.csv --query QUERY --ideal EXPR [--k N] [--max-labels N]
                      [--executor naive|shared|fused]
  viewseeker scatter  --data FILE.csv --query QUERY --ideal EXPR [--grid N] [--k N]
  viewseeker query    --data FILE.csv --sql 'SELECT city, AVG(m_sales) FROM t GROUP BY city'
  viewseeker serve    [--addr HOST:PORT] [--workers N] [--max-sessions N] [--ttl SECS]
                      [--snapshot-dir DIR] [--data-dir DIR]
                      [--catalog-mem-budget BYTES[k|m|g]]
                      [--log-format text|json]
                      [--log-level debug|info|warn|error|off]
                      [--executor naive|shared|fused]
                      [--io blocking|event] [--max-inflight N] [--queue-deadline-ms MS]
                      [--tracing true|false]
                      [--shards N] [--peer HOST:PORT]...
  viewseeker loadgen  --addr HOST:PORT [--connections N] [--duration SECS]
                      [--feedback-rounds N] [--ramp SECS] [--out FILE.json]
                      [--assert-clean true|false]
  viewseeker cluster status --addr HOST:PORT
  viewseeker trace    --addr HOST:PORT [--format summary|chrome|folded] [--n N] [--out FILE]
  viewseeker dataset import  --data-dir DIR --csv FILE.csv [--name NAME]
  viewseeker dataset append  --data-dir DIR --name NAME --csv FILE.csv
  viewseeker dataset list    --data-dir DIR
  viewseeker dataset inspect --data-dir DIR --name NAME

QUERY mini-language (conjunction with '&'):
  a0=a0_v0            equality          color in red|blue   membership
  age:[20,65)         numeric range     *                   everything
  SQL WHERE syntax also works: \"a0 = 'a0_v0' AND age BETWEEN 20 AND 65\"

UTILITY expressions:  '0.5*EMD + 0.5*KL', 'Accuracy', ...
  features: KL, EMD, L1, L2, MAX_DIFF, Usability, Accuracy, p-value

Schema convention for CSV files: columns named m_* are numeric measures,
columns named n_* are numeric dimensions, everything else is a categorical
dimension.";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic dataset and write it as CSV.
    Generate {
        /// `"diab"` or `"syn"`.
        dataset: String,
        /// Row count (defaults per dataset).
        rows: Option<usize>,
        /// RNG seed.
        seed: u64,
        /// Output path.
        out: String,
    },
    /// List the enumerated view space.
    Views {
        /// CSV path.
        data: String,
        /// Query expression.
        query: String,
        /// Bin configurations for numeric dimensions.
        bins: Vec<usize>,
    },
    /// Non-interactive SeeDB-style ranking with a fixed utility.
    Rank {
        /// CSV path.
        data: String,
        /// Query expression.
        query: String,
        /// Utility expression.
        utility: String,
        /// Top-k size.
        k: usize,
        /// Bin configurations.
        bins: Vec<usize>,
        /// MMR diversification trade-off λ (None = plain ranking).
        diverse: Option<f64>,
    },
    /// The interactive loop against a human at the terminal.
    Explore {
        /// CSV path.
        data: String,
        /// Query expression.
        query: String,
        /// Top-k size.
        k: usize,
        /// α partial-data ratio (1.0 = exact).
        alpha: f64,
        /// Dimensions to exclude from the view space.
        exclude: Vec<String>,
        /// Bin configurations.
        bins: Vec<usize>,
        /// Write a session snapshot here on exit.
        save: Option<String>,
        /// Resume from a previously saved snapshot.
        resume: Option<String>,
        /// Materialization executor (default: fused).
        executor: MaterializeStrategy,
    },
    /// A simulated session against a hidden ideal utility.
    Simulate {
        /// CSV path.
        data: String,
        /// Query expression.
        query: String,
        /// The hidden ideal utility expression.
        ideal: String,
        /// Top-k size.
        k: usize,
        /// Label budget.
        max_labels: usize,
        /// Bin configurations.
        bins: Vec<usize>,
        /// Materialization executor (default: fused).
        executor: MaterializeStrategy,
    },
    /// A simulated session over scatter-plot views (the future-work
    /// extension).
    Scatter {
        /// CSV path.
        data: String,
        /// Query expression.
        query: String,
        /// The hidden ideal utility expression.
        ideal: String,
        /// Density-grid cells per axis.
        grid: usize,
        /// Top-k size.
        k: usize,
        /// Label budget.
        max_labels: usize,
    },
    /// Run the multi-session HTTP recommendation service.
    Serve {
        /// Bind address (`host:port`; port 0 picks a free port).
        addr: String,
        /// Worker pool size.
        workers: usize,
        /// Max live sessions before LRU eviction.
        max_sessions: usize,
        /// Idle seconds after which a session is evictable.
        ttl_secs: u64,
        /// Directory for eviction/snapshot persistence.
        snapshot_dir: Option<String>,
        /// Dataset catalog directory (imported CSVs persist here).
        data_dir: Option<String>,
        /// Byte budget for the catalog's in-memory table cache.
        catalog_mem_budget: u64,
        /// Access/event log line shape (`text` or `json`).
        log_format: LogFormat,
        /// Minimum log severity written to stderr.
        log_level: LogLevel,
        /// Default materialization executor for sessions.
        executor: MaterializeStrategy,
        /// Which I/O path serves requests (`blocking` or `event`).
        io: IoModel,
        /// Event path: max requests dispatched to workers at once.
        max_inflight: usize,
        /// Event path: admission-queue deadline before `503` shedding.
        queue_deadline_ms: u64,
        /// Per-request tracing (tail sampler + stage histograms).
        tracing: bool,
        /// Local session shards (consistent-hash routed; default 1).
        shards: usize,
        /// Remote peers speaking the same protocol (`--peer`, repeatable).
        peers: Vec<String>,
    },
    /// Closed-loop load generator replaying interactive sessions.
    Loadgen {
        /// Target server address (`host:port`).
        addr: String,
        /// Concurrent keep-alive connections.
        connections: usize,
        /// Run duration in seconds.
        duration_secs: u64,
        /// Feedback rounds per session (the `k` in create → (next →
        /// feedback) × k → recommend → delete).
        feedback_rounds: usize,
        /// Seconds over which connections ramp up linearly (0 = all at
        /// once).
        ramp_secs: u64,
        /// Write the JSON report here (`None` = stdout only).
        out: Option<String>,
        /// Exit nonzero on any protocol error.
        assert_clean: bool,
    },
    /// Fetch and summarize `GET /debug/traces` from a running server.
    Trace {
        /// Target server address (`host:port`).
        addr: String,
        /// Output shape: `summary` (human table), `chrome` (trace-event
        /// JSON for Perfetto), or `folded` (flamegraph stacks).
        format: String,
        /// Keep only the N slowest retained traces (0 = all).
        n: usize,
        /// Write the raw export here instead of stdout (`summary` always
        /// prints).
        out: Option<String>,
    },
    /// Manage the on-disk dataset catalog (VSC1 columnar store).
    Dataset(DatasetCmd),
    /// Inspect a running sharded/peered deployment.
    Cluster(ClusterCmd),
    /// Execute an ad-hoc SQL query and print the result table.
    Query {
        /// CSV path.
        data: String,
        /// The SQL statement.
        sql: String,
    },
    /// Print usage.
    Help,
}

/// Actions under `viewseeker dataset`.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetCmd {
    /// Convert a CSV file to VSC1 inside the catalog directory.
    Import {
        /// Catalog directory.
        data_dir: String,
        /// CSV file to ingest.
        csv: String,
        /// Dataset name (defaults to the CSV file stem).
        name: Option<String>,
    },
    /// Append a CSV file's rows (same schema, header required) to an
    /// existing dataset, atomically upgrading VSC1 stores to VSC2.
    Append {
        /// Catalog directory.
        data_dir: String,
        /// CSV file whose rows to append.
        csv: String,
        /// Dataset name.
        name: String,
    },
    /// List every dataset the catalog knows.
    List {
        /// Catalog directory.
        data_dir: String,
    },
    /// Print one dataset's schema, row count, and per-column cardinality.
    Inspect {
        /// Catalog directory.
        data_dir: String,
        /// Dataset name.
        name: String,
    },
}

/// Actions under `viewseeker cluster`.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterCmd {
    /// Fetch and print `GET /cluster` from a running deployment: ring
    /// membership, per-member routed/session counts, migration totals.
    Status {
        /// Target server address (`host:port`).
        addr: String,
    },
}

/// Parses a byte count with an optional (case-insensitive) `k`/`m`/`g`
/// suffix: `"1024"`, `"256m"`, `"2G"`.
///
/// # Errors
///
/// Returns a message for empty input, unknown suffixes, bad digits, or
/// counts that overflow `u64`.
pub fn parse_byte_size(value: &str) -> Result<u64, String> {
    let value = value.trim();
    let (digits, shift) = match value.char_indices().last() {
        Some((i, 'k' | 'K')) => (&value[..i], 10),
        Some((i, 'm' | 'M')) => (&value[..i], 20),
        Some((i, 'g' | 'G')) => (&value[..i], 30),
        Some(_) => (value, 0),
        None => return Err("empty byte size".into()),
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("cannot parse byte size {value:?}"))?;
    if n.leading_zeros() < shift {
        return Err(format!("byte size {value:?} overflows u64"));
    }
    Ok(n << shift)
}

impl Command {
    /// Parses an argument vector (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown subcommands, unknown
    /// flags, missing values, or unparseable numbers.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let Some((sub, rest)) = args.split_first() else {
            return Err("missing subcommand".into());
        };
        if sub == "--help" || sub == "-h" || sub == "help" {
            return Ok(Command::Help);
        }
        // `dataset` and `cluster` nest an action word before their flags.
        if sub == "dataset" {
            return Self::parse_dataset(rest);
        }
        if sub == "cluster" {
            return Self::parse_cluster(rest);
        }
        let flags = Flags::collect(rest)?;
        match sub.as_str() {
            "generate" => Ok(Command::Generate {
                dataset: flags.require("--dataset")?,
                rows: flags.get_parsed("--rows")?,
                seed: flags.get_parsed("--seed")?.unwrap_or(7),
                out: flags.require("--out")?,
            }),
            "views" => Ok(Command::Views {
                data: flags.require("--data")?,
                query: flags.get("--query").unwrap_or_else(|| "*".into()),
                bins: flags.bin_configs()?,
            }),
            "rank" => Ok(Command::Rank {
                data: flags.require("--data")?,
                query: flags.get("--query").unwrap_or_else(|| "*".into()),
                utility: flags.require("--utility")?,
                k: flags.get_parsed("--k")?.unwrap_or(10),
                bins: flags.bin_configs()?,
                diverse: flags.get_parsed("--diverse")?,
            }),
            "explore" => Ok(Command::Explore {
                data: flags.require("--data")?,
                query: flags.get("--query").unwrap_or_else(|| "*".into()),
                k: flags.get_parsed("--k")?.unwrap_or(5),
                alpha: flags.get_parsed("--alpha")?.unwrap_or(1.0),
                exclude: flags.list("--exclude"),
                bins: flags.bin_configs()?,
                save: flags.get("--save"),
                resume: flags.get("--resume"),
                executor: flags.get_parsed("--executor")?.unwrap_or_default(),
            }),
            "scatter" => Ok(Command::Scatter {
                data: flags.require("--data")?,
                query: flags.get("--query").unwrap_or_else(|| "*".into()),
                ideal: flags.require("--ideal")?,
                grid: flags.get_parsed("--grid")?.unwrap_or(8),
                k: flags.get_parsed("--k")?.unwrap_or(3),
                max_labels: flags.get_parsed("--max-labels")?.unwrap_or(30),
            }),
            "serve" => Ok(Command::Serve {
                addr: flags
                    .get("--addr")
                    .unwrap_or_else(|| "127.0.0.1:7878".into()),
                workers: flags.get_parsed("--workers")?.unwrap_or(4),
                max_sessions: flags.get_parsed("--max-sessions")?.unwrap_or(32),
                ttl_secs: flags.get_parsed("--ttl")?.unwrap_or(1_800),
                snapshot_dir: flags.get("--snapshot-dir"),
                data_dir: flags.get("--data-dir"),
                catalog_mem_budget: flags
                    .get("--catalog-mem-budget")
                    .map_or(Ok(512 << 20), |v| parse_byte_size(&v))?,
                log_format: flags.get_parsed("--log-format")?.unwrap_or_default(),
                log_level: flags.get_parsed("--log-level")?.unwrap_or_default(),
                executor: flags.get_parsed("--executor")?.unwrap_or_default(),
                io: flags.get_parsed("--io")?.unwrap_or_default(),
                max_inflight: flags.get_parsed("--max-inflight")?.unwrap_or(256),
                queue_deadline_ms: flags.get_parsed("--queue-deadline-ms")?.unwrap_or(500),
                tracing: flags.get_parsed("--tracing")?.unwrap_or(true),
                shards: flags.get_parsed("--shards")?.unwrap_or(1),
                peers: flags.all("--peer"),
            }),
            "loadgen" => Ok(Command::Loadgen {
                addr: flags.require("--addr")?,
                connections: flags.get_parsed("--connections")?.unwrap_or(32),
                duration_secs: flags.get_parsed("--duration")?.unwrap_or(10),
                feedback_rounds: flags.get_parsed("--feedback-rounds")?.unwrap_or(3),
                ramp_secs: flags.get_parsed("--ramp")?.unwrap_or(0),
                out: flags.get("--out"),
                assert_clean: flags.get_parsed("--assert-clean")?.unwrap_or(true),
            }),
            "trace" => Ok(Command::Trace {
                addr: flags.require("--addr")?,
                format: flags.get("--format").unwrap_or_else(|| "summary".into()),
                n: flags.get_parsed("--n")?.unwrap_or(0),
                out: flags.get("--out"),
            }),
            "query" => Ok(Command::Query {
                data: flags.require("--data")?,
                sql: flags.require("--sql")?,
            }),
            "simulate" => Ok(Command::Simulate {
                data: flags.require("--data")?,
                query: flags.get("--query").unwrap_or_else(|| "*".into()),
                ideal: flags.require("--ideal")?,
                k: flags.get_parsed("--k")?.unwrap_or(10),
                max_labels: flags.get_parsed("--max-labels")?.unwrap_or(50),
                bins: flags.bin_configs()?,
                executor: flags.get_parsed("--executor")?.unwrap_or_default(),
            }),
            other => Err(format!("unknown subcommand {other:?}")),
        }
    }

    fn parse_dataset(rest: &[String]) -> Result<Self, String> {
        let Some((action, rest)) = rest.split_first() else {
            return Err("dataset needs an action: import, append, list, or inspect".into());
        };
        let flags = Flags::collect(rest)?;
        let cmd = match action.as_str() {
            "import" => DatasetCmd::Import {
                data_dir: flags.require("--data-dir")?,
                csv: flags.require("--csv")?,
                name: flags.get("--name"),
            },
            "append" => DatasetCmd::Append {
                data_dir: flags.require("--data-dir")?,
                csv: flags.require("--csv")?,
                name: flags.require("--name")?,
            },
            "list" => DatasetCmd::List {
                data_dir: flags.require("--data-dir")?,
            },
            "inspect" => DatasetCmd::Inspect {
                data_dir: flags.require("--data-dir")?,
                name: flags.require("--name")?,
            },
            other => return Err(format!("unknown dataset action {other:?}")),
        };
        Ok(Command::Dataset(cmd))
    }

    fn parse_cluster(rest: &[String]) -> Result<Self, String> {
        let Some((action, rest)) = rest.split_first() else {
            return Err("cluster needs an action: status".into());
        };
        let flags = Flags::collect(rest)?;
        let cmd = match action.as_str() {
            "status" => ClusterCmd::Status {
                addr: flags.require("--addr")?,
            },
            other => return Err(format!("unknown cluster action {other:?}")),
        };
        Ok(Command::Cluster(cmd))
    }
}

/// `--flag value` pairs.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn collect(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if !flag.starts_with("--") {
                return Err(format!("expected a --flag, got {flag:?}"));
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag {flag} needs a value"))?;
            pairs.push((flag.clone(), value.clone()));
        }
        Ok(Self { pairs })
    }

    fn get(&self, flag: &str) -> Option<String> {
        self.pairs
            .iter()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.clone())
    }

    /// Every value given for a repeatable flag, in order.
    fn all(&self, flag: &str) -> Vec<String> {
        self.pairs
            .iter()
            .filter(|(f, _)| f == flag)
            .map(|(_, v)| v.clone())
            .collect()
    }

    fn require(&self, flag: &str) -> Result<String, String> {
        self.get(flag)
            .ok_or_else(|| format!("missing required {flag}"))
    }

    fn get_parsed<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, String> {
        self.get(flag)
            .map(|v| {
                v.parse::<T>()
                    .map_err(|_| format!("cannot parse {flag} value {v:?}"))
            })
            .transpose()
    }

    fn list(&self, flag: &str) -> Vec<String> {
        self.get(flag)
            .map(|v| {
                v.split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_default()
    }

    fn bin_configs(&self) -> Result<Vec<usize>, String> {
        match self.get("--bins") {
            None => Ok(vec![3, 4]),
            Some(v) => v
                .split(',')
                .map(|b| {
                    b.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("bad bin count {b:?}"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        Command::parse(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_generate() {
        let c = parse(&[
            "generate",
            "--dataset",
            "diab",
            "--rows",
            "500",
            "--out",
            "x.csv",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Generate {
                dataset: "diab".into(),
                rows: Some(500),
                seed: 7,
                out: "x.csv".into()
            }
        );
    }

    #[test]
    fn parses_explore_with_defaults() {
        let c = parse(&["explore", "--data", "x.csv", "--query", "a0=v"]).unwrap();
        match c {
            Command::Explore {
                k,
                alpha,
                exclude,
                bins,
                save,
                resume,
                executor,
                ..
            } => {
                assert_eq!(k, 5);
                assert_eq!(alpha, 1.0);
                assert!(exclude.is_empty());
                assert_eq!(bins, vec![3, 4]);
                assert!(save.is_none() && resume.is_none());
                assert_eq!(executor, MaterializeStrategy::Fused);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_scatter_with_defaults() {
        let c = parse(&["scatter", "--data", "x.csv", "--ideal", "EMD"]).unwrap();
        match c {
            Command::Scatter {
                grid,
                k,
                max_labels,
                ..
            } => {
                assert_eq!(grid, 8);
                assert_eq!(k, 3);
                assert_eq!(max_labels, 30);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_save_and_resume() {
        let c = parse(&[
            "explore", "--data", "x.csv", "--save", "s.json", "--resume", "r.json",
        ])
        .unwrap();
        match c {
            Command::Explore { save, resume, .. } => {
                assert_eq!(save.as_deref(), Some("s.json"));
                assert_eq!(resume.as_deref(), Some("r.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_exclude_and_bins_lists() {
        let c = parse(&[
            "explore",
            "--data",
            "x.csv",
            "--exclude",
            "a0, a1",
            "--bins",
            "2,5",
        ])
        .unwrap();
        match c {
            Command::Explore { exclude, bins, .. } => {
                assert_eq!(exclude, vec!["a0".to_owned(), "a1".to_owned()]);
                assert_eq!(bins, vec![2, 5]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_serve_with_defaults() {
        let c = parse(&["serve"]).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "127.0.0.1:7878".into(),
                workers: 4,
                max_sessions: 32,
                ttl_secs: 1_800,
                snapshot_dir: None,
                data_dir: None,
                catalog_mem_budget: 512 << 20,
                log_format: LogFormat::Text,
                log_level: LogLevel::Info,
                executor: MaterializeStrategy::Fused,
                io: IoModel::Event,
                max_inflight: 256,
                queue_deadline_ms: 500,
                tracing: true,
                shards: 1,
                peers: vec![],
            }
        );
        let c = parse(&[
            "serve",
            "--addr",
            "0.0.0.0:80",
            "--workers",
            "2",
            "--max-sessions",
            "5",
            "--ttl",
            "60",
            "--snapshot-dir",
            "/tmp/vs",
            "--data-dir",
            "/tmp/vs-data",
            "--catalog-mem-budget",
            "256m",
            "--log-format",
            "json",
            "--log-level",
            "warn",
            "--executor",
            "naive",
            "--io",
            "blocking",
            "--max-inflight",
            "64",
            "--queue-deadline-ms",
            "250",
            "--tracing",
            "false",
            "--shards",
            "4",
            "--peer",
            "10.0.0.2:7878",
            "--peer",
            "10.0.0.3:7878",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "0.0.0.0:80".into(),
                workers: 2,
                max_sessions: 5,
                ttl_secs: 60,
                snapshot_dir: Some("/tmp/vs".into()),
                data_dir: Some("/tmp/vs-data".into()),
                catalog_mem_budget: 256 << 20,
                log_format: LogFormat::Json,
                log_level: LogLevel::Warn,
                executor: MaterializeStrategy::Naive,
                io: IoModel::Blocking,
                max_inflight: 64,
                queue_deadline_ms: 250,
                tracing: false,
                shards: 4,
                peers: vec!["10.0.0.2:7878".into(), "10.0.0.3:7878".into()],
            }
        );
        assert!(parse(&["serve", "--workers", "two"]).is_err());
        assert!(parse(&["serve", "--shards", "lots"]).is_err());
        assert!(parse(&["serve", "--tracing", "maybe"]).is_err());
        assert!(parse(&["serve", "--log-format", "xml"]).is_err());
        assert!(parse(&["serve", "--log-level", "verbose"]).is_err());
        assert!(parse(&["serve", "--catalog-mem-budget", "lots"]).is_err());
        assert!(parse(&["serve", "--executor", "turbo"]).is_err());
        assert!(parse(&["serve", "--io", "fiber"]).is_err());
        assert!(parse(&["explore", "--data", "x.csv", "--executor", "turbo"]).is_err());
    }

    #[test]
    fn parses_loadgen_with_defaults() {
        let c = parse(&["loadgen", "--addr", "127.0.0.1:7878"]).unwrap();
        assert_eq!(
            c,
            Command::Loadgen {
                addr: "127.0.0.1:7878".into(),
                connections: 32,
                duration_secs: 10,
                feedback_rounds: 3,
                ramp_secs: 0,
                out: None,
                assert_clean: true,
            }
        );
        let c = parse(&[
            "loadgen",
            "--addr",
            "127.0.0.1:7878",
            "--connections",
            "5000",
            "--duration",
            "30",
            "--feedback-rounds",
            "2",
            "--ramp",
            "5",
            "--out",
            "bench.json",
            "--assert-clean",
            "false",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Loadgen {
                addr: "127.0.0.1:7878".into(),
                connections: 5000,
                duration_secs: 30,
                feedback_rounds: 2,
                ramp_secs: 5,
                out: Some("bench.json".into()),
                assert_clean: false,
            }
        );
        assert!(parse(&["loadgen"]).is_err(), "--addr is required");
        assert!(parse(&["loadgen", "--addr", "x", "--connections", "many"]).is_err());
        assert!(parse(&["loadgen", "--addr", "x", "--ramp", "slow"]).is_err());
    }

    #[test]
    fn parses_trace_with_defaults() {
        let c = parse(&["trace", "--addr", "127.0.0.1:7878"]).unwrap();
        assert_eq!(
            c,
            Command::Trace {
                addr: "127.0.0.1:7878".into(),
                format: "summary".into(),
                n: 0,
                out: None,
            }
        );
        let c = parse(&[
            "trace",
            "--addr",
            "127.0.0.1:7878",
            "--format",
            "chrome",
            "--n",
            "20",
            "--out",
            "traces.json",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Trace {
                addr: "127.0.0.1:7878".into(),
                format: "chrome".into(),
                n: 20,
                out: Some("traces.json".into()),
            }
        );
        assert!(parse(&["trace"]).is_err(), "--addr is required");
        assert!(parse(&["trace", "--addr", "x", "--n", "lots"]).is_err());
    }

    #[test]
    fn parses_dataset_actions() {
        let c = parse(&[
            "dataset",
            "import",
            "--data-dir",
            "/tmp/cat",
            "--csv",
            "x.csv",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Dataset(DatasetCmd::Import {
                data_dir: "/tmp/cat".into(),
                csv: "x.csv".into(),
                name: None,
            })
        );
        let c = parse(&["dataset", "list", "--data-dir", "/tmp/cat"]).unwrap();
        assert_eq!(
            c,
            Command::Dataset(DatasetCmd::List {
                data_dir: "/tmp/cat".into()
            })
        );
        let c = parse(&[
            "dataset",
            "inspect",
            "--data-dir",
            "/tmp/cat",
            "--name",
            "sales",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Dataset(DatasetCmd::Inspect {
                data_dir: "/tmp/cat".into(),
                name: "sales".into(),
            })
        );
        let c = parse(&[
            "dataset",
            "append",
            "--data-dir",
            "/tmp/cat",
            "--name",
            "sales",
            "--csv",
            "more.csv",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Dataset(DatasetCmd::Append {
                data_dir: "/tmp/cat".into(),
                csv: "more.csv".into(),
                name: "sales".into(),
            })
        );
        assert!(parse(&["dataset"]).is_err());
        assert!(parse(&["dataset", "drop", "--data-dir", "/tmp/cat"]).is_err());
        assert!(parse(&["dataset", "inspect", "--data-dir", "/tmp/cat"]).is_err());
        assert!(
            parse(&[
                "dataset",
                "append",
                "--data-dir",
                "/tmp/cat",
                "--csv",
                "x.csv"
            ])
            .is_err(),
            "append requires --name"
        );
    }

    #[test]
    fn parses_cluster_status() {
        let c = parse(&["cluster", "status", "--addr", "127.0.0.1:7878"]).unwrap();
        assert_eq!(
            c,
            Command::Cluster(ClusterCmd::Status {
                addr: "127.0.0.1:7878".into()
            })
        );
        assert!(parse(&["cluster"]).is_err(), "needs an action");
        assert!(parse(&["cluster", "rebalance", "--addr", "x"]).is_err());
        assert!(parse(&["cluster", "status"]).is_err(), "--addr is required");
    }

    #[test]
    fn byte_sizes_parse_with_suffixes() {
        assert_eq!(parse_byte_size("1024").unwrap(), 1024);
        assert_eq!(parse_byte_size("4k").unwrap(), 4 << 10);
        assert_eq!(parse_byte_size("256M").unwrap(), 256 << 20);
        assert_eq!(parse_byte_size("2g").unwrap(), 2u64 << 30);
        assert!(parse_byte_size("").is_err());
        assert!(parse_byte_size("12q").is_err());
        assert!(parse_byte_size("999999999999999999999g").is_err());
        assert!(parse_byte_size(&format!("{}g", u64::MAX)).is_err());
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["bogus"]).is_err());
        assert!(parse(&["generate", "--dataset"]).is_err());
        assert!(parse(&["generate", "positional"]).is_err());
        assert!(
            parse(&["generate", "--out", "x.csv"]).is_err(),
            "--dataset required"
        );
        assert!(parse(&["rank", "--data", "x", "--utility", "EMD", "--k", "NaNope"]).is_err());
        assert!(parse(&["views", "--data", "x", "--bins", "3,x"]).is_err());
    }
}
