//! Command-line parsing for the `viewseeker` binary.

use viewseeker_server::{LogFormat, LogLevel};

/// Usage text shown on parse errors and `--help`.
pub const USAGE: &str = "\
viewseeker — interactive view recommendation (ViewSeeker reproduction)

USAGE:
  viewseeker generate --dataset diab|syn [--rows N] [--seed N] --out FILE.csv
  viewseeker views    --data FILE.csv --query QUERY [--bins 3,4]
  viewseeker rank     --data FILE.csv --query QUERY --utility EXPR [--k N] [--diverse LAMBDA]
  viewseeker explore  --data FILE.csv --query QUERY [--k N] [--alpha F] [--exclude col1,col2]
                      [--save SESSION.json] [--resume SESSION.json]
  viewseeker simulate --data FILE.csv --query QUERY --ideal EXPR [--k N] [--max-labels N]
  viewseeker scatter  --data FILE.csv --query QUERY --ideal EXPR [--grid N] [--k N]
  viewseeker query    --data FILE.csv --sql 'SELECT city, AVG(m_sales) FROM t GROUP BY city'
  viewseeker serve    [--addr HOST:PORT] [--workers N] [--max-sessions N] [--ttl SECS]
                      [--snapshot-dir DIR] [--log-format text|json]
                      [--log-level debug|info|warn|error|off]

QUERY mini-language (conjunction with '&'):
  a0=a0_v0            equality          color in red|blue   membership
  age:[20,65)         numeric range     *                   everything
  SQL WHERE syntax also works: \"a0 = 'a0_v0' AND age BETWEEN 20 AND 65\"

UTILITY expressions:  '0.5*EMD + 0.5*KL', 'Accuracy', ...
  features: KL, EMD, L1, L2, MAX_DIFF, Usability, Accuracy, p-value

Schema convention for CSV files: columns named m_* are numeric measures,
columns named n_* are numeric dimensions, everything else is a categorical
dimension.";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic dataset and write it as CSV.
    Generate {
        /// `"diab"` or `"syn"`.
        dataset: String,
        /// Row count (defaults per dataset).
        rows: Option<usize>,
        /// RNG seed.
        seed: u64,
        /// Output path.
        out: String,
    },
    /// List the enumerated view space.
    Views {
        /// CSV path.
        data: String,
        /// Query expression.
        query: String,
        /// Bin configurations for numeric dimensions.
        bins: Vec<usize>,
    },
    /// Non-interactive SeeDB-style ranking with a fixed utility.
    Rank {
        /// CSV path.
        data: String,
        /// Query expression.
        query: String,
        /// Utility expression.
        utility: String,
        /// Top-k size.
        k: usize,
        /// Bin configurations.
        bins: Vec<usize>,
        /// MMR diversification trade-off λ (None = plain ranking).
        diverse: Option<f64>,
    },
    /// The interactive loop against a human at the terminal.
    Explore {
        /// CSV path.
        data: String,
        /// Query expression.
        query: String,
        /// Top-k size.
        k: usize,
        /// α partial-data ratio (1.0 = exact).
        alpha: f64,
        /// Dimensions to exclude from the view space.
        exclude: Vec<String>,
        /// Bin configurations.
        bins: Vec<usize>,
        /// Write a session snapshot here on exit.
        save: Option<String>,
        /// Resume from a previously saved snapshot.
        resume: Option<String>,
    },
    /// A simulated session against a hidden ideal utility.
    Simulate {
        /// CSV path.
        data: String,
        /// Query expression.
        query: String,
        /// The hidden ideal utility expression.
        ideal: String,
        /// Top-k size.
        k: usize,
        /// Label budget.
        max_labels: usize,
        /// Bin configurations.
        bins: Vec<usize>,
    },
    /// A simulated session over scatter-plot views (the future-work
    /// extension).
    Scatter {
        /// CSV path.
        data: String,
        /// Query expression.
        query: String,
        /// The hidden ideal utility expression.
        ideal: String,
        /// Density-grid cells per axis.
        grid: usize,
        /// Top-k size.
        k: usize,
        /// Label budget.
        max_labels: usize,
    },
    /// Run the multi-session HTTP recommendation service.
    Serve {
        /// Bind address (`host:port`; port 0 picks a free port).
        addr: String,
        /// Worker pool size.
        workers: usize,
        /// Max live sessions before LRU eviction.
        max_sessions: usize,
        /// Idle seconds after which a session is evictable.
        ttl_secs: u64,
        /// Directory for eviction/snapshot persistence.
        snapshot_dir: Option<String>,
        /// Access/event log line shape (`text` or `json`).
        log_format: LogFormat,
        /// Minimum log severity written to stderr.
        log_level: LogLevel,
    },
    /// Execute an ad-hoc SQL query and print the result table.
    Query {
        /// CSV path.
        data: String,
        /// The SQL statement.
        sql: String,
    },
    /// Print usage.
    Help,
}

impl Command {
    /// Parses an argument vector (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown subcommands, unknown
    /// flags, missing values, or unparseable numbers.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let Some((sub, rest)) = args.split_first() else {
            return Err("missing subcommand".into());
        };
        if sub == "--help" || sub == "-h" || sub == "help" {
            return Ok(Command::Help);
        }
        let flags = Flags::collect(rest)?;
        match sub.as_str() {
            "generate" => Ok(Command::Generate {
                dataset: flags.require("--dataset")?,
                rows: flags.get_parsed("--rows")?,
                seed: flags.get_parsed("--seed")?.unwrap_or(7),
                out: flags.require("--out")?,
            }),
            "views" => Ok(Command::Views {
                data: flags.require("--data")?,
                query: flags.get("--query").unwrap_or_else(|| "*".into()),
                bins: flags.bin_configs()?,
            }),
            "rank" => Ok(Command::Rank {
                data: flags.require("--data")?,
                query: flags.get("--query").unwrap_or_else(|| "*".into()),
                utility: flags.require("--utility")?,
                k: flags.get_parsed("--k")?.unwrap_or(10),
                bins: flags.bin_configs()?,
                diverse: flags.get_parsed("--diverse")?,
            }),
            "explore" => Ok(Command::Explore {
                data: flags.require("--data")?,
                query: flags.get("--query").unwrap_or_else(|| "*".into()),
                k: flags.get_parsed("--k")?.unwrap_or(5),
                alpha: flags.get_parsed("--alpha")?.unwrap_or(1.0),
                exclude: flags.list("--exclude"),
                bins: flags.bin_configs()?,
                save: flags.get("--save"),
                resume: flags.get("--resume"),
            }),
            "scatter" => Ok(Command::Scatter {
                data: flags.require("--data")?,
                query: flags.get("--query").unwrap_or_else(|| "*".into()),
                ideal: flags.require("--ideal")?,
                grid: flags.get_parsed("--grid")?.unwrap_or(8),
                k: flags.get_parsed("--k")?.unwrap_or(3),
                max_labels: flags.get_parsed("--max-labels")?.unwrap_or(30),
            }),
            "serve" => Ok(Command::Serve {
                addr: flags
                    .get("--addr")
                    .unwrap_or_else(|| "127.0.0.1:7878".into()),
                workers: flags.get_parsed("--workers")?.unwrap_or(4),
                max_sessions: flags.get_parsed("--max-sessions")?.unwrap_or(32),
                ttl_secs: flags.get_parsed("--ttl")?.unwrap_or(1_800),
                snapshot_dir: flags.get("--snapshot-dir"),
                log_format: flags.get_parsed("--log-format")?.unwrap_or_default(),
                log_level: flags.get_parsed("--log-level")?.unwrap_or_default(),
            }),
            "query" => Ok(Command::Query {
                data: flags.require("--data")?,
                sql: flags.require("--sql")?,
            }),
            "simulate" => Ok(Command::Simulate {
                data: flags.require("--data")?,
                query: flags.get("--query").unwrap_or_else(|| "*".into()),
                ideal: flags.require("--ideal")?,
                k: flags.get_parsed("--k")?.unwrap_or(10),
                max_labels: flags.get_parsed("--max-labels")?.unwrap_or(50),
                bins: flags.bin_configs()?,
            }),
            other => Err(format!("unknown subcommand {other:?}")),
        }
    }
}

/// `--flag value` pairs.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn collect(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            if !flag.starts_with("--") {
                return Err(format!("expected a --flag, got {flag:?}"));
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag {flag} needs a value"))?;
            pairs.push((flag.clone(), value.clone()));
        }
        Ok(Self { pairs })
    }

    fn get(&self, flag: &str) -> Option<String> {
        self.pairs
            .iter()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.clone())
    }

    fn require(&self, flag: &str) -> Result<String, String> {
        self.get(flag)
            .ok_or_else(|| format!("missing required {flag}"))
    }

    fn get_parsed<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, String> {
        self.get(flag)
            .map(|v| {
                v.parse::<T>()
                    .map_err(|_| format!("cannot parse {flag} value {v:?}"))
            })
            .transpose()
    }

    fn list(&self, flag: &str) -> Vec<String> {
        self.get(flag)
            .map(|v| {
                v.split(',')
                    .map(|s| s.trim().to_owned())
                    .filter(|s| !s.is_empty())
                    .collect()
            })
            .unwrap_or_default()
    }

    fn bin_configs(&self) -> Result<Vec<usize>, String> {
        match self.get("--bins") {
            None => Ok(vec![3, 4]),
            Some(v) => v
                .split(',')
                .map(|b| {
                    b.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("bad bin count {b:?}"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        Command::parse(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_generate() {
        let c = parse(&[
            "generate",
            "--dataset",
            "diab",
            "--rows",
            "500",
            "--out",
            "x.csv",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Generate {
                dataset: "diab".into(),
                rows: Some(500),
                seed: 7,
                out: "x.csv".into()
            }
        );
    }

    #[test]
    fn parses_explore_with_defaults() {
        let c = parse(&["explore", "--data", "x.csv", "--query", "a0=v"]).unwrap();
        match c {
            Command::Explore {
                k,
                alpha,
                exclude,
                bins,
                save,
                resume,
                ..
            } => {
                assert_eq!(k, 5);
                assert_eq!(alpha, 1.0);
                assert!(exclude.is_empty());
                assert_eq!(bins, vec![3, 4]);
                assert!(save.is_none() && resume.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_scatter_with_defaults() {
        let c = parse(&["scatter", "--data", "x.csv", "--ideal", "EMD"]).unwrap();
        match c {
            Command::Scatter {
                grid,
                k,
                max_labels,
                ..
            } => {
                assert_eq!(grid, 8);
                assert_eq!(k, 3);
                assert_eq!(max_labels, 30);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_save_and_resume() {
        let c = parse(&[
            "explore", "--data", "x.csv", "--save", "s.json", "--resume", "r.json",
        ])
        .unwrap();
        match c {
            Command::Explore { save, resume, .. } => {
                assert_eq!(save.as_deref(), Some("s.json"));
                assert_eq!(resume.as_deref(), Some("r.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_exclude_and_bins_lists() {
        let c = parse(&[
            "explore",
            "--data",
            "x.csv",
            "--exclude",
            "a0, a1",
            "--bins",
            "2,5",
        ])
        .unwrap();
        match c {
            Command::Explore { exclude, bins, .. } => {
                assert_eq!(exclude, vec!["a0".to_owned(), "a1".to_owned()]);
                assert_eq!(bins, vec![2, 5]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_serve_with_defaults() {
        let c = parse(&["serve"]).unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "127.0.0.1:7878".into(),
                workers: 4,
                max_sessions: 32,
                ttl_secs: 1_800,
                snapshot_dir: None,
                log_format: LogFormat::Text,
                log_level: LogLevel::Info,
            }
        );
        let c = parse(&[
            "serve",
            "--addr",
            "0.0.0.0:80",
            "--workers",
            "2",
            "--max-sessions",
            "5",
            "--ttl",
            "60",
            "--snapshot-dir",
            "/tmp/vs",
            "--log-format",
            "json",
            "--log-level",
            "warn",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "0.0.0.0:80".into(),
                workers: 2,
                max_sessions: 5,
                ttl_secs: 60,
                snapshot_dir: Some("/tmp/vs".into()),
                log_format: LogFormat::Json,
                log_level: LogLevel::Warn,
            }
        );
        assert!(parse(&["serve", "--workers", "two"]).is_err());
        assert!(parse(&["serve", "--log-format", "xml"]).is_err());
        assert!(parse(&["serve", "--log-level", "verbose"]).is_err());
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["bogus"]).is_err());
        assert!(parse(&["generate", "--dataset"]).is_err());
        assert!(parse(&["generate", "positional"]).is_err());
        assert!(
            parse(&["generate", "--out", "x.csv"]).is_err(),
            "--dataset required"
        );
        assert!(parse(&["rank", "--data", "x", "--utility", "EMD", "--k", "NaNope"]).is_err());
        assert!(parse(&["views", "--data", "x", "--bins", "3,x"]).is_err());
    }
}
