//! ASCII rendering of views: side-by-side target (DQ) vs reference (DR) bar
//! charts, the terminal counterpart of the paper's Figure 1/2 histograms.

use viewseeker_core::viewgen::ViewData;
use viewseeker_dataset::BinSpec;

/// Maximum bar width in characters.
const BAR_WIDTH: usize = 36;
/// Maximum label width before truncation.
const LABEL_WIDTH: usize = 14;

/// Renders one materialized view as a two-series bar chart.
#[must_use]
pub fn render_view(title: &str, spec: &BinSpec, data: &ViewData) -> String {
    let mut out = String::new();
    out.push_str(&format!("┌── {title}\n"));
    let max = data
        .target
        .masses()
        .iter()
        .chain(data.reference.masses())
        .copied()
        .fold(f64::MIN_POSITIVE, f64::max);
    for bin in 0..data.bins {
        let label = truncate(&spec.label(bin), LABEL_WIDTH);
        let t = data.target.mass(bin);
        let r = data.reference.mass(bin);
        out.push_str(&format!(
            "│ {label:<LABEL_WIDTH$} DQ {:<BAR_WIDTH$} {t:.3}\n",
            bar(t, max)
        ));
        out.push_str(&format!(
            "│ {blank:<LABEL_WIDTH$} DR {:<BAR_WIDTH$} {r:.3}\n",
            bar(r, max),
            blank = ""
        ));
    }
    out.push_str(&format!(
        "└── target: {} rows of DQ; deviation is DQ-vs-DR shape difference\n",
        data.target_rows
    ));
    out
}

/// A proportional bar of `value` against `max`.
fn bar(value: f64, max: f64) -> String {
    let chars = ((value / max) * BAR_WIDTH as f64)
        .round()
        .clamp(0.0, BAR_WIDTH as f64);
    "█".repeat(chars as usize)
}

/// Truncates a label with an ellipsis.
fn truncate(s: &str, width: usize) -> String {
    if s.chars().count() <= width {
        s.to_owned()
    } else {
        let head: String = s.chars().take(width.saturating_sub(1)).collect();
        format!("{head}…")
    }
}

/// Shade ramp for density maps, light to dark.
const SHADES: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Renders a scatter view's two density grids side by side (DQ vs DR).
/// `target` and `reference` are row-major `grid × grid` probability masses.
#[must_use]
pub fn render_density_grid(title: &str, grid: usize, target: &[f64], reference: &[f64]) -> String {
    let mut out = String::new();
    out.push_str(&format!("┌── {title}\n"));
    let max = target
        .iter()
        .chain(reference)
        .copied()
        .fold(f64::MIN_POSITIVE, f64::max);
    let shade = |v: f64| -> char {
        let idx = ((v / max) * (SHADES.len() - 1) as f64).round() as usize;
        SHADES[idx.min(SHADES.len() - 1)]
    };
    out.push_str(&format!(
        "│ {:<width$}   {:<width$}\n",
        "DQ (query subset)",
        "DR (all data)",
        width = grid
    ));
    // Row 0 of the grid is the lowest y; print top-down.
    for row in (0..grid).rev() {
        let mut left = String::with_capacity(grid);
        let mut right = String::with_capacity(grid);
        for col in 0..grid {
            left.push(shade(target[row * grid + col]));
            right.push(shade(reference[row * grid + col]));
        }
        out.push_str(&format!("│ {left}   {right}\n"));
    }
    out.push_str("└──\n");
    out
}

/// Renders a compact ranked list of views with scores.
#[must_use]
pub fn render_ranking(rows: &[(usize, String, f64)]) -> String {
    let mut out = String::new();
    for (rank, title, score) in rows {
        out.push_str(&format!("  {rank:>2}. {title:<44} {score:>7.4}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewseeker_stats::Distribution;

    fn demo_data() -> ViewData {
        ViewData {
            target: Distribution::from_aggregates(&[3.0, 1.0]).unwrap(),
            reference: Distribution::from_aggregates(&[1.0, 1.0]).unwrap(),
            target_rows: 42,
            dispersion: 0.0,
            bins: 2,
        }
    }

    #[test]
    fn renders_every_bin_twice() {
        let spec = BinSpec::Categorical {
            labels: vec!["yes".into(), "no".into()],
        };
        let s = render_view("COUNT(m) BY a", &spec, &demo_data());
        // One DQ bar line and one DR bar line per bin (footer text mentions
        // the names without surrounding spaces, so they don't count here).
        assert_eq!(s.lines().filter(|l| l.contains(" DQ ")).count(), 2);
        assert_eq!(s.lines().filter(|l| l.contains(" DR ")).count(), 2);
        assert!(s.contains("COUNT(m) BY a"));
        assert!(s.contains("42 rows"));
        assert!(s.contains("yes"));
    }

    #[test]
    fn bars_are_proportional() {
        assert_eq!(bar(1.0, 1.0).chars().count(), BAR_WIDTH);
        assert_eq!(bar(0.5, 1.0).chars().count(), BAR_WIDTH / 2);
        assert_eq!(bar(0.0, 1.0), "");
    }

    #[test]
    fn truncation_adds_ellipsis() {
        assert_eq!(truncate("short", 10), "short");
        let t = truncate("averyverylonglabel", 8);
        assert!(t.chars().count() <= 8);
        assert!(t.ends_with('…'));
    }

    #[test]
    fn ranking_lists_all_rows() {
        let s = render_ranking(&[
            (1, "AVG(m) BY a".into(), 0.9),
            (2, "SUM(m) BY b".into(), 0.5),
        ]);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("1. AVG(m) BY a"));
    }

    #[test]
    fn density_grid_renders_both_panels() {
        let target = vec![0.0, 0.0, 0.0, 1.0];
        let reference = vec![0.25, 0.25, 0.25, 0.25];
        let s = render_density_grid("SCATTER(a vs b)", 2, &target, &reference);
        assert!(s.contains("SCATTER(a vs b)"));
        // 2 grid rows + header + title + footer.
        assert_eq!(s.lines().count(), 5);
        // The hot cell renders as the darkest shade.
        assert!(s.contains('@'));
    }
}
