//! Property-based tests of the columnar engine: row-set algebra laws,
//! predicate semantics, binning totality, sampling containment, and shared
//! vs single-aggregate equivalence on arbitrary data.

use proptest::prelude::*;
use viewseeker_dataset::aggregate::{
    group_by_aggregate, group_by_all, within_bin_dispersion, AggregateFunction,
};
use viewseeker_dataset::sample::{bernoulli_sample, fixed_size_sample};
use viewseeker_dataset::{BinSpec, Column, Predicate, RowSet, Schema, Table};

fn arb_rowset(universe: usize) -> impl Strategy<Value = RowSet> {
    proptest::collection::vec(0u32..universe as u32, 0..universe * 2)
        .prop_map(|ids| RowSet::from_ids(ids).unwrap())
}

fn arb_table() -> impl Strategy<Value = Table> {
    (1usize..100).prop_flat_map(|n| {
        (
            proptest::collection::vec(0u32..3, n),
            proptest::collection::vec(-10.0f64..10.0, n),
        )
            .prop_map(|(cats, measures)| {
                let schema = Schema::builder()
                    .categorical_dimension("c")
                    .measure("m")
                    .build()
                    .unwrap();
                let labels = vec!["x".into(), "y".into(), "z".into()];
                Table::new(
                    schema,
                    vec![
                        Column::categorical_from_codes(cats, labels).unwrap(),
                        Column::numeric(measures),
                    ],
                )
                .unwrap()
            })
    })
}

const UNIVERSE: usize = 40;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rowset_union_intersect_laws(
        a in arb_rowset(UNIVERSE),
        b in arb_rowset(UNIVERSE),
        c in arb_rowset(UNIVERSE),
    ) {
        // Commutativity.
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        // Associativity.
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.intersect(&b).intersect(&c), a.intersect(&b.intersect(&c)));
        // Absorption.
        prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
        prop_assert_eq!(a.intersect(&a.union(&b)), a.clone());
        // Idempotence.
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.intersect(&a), a.clone());
    }

    #[test]
    fn rowset_complement_involution(a in arb_rowset(UNIVERSE)) {
        prop_assert_eq!(a.complement(UNIVERSE).complement(UNIVERSE), a.clone());
        // Complement partitions the universe.
        let comp = a.complement(UNIVERSE);
        prop_assert_eq!(a.len() + comp.len(), UNIVERSE);
        prop_assert!(a.intersect(&comp).is_empty());
    }

    #[test]
    fn inclusion_exclusion(a in arb_rowset(UNIVERSE), b in arb_rowset(UNIVERSE)) {
        prop_assert_eq!(
            a.union(&b).len() + a.intersect(&b).len(),
            a.len() + b.len()
        );
    }

    #[test]
    fn predicate_results_are_within_the_universe(table in arb_table(), lo in -10.0f64..10.0) {
        let preds = [
            Predicate::True,
            Predicate::eq("c", "y"),
            Predicate::range("m", lo, lo + 5.0),
            Predicate::Not(Box::new(Predicate::eq("c", "x"))),
        ];
        for p in preds {
            let rows = p.evaluate(&table).unwrap();
            prop_assert!(rows.len() <= table.row_count());
            prop_assert!(rows.ids().iter().all(|r| (*r as usize) < table.row_count()));
        }
    }

    #[test]
    fn predicate_and_own_negation_partition(table in arb_table()) {
        let p = Predicate::eq("c", "x");
        let yes = p.evaluate(&table).unwrap();
        let no = Predicate::Not(Box::new(p)).evaluate(&table).unwrap();
        prop_assert!(yes.intersect(&no).is_empty());
        prop_assert_eq!(yes.len() + no.len(), table.row_count());
    }

    #[test]
    fn bin_assignment_is_total_and_in_range(
        values in proptest::collection::vec(-1000.0f64..1000.0, 1..80),
        bins in 1usize..12,
    ) {
        let col = Column::numeric(values.clone());
        let spec = BinSpec::equal_width_of(&col, bins).unwrap();
        let assigned = spec.assign(&col).unwrap();
        prop_assert_eq!(assigned.len(), values.len());
        prop_assert!(assigned.iter().all(|b| (*b as usize) < bins));
    }

    #[test]
    fn samples_are_subsets(rows in arb_rowset(UNIVERSE), frac in 0.0f64..1.0, k in 0usize..50) {
        let s = bernoulli_sample(&rows, frac, 11);
        prop_assert!(s.ids().iter().all(|id| rows.contains(*id)));
        let f = fixed_size_sample(&rows, k, 11);
        prop_assert_eq!(f.len(), k.min(rows.len()));
        prop_assert!(f.ids().iter().all(|id| rows.contains(*id)));
    }

    #[test]
    fn shared_aggregation_equals_individual(table in arb_table(), frac in 0.0f64..1.0) {
        let rows = bernoulli_sample(&table.all_rows(), frac, 17);
        let spec = BinSpec::categorical_of(table.column_by_name("c").unwrap()).unwrap();
        let all = group_by_all(&table, &rows, "c", &spec, "m").unwrap();
        for f in AggregateFunction::all() {
            let single = group_by_aggregate(&table, &rows, "c", &spec, "m", f).unwrap();
            prop_assert_eq!(all.aggregates(f), single.aggregates.as_slice());
        }
        let disp = within_bin_dispersion(&table, &rows, "c", &spec, "m").unwrap();
        prop_assert!((all.dispersion - disp).abs() < 1e-9);
    }

    #[test]
    fn avg_is_bounded_by_min_and_max(table in arb_table()) {
        let spec = BinSpec::categorical_of(table.column_by_name("c").unwrap()).unwrap();
        let all = group_by_all(&table, &table.all_rows(), "c", &spec, "m").unwrap();
        for b in 0..spec.bin_count() {
            if all.counts[b] > 0 {
                prop_assert!(all.mins[b] <= all.avgs[b] + 1e-9);
                prop_assert!(all.avgs[b] <= all.maxs[b] + 1e-9);
            }
        }
    }
}
