//! Minimal CSV codec.
//!
//! Enough of RFC 4180 to round-trip the generated datasets: comma separation,
//! double-quote quoting with `""` escapes, a header row, and `\n`/`\r\n` line
//! endings. Hand-rolled to keep the workspace free of I/O dependencies.

use std::io::{BufRead, Write};

use crate::column::Column;
use crate::schema::{AttributeRole, ColumnMeta, ColumnType, Schema};
use crate::table::Table;
use crate::DatasetError;

/// Writes `table` as CSV with a header row.
///
/// # Errors
///
/// Returns [`DatasetError::Csv`] on I/O failure.
pub fn write_csv<W: Write>(table: &Table, mut out: W) -> Result<(), DatasetError> {
    let io = |e: std::io::Error| DatasetError::Csv(e.to_string());
    let header: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| quote_field(&c.name))
        .collect();
    writeln!(out, "{}", header.join(",")).map_err(io)?;
    for row in 0..table.row_count() {
        let mut fields = Vec::with_capacity(table.schema().len());
        for ci in 0..table.schema().len() {
            let field = match table.column(ci) {
                Column::Categorical { .. } => quote_field(table.column(ci).category_at(row)),
                Column::Numeric(values) => format_number(values[row]),
            };
            fields.push(field);
        }
        writeln!(out, "{}", fields.join(",")).map_err(io)?;
    }
    Ok(())
}

/// Reads a CSV produced by [`write_csv`] back into a table, using `schema`
/// to decide each column's type and role.
///
/// # Errors
///
/// Returns [`DatasetError::Csv`] for malformed input (wrong field counts,
/// unparseable numbers, header mismatch) and propagates table-construction
/// errors.
pub fn read_csv<R: BufRead>(schema: &Schema, input: R) -> Result<Table, DatasetError> {
    let mut lines = CsvRecords::new(input);
    let header = lines
        .next()
        .ok_or_else(|| DatasetError::Csv("empty input".into()))??;
    let expected: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
    if header != expected {
        return Err(DatasetError::Csv(format!(
            "header mismatch: got {header:?}, expected {expected:?}"
        )));
    }

    let mut cat_data: Vec<Vec<String>> = vec![Vec::new(); schema.len()];
    let mut num_data: Vec<Vec<f64>> = vec![Vec::new(); schema.len()];
    for record in lines {
        let record = record?;
        if record.len() != schema.len() {
            return Err(DatasetError::Csv(format!(
                "row has {} fields, expected {}",
                record.len(),
                schema.len()
            )));
        }
        let fields = record.iter().zip(schema.columns());
        for ((field, meta), (cat, num)) in fields.zip(cat_data.iter_mut().zip(num_data.iter_mut()))
        {
            match meta.column_type {
                ColumnType::Categorical => cat.push(field.clone()),
                ColumnType::Numeric => num.push(field.parse::<f64>().map_err(|_| {
                    DatasetError::Csv(format!("cannot parse {field:?} as a number"))
                })?),
            }
        }
    }

    let columns = schema
        .columns()
        .iter()
        .zip(cat_data.iter().zip(num_data.iter_mut()))
        .map(|(meta, (cat, num))| match meta.column_type {
            ColumnType::Categorical => Column::categorical_from_values(cat),
            ColumnType::Numeric => Column::numeric(std::mem::take(num)),
        })
        .collect();
    Table::new(schema.clone(), columns)
}

/// Infers a schema from a CSV header using a naming convention: columns whose
/// names start with `m_` become numeric measures, columns starting with `n_`
/// become numeric dimensions (grouped via equal-width binning), and everything
/// else a categorical dimension.
///
/// # Errors
///
/// [`DatasetError::Csv`] on empty input; schema validation errors otherwise.
pub fn infer_schema<R: BufRead>(input: R) -> Result<Schema, DatasetError> {
    let mut lines = CsvRecords::new(input);
    let header = lines
        .next()
        .ok_or_else(|| DatasetError::Csv("empty input".into()))??;
    let metas = header
        .into_iter()
        .map(|name| {
            let is_measure = name.starts_with("m_");
            let is_numeric_dim = name.starts_with("n_");
            ColumnMeta {
                column_type: if is_measure || is_numeric_dim {
                    ColumnType::Numeric
                } else {
                    ColumnType::Categorical
                },
                role: if is_measure {
                    AttributeRole::Measure
                } else {
                    AttributeRole::Dimension
                },
                name,
            }
        })
        .collect();
    Schema::new(metas)
}

fn quote_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

fn format_number(v: f64) -> String {
    // Round-trippable f64 formatting.
    let mut s = format!("{v}");
    if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
        s.push_str(".0");
    }
    s
}

/// Iterator over parsed CSV records.
struct CsvRecords<R: BufRead> {
    input: R,
    buf: String,
}

impl<R: BufRead> CsvRecords<R> {
    fn new(input: R) -> Self {
        Self {
            input,
            buf: String::new(),
        }
    }
}

impl<R: BufRead> Iterator for CsvRecords<R> {
    type Item = Result<Vec<String>, DatasetError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.buf.clear();
        // A record may span lines if a quoted field contains newlines; keep
        // reading until quotes balance.
        loop {
            let start = self.buf.len();
            match self.input.read_line(&mut self.buf) {
                Ok(0) if self.buf.is_empty() => return None,
                Ok(0) => break,
                Ok(_) => {
                    let quotes = self.buf.bytes().filter(|b| *b == b'"').count();
                    if quotes % 2 == 0 {
                        break;
                    }
                    // Unbalanced: the newline we just consumed belongs to a
                    // quoted field; continue reading.
                    let _ = start;
                }
                Err(e) => return Some(Err(DatasetError::Csv(e.to_string()))),
            }
        }
        let line = self.buf.trim_end_matches(['\n', '\r']);
        if line.is_empty() {
            return self.next();
        }
        Some(parse_record(line))
    }
}

fn parse_record(line: &str) -> Result<Vec<String>, DatasetError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' if field.is_empty() => in_quotes = true,
                '"' => return Err(DatasetError::Csv("stray quote mid-field".into())),
                ',' => fields.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(DatasetError::Csv("unterminated quoted field".into()));
    }
    fields.push(field);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn demo_table() -> Table {
        let schema = Schema::builder()
            .categorical_dimension("city")
            .measure("m_sales")
            .build()
            .unwrap();
        Table::new(
            schema,
            vec![
                Column::categorical_from_values(&["NY", "LA, CA", "chi\"town"]),
                Column::numeric(vec![1.5, -2.0, 1e10]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_table() {
        let t = demo_table();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(t.schema(), Cursor::new(&buf)).unwrap();
        assert_eq!(back.row_count(), 3);
        assert_eq!(back.column(0).category_at(1), "LA, CA");
        assert_eq!(back.column(0).category_at(2), "chi\"town");
        assert_eq!(back.numeric_values("m_sales").unwrap(), &[1.5, -2.0, 1e10]);
    }

    #[test]
    fn quoting_special_characters() {
        assert_eq!(quote_field("plain"), "plain");
        assert_eq!(quote_field("a,b"), "\"a,b\"");
        assert_eq!(quote_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn infer_schema_by_convention() {
        let csv = "region,n_age,m_profit\nwest,41,1.0\n";
        let s = infer_schema(Cursor::new(csv)).unwrap();
        assert_eq!(s.dimension_names(), vec!["region", "n_age"]);
        assert_eq!(s.measure_names(), vec!["m_profit"]);
        assert_eq!(
            s.column("region").unwrap().column_type,
            ColumnType::Categorical
        );
        assert_eq!(s.column("n_age").unwrap().column_type, ColumnType::Numeric);
    }

    #[test]
    fn header_mismatch_rejected() {
        let t = demo_table();
        let wrong = Schema::builder()
            .categorical_dimension("other")
            .measure("m_sales")
            .build()
            .unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        assert!(matches!(
            read_csv(&wrong, Cursor::new(&buf)),
            Err(DatasetError::Csv(_))
        ));
    }

    #[test]
    fn bad_number_rejected() {
        let schema = Schema::builder().measure("m_x").build().unwrap();
        let csv = "m_x\nnot_a_number\n";
        assert!(matches!(
            read_csv(&schema, Cursor::new(csv)),
            Err(DatasetError::Csv(_))
        ));
    }

    #[test]
    fn wrong_field_count_rejected() {
        let schema = Schema::builder()
            .categorical_dimension("a")
            .measure("m_b")
            .build()
            .unwrap();
        let csv = "a,m_b\nonly_one_field\n";
        assert!(read_csv(&schema, Cursor::new(csv)).is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse_record("\"oops").is_err());
        assert!(parse_record("a\"b").is_err());
    }

    #[test]
    fn empty_lines_are_skipped() {
        let schema = Schema::builder()
            .categorical_dimension("a")
            .build()
            .unwrap();
        let csv = "a\n\nx\n\n";
        let t = read_csv(&schema, Cursor::new(csv)).unwrap();
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn quoted_newline_inside_field() {
        let schema = Schema::builder()
            .categorical_dimension("a")
            .build()
            .unwrap();
        let csv = "a\n\"line1\nline2\"\n";
        let t = read_csv(&schema, Cursor::new(csv)).unwrap();
        assert_eq!(t.column(0).category_at(0), "line1\nline2");
    }
}
