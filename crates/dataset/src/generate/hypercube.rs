//! Hypercube query generation.
//!
//! The paper's simulated study "created a hypercube in the recording space to
//! represent DQ, which is a subset of data specified by a query", with a
//! target cardinality ratio of 0.5% (Table 1). [`hypercube_query`] constructs
//! such a query for any table: a conjunction of per-attribute constraints —
//! value subsets on categorical dimensions, intervals on numeric dimensions —
//! greedily tightened until the selectivity falls at or below the target.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::column::Column;
use crate::predicate::Predicate;
use crate::query::SelectQuery;
use crate::schema::AttributeRole;
use crate::table::Table;
use crate::DatasetError;

/// Configuration for the hypercube generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HypercubeConfig {
    /// Target fraction of rows `DQ` should contain (paper: 0.005).
    pub target_selectivity: f64,
    /// How far each tightening step shrinks a numeric interval (0 < f < 1).
    pub shrink_factor: f64,
    /// Upper bound on tightening iterations (safety valve).
    pub max_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HypercubeConfig {
    fn default() -> Self {
        Self {
            target_selectivity: 0.005,
            shrink_factor: 0.6,
            max_steps: 256,
            seed: 0xC0BE,
        }
    }
}

/// Per-attribute constraint of the evolving hypercube.
#[derive(Debug, Clone)]
enum Side {
    Interval { lo: f64, hi: f64, full: (f64, f64) },
    Values { kept: Vec<String>, all: Vec<String> },
}

/// Builds a hypercube query over `table`'s dimension attributes whose
/// selectivity is at most `config.target_selectivity` (or as close as
/// `max_steps` tightening rounds allow), and returns it together with its
/// achieved selectivity.
///
/// # Errors
///
/// * [`DatasetError::Invalid`] for a non-positive target, a degenerate
///   shrink factor, or a table without dimension attributes;
/// * evaluation errors from the predicate engine.
pub fn hypercube_query(
    table: &Table,
    config: &HypercubeConfig,
) -> Result<(SelectQuery, f64), DatasetError> {
    if !(config.target_selectivity > 0.0 && config.target_selectivity <= 1.0) {
        return Err(DatasetError::Invalid(format!(
            "target selectivity {} out of (0, 1]",
            config.target_selectivity
        )));
    }
    if !(config.shrink_factor > 0.0 && config.shrink_factor < 1.0) {
        return Err(DatasetError::Invalid(format!(
            "shrink factor {} out of (0, 1)",
            config.shrink_factor
        )));
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sides: Vec<(String, Side)> = Vec::new();
    for meta in table.schema().columns() {
        if meta.role != AttributeRole::Dimension {
            continue;
        }
        let col = table.column_by_name(&meta.name)?;
        let side = match col {
            Column::Numeric(_) => {
                let (lo, hi) = col.numeric_range().ok_or_else(|| {
                    DatasetError::Invalid(format!("dimension {} is empty", meta.name))
                })?;
                Side::Interval {
                    lo,
                    hi: next_up(hi),
                    full: (lo, next_up(hi)),
                }
            }
            Column::Categorical { dictionary, .. } => Side::Values {
                kept: dictionary.clone(),
                all: dictionary.clone(),
            },
        };
        sides.push((meta.name.clone(), side));
    }
    if sides.is_empty() {
        return Err(DatasetError::Invalid(
            "table has no dimension attributes".into(),
        ));
    }

    let mut best = build_query(&sides);
    let mut best_sel = best.execute_with_selectivity(table)?.1;
    for _ in 0..config.max_steps {
        if best_sel <= config.target_selectivity {
            break;
        }
        // Tighten one randomly chosen side.
        let pick = rng.gen_range(0..sides.len());
        let (_, side) = &mut sides[pick];
        match side {
            Side::Interval { lo, hi, full } => {
                let width = *hi - *lo;
                let new_width = (width * config.shrink_factor).max(f64::MIN_POSITIVE);
                let span = full.1 - full.0;
                let slack = (span - new_width).max(0.0);
                let start = full.0 + rng.gen::<f64>() * slack;
                *lo = start;
                *hi = start + new_width;
            }
            Side::Values { kept, all } => {
                if kept.len() > 1 {
                    let target_len =
                        ((kept.len() as f64 * config.shrink_factor).floor() as usize).max(1);
                    let mut pool = all.clone();
                    pool.shuffle(&mut rng);
                    pool.truncate(target_len);
                    *kept = pool;
                }
            }
        }
        let candidate = build_query(&sides);
        let sel = candidate.execute_with_selectivity(table)?.1;
        // Keep only non-empty refinements; an empty DQ makes every view
        // degenerate.
        if sel > 0.0 {
            best = candidate;
            best_sel = sel;
        }
    }
    Ok((best, best_sel))
}

fn build_query(sides: &[(String, Side)]) -> SelectQuery {
    let mut conjuncts = Vec::with_capacity(sides.len());
    for (name, side) in sides {
        match side {
            Side::Interval { lo, hi, full } => {
                if (*lo, *hi) != *full {
                    conjuncts.push(Predicate::range(name.clone(), *lo, *hi));
                }
            }
            Side::Values { kept, all } => {
                if kept.len() < all.len() {
                    conjuncts.push(Predicate::is_in(name.clone(), kept.clone()));
                }
            }
        }
    }
    SelectQuery::new(Predicate::And(conjuncts))
}

/// Smallest f64 strictly greater than `x` (so ranges include the max value).
fn next_up(x: f64) -> f64 {
    if x == f64::INFINITY {
        x
    } else {
        let bits = x.to_bits();
        let next = if x >= 0.0 { bits + 1 } else { bits - 1 };
        f64::from_bits(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::diab::{generate_diab, DiabConfig};
    use crate::generate::syn::{generate_syn, SynConfig};

    #[test]
    fn reaches_target_on_numeric_table() {
        let t = generate_syn(&SynConfig::small(50_000, 1)).unwrap();
        let (q, sel) = hypercube_query(
            &t,
            &HypercubeConfig {
                target_selectivity: 0.01,
                ..HypercubeConfig::default()
            },
        )
        .unwrap();
        assert!(sel > 0.0 && sel <= 0.02, "selectivity {sel}");
        let rows = q.execute(&t).unwrap();
        assert!(!rows.is_empty());
    }

    #[test]
    fn reaches_target_on_categorical_table() {
        let t = generate_diab(&DiabConfig::small(50_000, 2)).unwrap();
        let (q, sel) = hypercube_query(
            &t,
            &HypercubeConfig {
                target_selectivity: 0.02,
                ..HypercubeConfig::default()
            },
        )
        .unwrap();
        assert!(sel > 0.0, "non-empty DQ");
        // Categorical tightening is coarse; allow a generous band above the
        // target but require meaningful restriction.
        assert!(sel <= 0.2, "selectivity {sel}");
        assert!(!q.execute(&t).unwrap().is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let t = generate_syn(&SynConfig::small(20_000, 7)).unwrap();
        let cfg = HypercubeConfig::default();
        let (q1, s1) = hypercube_query(&t, &cfg).unwrap();
        let (q2, s2) = hypercube_query(&t, &cfg).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(q1.execute(&t).unwrap().ids(), q2.execute(&t).unwrap().ids());
    }

    #[test]
    fn trivial_target_keeps_everything() {
        let t = generate_syn(&SynConfig::small(1000, 3)).unwrap();
        let (q, sel) = hypercube_query(
            &t,
            &HypercubeConfig {
                target_selectivity: 1.0,
                ..HypercubeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(sel, 1.0);
        assert_eq!(q.execute(&t).unwrap().len(), 1000);
    }

    #[test]
    fn invalid_configs_rejected() {
        let t = generate_syn(&SynConfig::small(100, 3)).unwrap();
        assert!(hypercube_query(
            &t,
            &HypercubeConfig {
                target_selectivity: 0.0,
                ..HypercubeConfig::default()
            }
        )
        .is_err());
        assert!(hypercube_query(
            &t,
            &HypercubeConfig {
                shrink_factor: 1.0,
                ..HypercubeConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn next_up_is_strictly_greater() {
        for x in [0.0, 1.0, -1.0, 1e300] {
            assert!(next_up(x) > x);
        }
        assert_eq!(next_up(f64::INFINITY), f64::INFINITY);
    }
}
