//! A DIAB-like categorical dataset.
//!
//! The paper's DIAB testbed is a 100k-record categorical dataset of diabetic
//! patients with, after preprocessing, 7 dimension attributes of varying
//! cardinality and 8 measure attributes (280 distinct views). The original
//! preprocessing is unspecified, so this generator produces a *synthetic
//! stand-in with the same shape* and — crucially — *planted structure*:
//!
//! * dimension attributes draw from skewed (Zipf-like) categorical
//!   distributions of mixed cardinality, mimicking clinical codes;
//! * each measure is a base signal plus per-dimension-value effects for a
//!   couple of randomly chosen dimensions plus Gaussian noise, so grouping by
//!   the "right" dimension reveals genuine deviation while other groupings
//!   look flat — exactly the property view recommendation exploits.
//!
//! See DESIGN.md §3 for why this substitution preserves the experiments'
//! behaviour.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution as RandDistribution, Normal};

use crate::column::Column;
use crate::executor::strict_sum;
use crate::schema::Schema;
use crate::table::Table;
use crate::DatasetError;

/// Configuration for the DIAB-like generator. Defaults reproduce Table 1's
/// shape.
#[derive(Debug, Clone, PartialEq)]
pub struct DiabConfig {
    /// Number of records (paper: 100,000).
    pub rows: usize,
    /// Cardinality of each dimension attribute (paper: 7 attributes of
    /// "variable" cardinality).
    pub dimension_cardinalities: Vec<usize>,
    /// Number of measure attributes (paper: 8).
    pub measures: usize,
    /// How many dimensions influence each measure (planted correlations).
    pub effects_per_measure: usize,
    /// Standard deviation of the per-row Gaussian noise on measures.
    pub noise_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DiabConfig {
    fn default() -> Self {
        Self {
            rows: 100_000,
            dimension_cardinalities: vec![2, 3, 4, 5, 6, 8, 10],
            measures: 8,
            effects_per_measure: 2,
            noise_std: 1.0,
            seed: 0xD1AB_D1AB,
        }
    }
}

impl DiabConfig {
    /// A laptop-scale variant keeping Table 1's attribute shape.
    #[must_use]
    pub fn small(rows: usize, seed: u64) -> Self {
        Self {
            rows,
            seed,
            ..Self::default()
        }
    }
}

/// Generates the DIAB-like table: categorical dimensions `a0..a6` (by
/// default) and measures `m0..m7`.
///
/// # Errors
///
/// Returns [`DatasetError::Invalid`] for zero rows/measures, an empty
/// cardinality list, or a zero cardinality.
pub fn generate_diab(config: &DiabConfig) -> Result<Table, DatasetError> {
    if config.rows == 0 {
        return Err(DatasetError::Invalid("rows must be positive".into()));
    }
    if config.measures == 0 {
        return Err(DatasetError::Invalid("need at least one measure".into()));
    }
    if config.dimension_cardinalities.is_empty() {
        return Err(DatasetError::Invalid("need at least one dimension".into()));
    }
    if config.dimension_cardinalities.contains(&0) {
        return Err(DatasetError::Invalid(
            "dimension cardinality must be positive".into(),
        ));
    }

    let mut builder = Schema::builder();
    for d in 0..config.dimension_cardinalities.len() {
        builder = builder.categorical_dimension(format!("a{d}"));
    }
    for m in 0..config.measures {
        builder = builder.measure(format!("m{m}"));
    }
    let schema = builder.build()?;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_dims = config.dimension_cardinalities.len();

    // --- dimension columns: Zipf-ish skew over each dictionary ---
    let mut dim_codes: Vec<Vec<u32>> = Vec::with_capacity(n_dims);
    let mut columns: Vec<Column> = Vec::with_capacity(n_dims + config.measures);
    for (d, &card) in config.dimension_cardinalities.iter().enumerate() {
        // weights ∝ 1/(rank+1): mild skew, every value still well-populated.
        let weights: Vec<f64> = (0..card).map(|r| 1.0 / (r as f64 + 1.0)).collect();
        let total: f64 = strict_sum(weights.iter().copied());
        let codes: Vec<u32> = (0..config.rows)
            .map(|_| {
                let mut u = rng.gen::<f64>() * total;
                for (code, w) in weights.iter().enumerate() {
                    if u < *w {
                        return code as u32;
                    }
                    u -= w;
                }
                (card - 1) as u32
            })
            .collect();
        let dictionary: Vec<String> = (0..card).map(|v| format!("a{d}_v{v}")).collect();
        dim_codes.push(codes.clone());
        columns.push(Column::categorical_from_codes(codes, dictionary)?);
    }

    // --- measure columns: base + planted per-value effects + noise ---
    let noise = Normal::new(0.0, config.noise_std.max(1e-12))
        .map_err(|e| DatasetError::Invalid(format!("bad noise_std: {e}")))?;
    for m in 0..config.measures {
        let base = 10.0 + m as f64 * 2.0;
        // Choose which dimensions drive this measure and an effect size per
        // dictionary value of each chosen dimension.
        let k = config.effects_per_measure.min(n_dims);
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        while chosen.len() < k {
            let d = rng.gen_range(0..n_dims);
            if !chosen.contains(&d) {
                chosen.push(d);
            }
        }
        let effects: Vec<Vec<f64>> = chosen
            .iter()
            .map(|&d| {
                let cardinality = config.dimension_cardinalities.get(d).copied().unwrap_or(0);
                (0..cardinality).map(|_| rng.gen_range(-3.0..3.0)).collect()
            })
            .collect();

        let values: Vec<f64> = (0..config.rows)
            .map(|row| {
                let mut v = base;
                for (effect, &d) in effects.iter().zip(&chosen) {
                    let code = dim_codes
                        .get(d)
                        .and_then(|codes| codes.get(row))
                        .map_or(0, |&c| c as usize);
                    v += effect.get(code).copied().unwrap_or_default();
                }
                v + noise.sample(&mut rng)
            })
            .collect();
        columns.push(Column::numeric(values));
    }

    Table::new(schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{group_by_aggregate, AggregateFunction};
    use crate::binning::BinSpec;

    #[test]
    fn shape_matches_table_1() {
        let t = generate_diab(&DiabConfig::small(2000, 1)).unwrap();
        assert_eq!(t.dimension_names().len(), 7);
        assert_eq!(t.measure_names().len(), 8);
        assert_eq!(t.row_count(), 2000);
        // 7 dims × 8 measures × 5 aggregates = 280 distinct views (Table 1).
        assert_eq!(7 * 8 * 5, 280);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_diab(&DiabConfig::small(500, 4)).unwrap();
        let b = generate_diab(&DiabConfig::small(500, 4)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cardinalities_are_respected() {
        let t = generate_diab(&DiabConfig::small(5000, 2)).unwrap();
        let expected = [2usize, 3, 4, 5, 6, 8, 10];
        for (d, card) in expected.iter().enumerate() {
            let col = t.column_by_name(&format!("a{d}")).unwrap();
            assert_eq!(col.dictionary().unwrap().len(), *card);
        }
    }

    #[test]
    fn skew_populates_every_value() {
        let t = generate_diab(&DiabConfig::small(20_000, 3)).unwrap();
        let col = t.column_by_name("a6").unwrap();
        let mut counts = vec![0u64; col.dictionary().unwrap().len()];
        for &c in col.codes().unwrap() {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|c| *c > 0), "all values populated");
        assert!(counts[0] > counts[9], "first value is most frequent");
    }

    #[test]
    fn planted_effects_create_group_deviation() {
        // At least one (dimension, measure) pair must show clear between-group
        // mean differences — the structure view recommendation detects.
        let t = generate_diab(&DiabConfig::small(20_000, 5)).unwrap();
        let mut max_spread = 0.0f64;
        for d in 0..7 {
            let dim = format!("a{d}");
            let spec = BinSpec::categorical_of(t.column_by_name(&dim).unwrap()).unwrap();
            for m in 0..8 {
                let r = group_by_aggregate(
                    &t,
                    &t.all_rows(),
                    &dim,
                    &spec,
                    &format!("m{m}"),
                    AggregateFunction::Avg,
                )
                .unwrap();
                let lo = r.aggregates.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = r
                    .aggregates
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max);
                max_spread = max_spread.max(hi - lo);
            }
        }
        assert!(
            max_spread > 1.0,
            "expected a planted effect spread > 1, got {max_spread}"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(generate_diab(&DiabConfig {
            rows: 0,
            ..DiabConfig::default()
        })
        .is_err());
        assert!(generate_diab(&DiabConfig {
            measures: 0,
            ..DiabConfig::default()
        })
        .is_err());
        assert!(generate_diab(&DiabConfig {
            dimension_cardinalities: vec![],
            ..DiabConfig::default()
        })
        .is_err());
        assert!(generate_diab(&DiabConfig {
            dimension_cardinalities: vec![3, 0],
            ..DiabConfig::default()
        })
        .is_err());
    }
}
