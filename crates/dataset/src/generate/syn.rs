//! The SYN synthetic dataset (Table 1).
//!
//! "SYN is a synthetic dataset with 1 million numerical records that contains
//! 5 dimension attributes, 5 measure attributes, and 2 bin configurations
//! (i.e., we create views with 3 bins or 4 bins). The values of the
//! attributes of each record are uniformly distributed."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::column::Column;
use crate::schema::Schema;
use crate::table::Table;
use crate::DatasetError;

/// Configuration for the SYN generator. The default reproduces Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct SynConfig {
    /// Number of records (paper: 1,000,000).
    pub rows: usize,
    /// Number of numeric dimension attributes (paper: 5).
    pub dimensions: usize,
    /// Number of numeric measure attributes (paper: 5).
    pub measures: usize,
    /// Value range `[low, high)` of every attribute.
    pub value_range: (f64, f64),
    /// RNG seed — the generator is fully deterministic per seed.
    pub seed: u64,
}

impl Default for SynConfig {
    fn default() -> Self {
        Self {
            rows: 1_000_000,
            dimensions: 5,
            measures: 5,
            value_range: (0.0, 100.0),
            seed: 0x5EED_5EED,
        }
    }
}

impl SynConfig {
    /// A laptop-scale variant for tests and quick experiments, keeping the
    /// attribute shape of Table 1 but fewer rows.
    #[must_use]
    pub fn small(rows: usize, seed: u64) -> Self {
        Self {
            rows,
            seed,
            ..Self::default()
        }
    }
}

/// Generates the SYN table: `dimensions` numeric dimension attributes named
/// `d0..` and `measures` measure attributes named `m0..`, all i.i.d. uniform
/// over `value_range`.
///
/// # Errors
///
/// Returns [`DatasetError::Invalid`] for zero rows/dimensions/measures or an
/// empty value range.
pub fn generate_syn(config: &SynConfig) -> Result<Table, DatasetError> {
    if config.rows == 0 {
        return Err(DatasetError::Invalid("rows must be positive".into()));
    }
    if config.dimensions == 0 || config.measures == 0 {
        return Err(DatasetError::Invalid(
            "need at least one dimension and one measure".into(),
        ));
    }
    let (lo, hi) = config.value_range;
    if lo >= hi {
        return Err(DatasetError::Invalid(format!(
            "empty value range [{lo}, {hi})"
        )));
    }

    let mut builder = Schema::builder();
    for d in 0..config.dimensions {
        builder = builder.numeric_dimension(format!("d{d}"));
    }
    for m in 0..config.measures {
        builder = builder.measure(format!("m{m}"));
    }
    let schema = builder.build()?;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut columns = Vec::with_capacity(config.dimensions + config.measures);
    for _ in 0..config.dimensions + config.measures {
        let values: Vec<f64> = (0..config.rows).map(|_| rng.gen_range(lo..hi)).collect();
        columns.push(Column::numeric(values));
    }
    Table::new(schema, columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let t = generate_syn(&SynConfig::small(1000, 1)).unwrap();
        assert_eq!(t.row_count(), 1000);
        assert_eq!(t.dimension_names(), vec!["d0", "d1", "d2", "d3", "d4"]);
        assert_eq!(t.measure_names(), vec!["m0", "m1", "m2", "m3", "m4"]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_syn(&SynConfig::small(500, 9)).unwrap();
        let b = generate_syn(&SynConfig::small(500, 9)).unwrap();
        assert_eq!(a, b);
        let c = generate_syn(&SynConfig::small(500, 10)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn values_respect_range() {
        let cfg = SynConfig {
            rows: 2000,
            value_range: (-5.0, 5.0),
            ..SynConfig::default()
        };
        let t = generate_syn(&cfg).unwrap();
        for name in ["d0", "m4"] {
            let (lo, hi) = t.column_by_name(name).unwrap().numeric_range().unwrap();
            assert!(lo >= -5.0 && hi < 5.0);
        }
    }

    #[test]
    fn roughly_uniform() {
        let t = generate_syn(&SynConfig::small(50_000, 3)).unwrap();
        let vals = t.numeric_values("d0").unwrap();
        let below_half = vals.iter().filter(|v| **v < 50.0).count() as f64;
        let frac = below_half / vals.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "fraction below midpoint: {frac}");
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(generate_syn(&SynConfig {
            rows: 0,
            ..SynConfig::default()
        })
        .is_err());
        assert!(generate_syn(&SynConfig {
            dimensions: 0,
            ..SynConfig::default()
        })
        .is_err());
        assert!(generate_syn(&SynConfig {
            value_range: (1.0, 1.0),
            ..SynConfig::default()
        })
        .is_err());
    }
}
