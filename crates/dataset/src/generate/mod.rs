//! Synthetic dataset and workload generators (the paper's testbed, Table 1).
//!
//! * [`syn`] — the SYN dataset: numeric records with uniformly distributed
//!   attribute values (1M rows, 5 dimensions, 5 measures in the paper).
//! * [`diab`] — a DIAB-like dataset: categorical dimension attributes of
//!   mixed cardinality and numeric measures with planted correlations,
//!   standing in for the paper's 100k-record diabetic-patients data (see
//!   DESIGN.md §3 for the substitution rationale).
//! * [`hypercube`] — the hypercube query generator: the paper creates `DQ`
//!   as "a hypercube in the recording space" with a target cardinality ratio
//!   of 0.5%.

pub mod diab;
pub mod hypercube;
pub mod syn;

pub use diab::{generate_diab, DiabConfig};
pub use hypercube::{hypercube_query, HypercubeConfig};
pub use syn::{generate_syn, SynConfig};
