//! Row-oriented table construction.
//!
//! [`Table`] is column-oriented; application code usually has rows. The
//! [`TableBuilder`] accepts typed rows and assembles the columns, validating
//! shape as it goes:
//!
//! ```
//! use viewseeker_dataset::builder::TableBuilder;
//! use viewseeker_dataset::Schema;
//!
//! let schema = Schema::builder()
//!     .categorical_dimension("city")
//!     .measure("sales")
//!     .build()
//!     .unwrap();
//! let mut b = TableBuilder::new(schema);
//! b.push_row(row!["Lisbon", 12.5]).unwrap();
//! b.push_row(row!["Porto", 8.0]).unwrap();
//! let table = b.finish().unwrap();
//! assert_eq!(table.row_count(), 2);
//! # use viewseeker_dataset::row;
//! ```

use crate::column::Column;
use crate::schema::{ColumnType, Schema};
use crate::table::Table;
use crate::DatasetError;

/// One typed cell of a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A categorical value.
    Text(String),
    /// A numeric value.
    Number(f64),
}

impl From<&str> for Cell {
    fn from(v: &str) -> Self {
        Cell::Text(v.to_owned())
    }
}

impl From<String> for Cell {
    fn from(v: String) -> Self {
        Cell::Text(v)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Number(v)
    }
}

impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Number(v as f64)
    }
}

impl From<i32> for Cell {
    fn from(v: i32) -> Self {
        Cell::Number(f64::from(v))
    }
}

/// Builds a row of [`Cell`]s from mixed literals: `row!["NY", 3.5, 7]`.
#[macro_export]
macro_rules! row {
    ($($cell:expr),* $(,)?) => {
        vec![$($crate::builder::Cell::from($cell)),*]
    };
}

/// Accumulates typed rows and produces a [`Table`].
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: Schema,
    text_columns: Vec<Vec<String>>,
    numeric_columns: Vec<Vec<f64>>,
    rows: usize,
}

impl TableBuilder {
    /// Starts a builder for `schema`.
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        let n = schema.len();
        Self {
            schema,
            text_columns: vec![Vec::new(); n],
            numeric_columns: vec![Vec::new(); n],
            rows: 0,
        }
    }

    /// Number of rows accumulated so far.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Appends one row; cells must match the schema in arity and type.
    ///
    /// # Errors
    ///
    /// [`DatasetError::Invalid`] for a wrong arity;
    /// [`DatasetError::ColumnTypeMismatch`] for a cell of the wrong type.
    pub fn push_row(&mut self, cells: Vec<Cell>) -> Result<(), DatasetError> {
        if cells.len() != self.schema.len() {
            return Err(DatasetError::Invalid(format!(
                "row has {} cells, schema has {} columns",
                cells.len(),
                self.schema.len()
            )));
        }
        // Validate the whole row before mutating anything, so a failed push
        // leaves the builder unchanged.
        for (cell, meta) in cells.iter().zip(self.schema.columns()) {
            let ok = matches!(
                (cell, meta.column_type),
                (Cell::Text(_), ColumnType::Categorical) | (Cell::Number(_), ColumnType::Numeric)
            );
            if !ok {
                return Err(DatasetError::ColumnTypeMismatch {
                    column: meta.name.clone(),
                    expected: match meta.column_type {
                        ColumnType::Categorical => "categorical (text cell)",
                        ColumnType::Numeric => "numeric (number cell)",
                    },
                });
            }
        }
        for (i, cell) in cells.into_iter().enumerate() {
            match cell {
                Cell::Text(v) => self.text_columns[i].push(v),
                Cell::Number(v) => self.numeric_columns[i].push(v),
            }
        }
        self.rows += 1;
        Ok(())
    }

    /// Finalizes the table.
    ///
    /// # Errors
    ///
    /// Propagates table-construction errors (none arise for rows accepted by
    /// `push_row`).
    pub fn finish(self) -> Result<Table, DatasetError> {
        let columns = self
            .schema
            .columns()
            .iter()
            .enumerate()
            .map(|(i, meta)| match meta.column_type {
                ColumnType::Categorical => Column::categorical_from_values(&self.text_columns[i]),
                ColumnType::Numeric => Column::numeric(self.numeric_columns[i].clone()),
            })
            .collect();
        Table::new(self.schema, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::builder()
            .categorical_dimension("city")
            .numeric_dimension("age")
            .measure("sales")
            .build()
            .unwrap()
    }

    #[test]
    fn builds_a_table_from_rows() {
        let mut b = TableBuilder::new(schema());
        b.push_row(row!["NY", 34, 100.0]).unwrap();
        b.push_row(row!["LA", 41.5, 80]).unwrap();
        assert_eq!(b.row_count(), 2);
        let t = b.finish().unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.column(0).category_at(1), "LA");
        assert_eq!(t.numeric_values("age").unwrap(), &[34.0, 41.5]);
        assert_eq!(t.numeric_values("sales").unwrap(), &[100.0, 80.0]);
    }

    #[test]
    fn wrong_arity_rejected_without_mutation() {
        let mut b = TableBuilder::new(schema());
        assert!(b.push_row(row!["NY", 34]).is_err());
        assert_eq!(b.row_count(), 0);
        b.push_row(row!["NY", 34, 1.0]).unwrap();
        assert_eq!(b.row_count(), 1);
    }

    #[test]
    fn wrong_type_rejected_without_mutation() {
        let mut b = TableBuilder::new(schema());
        // Text where a number belongs.
        assert!(matches!(
            b.push_row(row!["NY", "not a number", 1.0]),
            Err(DatasetError::ColumnTypeMismatch { .. })
        ));
        // Number where text belongs.
        assert!(b.push_row(row![5, 34, 1.0]).is_err());
        assert_eq!(b.row_count(), 0);
        // Builder still usable.
        b.push_row(row!["OK", 1, 1]).unwrap();
        assert_eq!(b.finish().unwrap().row_count(), 1);
    }

    #[test]
    fn empty_builder_finishes_to_empty_table() {
        let t = TableBuilder::new(schema()).finish().unwrap();
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn cell_conversions() {
        assert_eq!(Cell::from("x"), Cell::Text("x".into()));
        assert_eq!(Cell::from(String::from("y")), Cell::Text("y".into()));
        assert_eq!(Cell::from(2.5), Cell::Number(2.5));
        assert_eq!(Cell::from(3i64), Cell::Number(3.0));
        assert_eq!(Cell::from(4i32), Cell::Number(4.0));
    }
}
