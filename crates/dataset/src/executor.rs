//! Fused multi-group aggregation executor.
//!
//! [`crate::aggregate::group_by_all`] already shares one scan across the five
//! aggregate functions of a `(dimension, measure)` pair, but a view space
//! with `G` such groups still costs `2·G` scans (target and reference row
//! sets separately) plus `2·G` bin-assignment passes. This module fuses
//! *all* groups into a single pass:
//!
//! * each distinct `(dimension, spec)` pair is bin-assigned exactly once;
//! * a target-membership bitmap is built once from `DQ`;
//! * requests are bucketed by `(dimension, spec)`, so every measure of a
//!   dimension shares one bin lookup and one count slot per row;
//! * one scan over `DR` reads each row's measure values once and updates
//!   every bucket's `(count, sum, sq_sum, min, max)` accumulators — into a
//!   *target-hit* half when the bitmap hits, a *complement* half otherwise,
//!   so each row is accumulated exactly once; the reference aggregates are
//!   derived afterwards as `hits + complement`;
//! * target rows absent from `DR` (possible when `DQ` and `DR` are sampled
//!   independently) are swept in one short sequential tail pass.
//!
//! # Parallelism and determinism
//!
//! The scan is parallelized by **row partitions**, not by groups: the row
//! range is cut on a fixed partition grid that depends only on the number of
//! reference rows (never on the thread count), worker threads fill one
//! accumulator block per partition, and the blocks are merged by a strict
//! left fold in ascending partition order. Thread count therefore only
//! decides *which thread* computes a partition — the partition boundaries,
//! the per-partition results, and the merge order are all fixed — so the
//! result is bit-identical for any `threads` value. Row partitioning also
//! load-balances perfectly when the group count is small, where per-group
//! task parallelism degenerates to one oversized task per thread.
//!
//! Relative to a *sequential* scan, both the partition fold and the
//! `hits + complement` derivation of the reference aggregates reassociate
//! floating-point addition, so sums can differ from
//! [`crate::aggregate::group_by_all`] by rounding (ULPs) on arbitrary
//! `f64` data; on exactly-representable values (integers, halves, ...)
//! addition is exact and the fused results are bit-identical to the
//! sequential oracle. Counts, minima, and maxima are order-independent and
//! always match exactly.

use crate::aggregate::GroupByAllResult;
use crate::binning::BinSpec;
use crate::predicate::Predicate;
use crate::selection::RowSet;
use crate::table::Table;
use crate::zones::ZoneMaps;
use crate::DatasetError;

/// Strict-order float sum: a sequential left-to-right fold with a fixed
/// association order.
///
/// Float addition is not associative, so `Iterator::sum::<f64>()` is only
/// deterministic as long as nothing — a rewritten combinator chain, a
/// future parallel adapter — reassociates the reduction. Every float
/// reduction in the determinism-critical crates goes through this helper
/// (vslint rule `float-sum`), which pins the association order the same
/// way the fused scan pins its partition merge order: left fold, source
/// order, every time.
pub fn strict_sum<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    values.into_iter().fold(0.0, |acc, v| acc + v)
}

/// Upper bound on the partition grid: the row range is cut into at most this
/// many partitions regardless of size, so the per-partition accumulator
/// blocks stay O(1) in the table size.
const MAX_PARTITIONS: usize = 64;

/// Lower bound on partition size: below this, per-partition bookkeeping
/// would dominate the scan itself.
const MIN_PARTITION_ROWS: usize = 4096;

/// One `(dimension, measure)` aggregation group to fuse into the scan.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRequest {
    /// Group-by dimension column.
    pub dimension: String,
    /// Bin specification for the dimension (shared by target and reference).
    pub spec: BinSpec,
    /// Measure column to aggregate.
    pub measure: String,
}

/// The fused executor's answer for one [`GroupRequest`]: the same pair of
/// results `2×` [`crate::aggregate::group_by_all`] would have produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedGroupResult {
    /// Aggregates over the target row set (`DQ`).
    pub target: GroupByAllResult,
    /// Aggregates over the reference row set (`DR`).
    pub reference: GroupByAllResult,
}

/// Work counters from one fused execution, for tracing and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FusedScanStats {
    /// Rows visited across all passes (reference scan + target tail).
    pub rows_scanned: u64,
    /// Partitions in the fixed grid over the reference rows.
    pub partitions: usize,
    /// Aggregation groups answered.
    pub groups: usize,
    /// Distinct `(dimension, spec)` bin assignments computed.
    pub bin_assignments: usize,
    /// Sequential passes over row ranges (1 for the fused reference scan,
    /// plus 1 when a target tail pass was needed). The unfused equivalent
    /// would be `2 × groups`.
    pub scans: u64,
    /// Row groups visited while building the DQ row set (zone-pruned
    /// entry points only; 0 when no zone maps were consulted).
    pub rowgroups_scanned: u64,
    /// Row groups the zone maps excluded from the DQ evaluation without
    /// reading a value.
    pub rowgroups_pruned: u64,
}

/// Per-partition accumulator block.
///
/// Counts live in one slot per `(bucket, bin)` — a row lands in a bin
/// regardless of which measure is aggregated, so bucketing requests by
/// `(dimension, spec)` lets every measure of a dimension share one count
/// increment per row. The measure accumulators live in one slot per
/// `(bucket, bin, member)`, laid out member-contiguous
/// (`val_base + bin·M + member`) so one row's update is a short loop over
/// adjacent slots the compiler can vectorize.
#[derive(Debug)]
struct AccBlock {
    counts: Vec<u64>,
    sums: Vec<f64>,
    sq_sums: Vec<f64>,
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl AccBlock {
    fn new(count_slots: usize, value_slots: usize) -> Self {
        AccBlock {
            counts: vec![0; count_slots],
            sums: vec![0.0; value_slots],
            sq_sums: vec![0.0; value_slots],
            mins: vec![f64::INFINITY; value_slots],
            maxs: vec![f64::NEG_INFINITY; value_slots],
        }
    }

    /// Accumulates one row's measure values into the value slots
    /// starting at `base` (the row's bin for the bucket being scanned).
    /// The slices are adjacent and equal-length, so this compiles to
    /// straight-line vector code; the `<`/`>` comparisons keep the scan's
    /// NaN discipline (a NaN never becomes a minimum or maximum).
    #[inline]
    fn accumulate(&mut self, base: usize, vals: &[f64]) {
        let end = base + vals.len();
        let (Some(sums), Some(sq_sums), Some(mins), Some(maxs)) = (
            self.sums.get_mut(base..end),
            self.sq_sums.get_mut(base..end),
            self.mins.get_mut(base..end),
            self.maxs.get_mut(base..end),
        ) else {
            debug_assert!(false, "accumulator slot range out of bounds");
            return;
        };
        // One loop per accumulator array (not one interleaved loop): LLVM's
        // vectorizers give up on the four-way interleaved store pattern but
        // pack each single-array loop — measurably ~1.6x on the whole scan.
        for (s, &v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        for (s, &v) in sq_sums.iter_mut().zip(vals) {
            *s += v * v;
        }
        // Branchless selects (not `f64::min`/`max`, whose NaN handling
        // differs): the comparison is false for NaN, keeping the old
        // value, and the unconditional stores vectorize.
        for (slot, &v) in mins.iter_mut().zip(vals) {
            *slot = if v < *slot { v } else { *slot };
        }
        for (slot, &v) in maxs.iter_mut().zip(vals) {
            *slot = if v > *slot { v } else { *slot };
        }
    }

    /// Folds one half of a double-size partition block into `self`: the
    /// slots starting at `cnt_off` / `val_off` in `other`, `self`'s full
    /// width wide. Same comparison discipline as the scan itself, so a
    /// partial minimum of `+∞` (empty or all-NaN partition) never
    /// overwrites anything.
    fn merge_half(&mut self, other: &AccBlock, cnt_off: usize, val_off: usize) {
        let o_counts = other.counts.get(cnt_off..).unwrap_or(&[]);
        for (c, o) in self.counts.iter_mut().zip(o_counts) {
            *c += o;
        }
        let o_sums = other.sums.get(val_off..).unwrap_or(&[]);
        for (s, o) in self.sums.iter_mut().zip(o_sums) {
            *s += o;
        }
        let o_sq_sums = other.sq_sums.get(val_off..).unwrap_or(&[]);
        for (s, o) in self.sq_sums.iter_mut().zip(o_sq_sums) {
            *s += o;
        }
        let o_mins = other.mins.get(val_off..).unwrap_or(&[]);
        for (slot, &o) in self.mins.iter_mut().zip(o_mins) {
            if o < *slot {
                *slot = o;
            }
        }
        let o_maxs = other.maxs.get(val_off..).unwrap_or(&[]);
        for (slot, &o) in self.maxs.iter_mut().zip(o_maxs) {
            if o > *slot {
                *slot = o;
            }
        }
    }
}

/// Per-bucket inputs to the fused per-row scan: the bucket's bin assignment
/// plus its slot bases in the accumulator block.
struct BucketScan<'a> {
    bins: &'a [u32],
    cnt_base: usize,
    val_base: usize,
}

/// Branch-free scan of one row segment for *all* buckets sharing one member
/// set, monomorphized over the member count `M` so the per-bucket
/// accumulate body is fully unrolled vector code.
///
/// `block` is a double-size partition block: the first `cnt_stride` /
/// `val_stride` slots are the target-hit half, the second the complement
/// half. Each row's `M` values (and their squares) are loaded straight from
/// the measure columns once — `rows` is ascending, so every column streams
/// sequentially — and applied to every bucket's slots in the half the
/// membership mask selects. The half offset is a branchless multiply, so
/// the row loop has no data-dependent branches.
///
/// Precomputing `v·v` outside the bucket loop is bit-identical to squaring
/// inline: Rust's `f64` multiply rounds once either way (no implicit FMA
/// contraction), so [`AccBlock::accumulate`] and this path agree exactly.
#[inline]
fn scan_rows_fixed<const M: usize>(
    block: &mut AccBlock,
    scans: &[BucketScan<'_>],
    rows: &[u32],
    cols: &[&[f64]],
    mask: &[bool],
    cnt_stride: usize,
    val_stride: usize,
) {
    let cols: &[&[f64]; M] = cols.try_into().expect("dispatcher guarantees M columns");
    // Fast path: a contiguous ascending row range (DR is usually the
    // all-rows set, so every partition is one). Re-slicing each input to
    // exactly `n` elements drops the row-id indirection and lets the
    // compiler hoist the bounds checks out of the loop. Same rows in the
    // same order as the general path, so the results are bit-identical.
    if let (Some(&first), Some(&last)) = (rows.first(), rows.last()) {
        let n = rows.len();
        let lo = first as usize;
        if (last as usize) - lo + 1 == n {
            let mask = &mask[lo..lo + n];
            let mut c: [&[f64]; M] = *cols;
            for (s, col) in c.iter_mut().zip(cols) {
                *s = &col[lo..lo + n];
            }
            let bins_s: Vec<&[u32]> = scans.iter().map(|s| &s.bins[lo..lo + n]).collect();
            for i in 0..n {
                let mut v = [0.0f64; M];
                let mut sq = [0.0f64; M];
                for j in 0..M {
                    v[j] = c[j][i];
                    sq[j] = v[j] * v[j];
                }
                let miss = usize::from(!mask[i]);
                let cnt_off = miss * cnt_stride;
                let val_off = miss * val_stride;
                for (scan, bins) in scans.iter().zip(&bins_s) {
                    let bin = bins[i] as usize;
                    block.counts[cnt_off + scan.cnt_base + bin] += 1;
                    let base = val_off + scan.val_base + bin * M;
                    let sums = &mut block.sums[base..base + M];
                    let sq_sums = &mut block.sq_sums[base..base + M];
                    let mins = &mut block.mins[base..base + M];
                    let maxs = &mut block.maxs[base..base + M];
                    for j in 0..M {
                        sums[j] += v[j];
                    }
                    for j in 0..M {
                        sq_sums[j] += sq[j];
                    }
                    for j in 0..M {
                        mins[j] = if v[j] < mins[j] { v[j] } else { mins[j] };
                    }
                    for j in 0..M {
                        maxs[j] = if v[j] > maxs[j] { v[j] } else { maxs[j] };
                    }
                }
            }
            return;
        }
    }
    for &row in rows {
        let r = row as usize;
        let mut v = [0.0f64; M];
        let mut sq = [0.0f64; M];
        for j in 0..M {
            v[j] = cols[j][r];
            sq[j] = v[j] * v[j];
        }
        let miss = usize::from(!mask[r]);
        let cnt_off = miss * cnt_stride;
        let val_off = miss * val_stride;
        for scan in scans {
            let bin = scan.bins[r] as usize;
            block.counts[cnt_off + scan.cnt_base + bin] += 1;
            let base = val_off + scan.val_base + bin * M;
            let sums = &mut block.sums[base..base + M];
            let sq_sums = &mut block.sq_sums[base..base + M];
            let mins = &mut block.mins[base..base + M];
            let maxs = &mut block.maxs[base..base + M];
            for j in 0..M {
                sums[j] += v[j];
            }
            for j in 0..M {
                sq_sums[j] += sq[j];
            }
            for j in 0..M {
                mins[j] = if v[j] < mins[j] { v[j] } else { mins[j] };
            }
            for j in 0..M {
                maxs[j] = if v[j] > maxs[j] { v[j] } else { maxs[j] };
            }
        }
    }
}

/// [`scan_rows_fixed`] dispatcher: monomorphic up to eight members (the
/// workloads' measure counts), generic fallback beyond.
#[allow(clippy::too_many_arguments)]
fn scan_rows(
    block: &mut AccBlock,
    scans: &[BucketScan<'_>],
    rows: &[u32],
    cols: &[&[f64]],
    mask: &[bool],
    cnt_stride: usize,
    val_stride: usize,
) {
    match cols.len() {
        1 => scan_rows_fixed::<1>(block, scans, rows, cols, mask, cnt_stride, val_stride),
        2 => scan_rows_fixed::<2>(block, scans, rows, cols, mask, cnt_stride, val_stride),
        3 => scan_rows_fixed::<3>(block, scans, rows, cols, mask, cnt_stride, val_stride),
        4 => scan_rows_fixed::<4>(block, scans, rows, cols, mask, cnt_stride, val_stride),
        5 => scan_rows_fixed::<5>(block, scans, rows, cols, mask, cnt_stride, val_stride),
        6 => scan_rows_fixed::<6>(block, scans, rows, cols, mask, cnt_stride, val_stride),
        7 => scan_rows_fixed::<7>(block, scans, rows, cols, mask, cnt_stride, val_stride),
        8 => scan_rows_fixed::<8>(block, scans, rows, cols, mask, cnt_stride, val_stride),
        m => {
            let mut vals = vec![0.0f64; m];
            for &row in rows {
                let r = row as usize;
                for (v, col) in vals.iter_mut().zip(cols) {
                    *v = col.get(r).copied().unwrap_or_default();
                }
                let miss = usize::from(!mask.get(r).copied().unwrap_or(false));
                for scan in scans {
                    let bin = scan.bins.get(r).map_or(0, |&b| b as usize);
                    if let Some(c) = block
                        .counts
                        .get_mut(miss * cnt_stride + scan.cnt_base + bin)
                    {
                        *c += 1;
                    }
                    block.accumulate(miss * val_stride + scan.val_base + bin * m, &vals);
                }
            }
        }
    }
}

/// One fused scan bucket: every request sharing one `(dimension, spec)`
/// pair, with its member measures in first-appearance order and its slot
/// ranges in the accumulator blocks.
#[derive(Debug)]
struct Bucket {
    assign: usize,
    n_bins: usize,
    members: Vec<usize>,
    cnt_base: usize,
    val_base: usize,
}

/// Assembles one request's result from its bucket's slot ranges, finalizing
/// exactly like [`crate::aggregate::group_by_all`]: empty bins get `0.0`
/// min/max/avg, the per-bin SSE is clamped at zero, and an empty selection
/// has dispersion `0.0`.
fn finalize_request(block: &AccBlock, bucket: &Bucket, member: usize) -> GroupByAllResult {
    let n_bins = bucket.n_bins;
    let m = bucket.members.len();
    let bin_counts = block
        .counts
        .get(bucket.cnt_base..bucket.cnt_base + n_bins)
        .unwrap_or(&[]);
    let mut counts = Vec::with_capacity(n_bins);
    let mut count_values = Vec::with_capacity(n_bins);
    let mut sums = Vec::with_capacity(n_bins);
    let mut avgs = Vec::with_capacity(n_bins);
    let mut mins = Vec::with_capacity(n_bins);
    let mut maxs = Vec::with_capacity(n_bins);
    let mut total = 0u64;
    let mut sse = 0.0;
    for (b, &c) in bin_counts.iter().enumerate() {
        counts.push(c);
        total += c;
        let slot = bucket.val_base + b * m + member;
        let stats = if c == 0 {
            // Empty bin: keep the 0.0 min/max/avg defaults — the ±∞
            // sentinels never leak out of the block.
            None
        } else {
            match (
                block.sums.get(slot),
                block.sq_sums.get(slot),
                block.mins.get(slot),
                block.maxs.get(slot),
            ) {
                (Some(&sum), Some(&sq), Some(&mn), Some(&mx)) => Some((sum, sq, mn, mx)),
                _ => None,
            }
        };
        if let Some((sum, sq, mn, mx)) = stats {
            let n = c as f64;
            count_values.push(n);
            sums.push(sum);
            avgs.push(sum / n);
            mins.push(mn);
            maxs.push(mx);
            sse += (sq - sum * sum / n).max(0.0);
        } else {
            count_values.push(0.0);
            sums.push(0.0);
            avgs.push(0.0);
            mins.push(0.0);
            maxs.push(0.0);
        }
    }
    let dispersion = if total == 0 { 0.0 } else { sse / total as f64 };

    GroupByAllResult {
        counts,
        count_values,
        sums,
        avgs,
        mins,
        maxs,
        dispersion,
    }
}

/// Returns the first row id of `rows` that falls outside `n_rows`, if any —
/// the same row the sequential scan would have tripped on first.
fn first_out_of_range(rows: &RowSet, n_rows: usize) -> Option<usize> {
    let ids = rows.ids();
    let cut = ids.partition_point(|&r| (r as usize) < n_rows);
    ids.get(cut).map(|&r| r as usize)
}

/// Executes every requested group over `dq` (target) and `dr` (reference)
/// in one fused partition-parallel pass.
///
/// Each result is what two [`crate::aggregate::group_by_all`] calls for the
/// same `(dimension, spec, measure)` would produce — exactly so for counts,
/// minima, and maxima, and up to partition-merge rounding for the summed
/// quantities (see the module docs for the precise determinism contract).
///
/// `threads <= 1` scans the partitions on the calling thread; larger values
/// spread contiguous partition ranges across scoped worker threads. The
/// result is identical either way.
///
/// # Errors
///
/// * column lookup / type errors from the table;
/// * bin-assignment errors from [`BinSpec::assign`];
/// * [`DatasetError::IndexOutOfRange`] when a row id of either row set
///   exceeds the table's row count.
pub fn fused_group_by_all(
    table: &Table,
    dq: &RowSet,
    dr: &RowSet,
    requests: &[GroupRequest],
    threads: usize,
) -> Result<(Vec<FusedGroupResult>, FusedScanStats), DatasetError> {
    let (raw, stats) = fused_group_by_all_raw(table, dq, dr, requests, threads)?;
    Ok((raw.finalize(), stats))
}

/// [`fused_group_by_all`] with zone-map pruning of the target row set: the
/// DQ predicate is evaluated through
/// [`Predicate::evaluate_pruned`], skipping row groups the zones provably
/// exclude, and the resulting row set feeds the same fused scan. The
/// reference set is always the full table (reference aggregates need every
/// row, so nothing can be pruned there).
///
/// Returns the raw mergeable aggregates, the DQ row set actually used
/// (identical to `dq_predicate.evaluate(table)` — callers can keep it),
/// and stats with `rowgroups_scanned` / `rowgroups_pruned` filled in.
///
/// # Errors
///
/// Predicate evaluation errors plus everything [`fused_group_by_all`]
/// reports.
pub fn fused_group_by_all_pruned(
    table: &Table,
    zones: &ZoneMaps,
    dq_predicate: &Predicate,
    requests: &[GroupRequest],
    threads: usize,
) -> Result<(RawAggregates, RowSet, FusedScanStats), DatasetError> {
    let (dq, prune) = dq_predicate.evaluate_pruned(table, zones)?;
    let dr = table.all_rows();
    let (raw, mut stats) = fused_group_by_all_raw(table, &dq, &dr, requests, threads)?;
    stats.rowgroups_scanned = prune.scanned + prune.included;
    stats.rowgroups_pruned = prune.pruned;
    Ok((raw, dq, stats))
}

/// The fused scan, stopping before finalization: the returned
/// [`RawAggregates`] holds the per-bin `(count, sum, sq_sum, min, max)`
/// accumulators for the target and reference halves, which
/// [`RawAggregates::finalize`] turns into the same results
/// [`fused_group_by_all`] returns — and which
/// [`RawAggregates::merge`] can fold together with the aggregates of an
/// appended row-chunk scanned under the same requests, so appends extend
/// live results without rescanning old rows.
///
/// # Errors
///
/// Same as [`fused_group_by_all`].
pub fn fused_group_by_all_raw(
    table: &Table,
    dq: &RowSet,
    dr: &RowSet,
    requests: &[GroupRequest],
    threads: usize,
) -> Result<(RawAggregates, FusedScanStats), DatasetError> {
    if requests.is_empty() {
        return Ok((
            RawAggregates {
                request_slots: Vec::new(),
                buckets: Vec::new(),
                target: AccBlock::new(0, 0),
                reference: AccBlock::new(0, 0),
            },
            FusedScanStats::default(),
        ));
    }
    let n_rows = table.row_count();
    // Match the sequential scan's error order: target rows are checked
    // first, and the first offending row id is the one reported.
    for rows in [dq, dr] {
        if let Some(index) = first_out_of_range(rows, n_rows) {
            return Err(DatasetError::IndexOutOfRange { index, len: n_rows });
        }
    }

    // Deduplicate bin assignments by (dimension, spec) and measure vectors
    // by name, then bucket the requests by assignment: every measure of one
    // (dimension, spec) rides the same bin lookup and the same count slots.
    let mut assign_keys: Vec<(&str, &BinSpec)> = Vec::new();
    let mut assignments: Vec<Vec<u32>> = Vec::new();
    let mut measure_names: Vec<&str> = Vec::new();
    let mut measures: Vec<&[f64]> = Vec::new();
    // Buckets are 1:1 with `assignments`; `request_slots` maps each request
    // to its `(bucket, member)` pair for reassembly at the end.
    let mut buckets: Vec<Bucket> = Vec::new();
    let mut request_slots: Vec<(usize, usize)> = Vec::with_capacity(requests.len());
    for req in requests {
        let assign = match assign_keys
            .iter()
            .position(|(d, s)| *d == req.dimension && **s == req.spec)
        {
            Some(i) => i,
            None => {
                assign_keys.push((&req.dimension, &req.spec));
                assignments.push(req.spec.assign(table.column_by_name(&req.dimension)?)?);
                buckets.push(Bucket {
                    assign: assignments.len() - 1,
                    n_bins: req.spec.bin_count(),
                    members: Vec::new(),
                    cnt_base: 0,
                    val_base: 0,
                });
                assignments.len() - 1
            }
        };
        let measure = match measure_names.iter().position(|m| *m == req.measure) {
            Some(i) => i,
            None => {
                measure_names.push(&req.measure);
                measures.push(table.numeric_values(&req.measure)?);
                measures.len() - 1
            }
        };
        let Some(bucket) = buckets.get_mut(assign) else {
            return Err(DatasetError::Invalid(
                "fused scan bucket index out of range".into(),
            ));
        };
        let member = match bucket.members.iter().position(|&mi| mi == measure) {
            Some(j) => j,
            None => {
                bucket.members.push(measure);
                bucket.members.len() - 1
            }
        };
        request_slots.push((assign, member));
    }
    let mut count_slots = 0usize;
    let mut value_slots = 0usize;
    for bucket in &mut buckets {
        bucket.cnt_base = count_slots;
        bucket.val_base = value_slots;
        count_slots += bucket.n_bins;
        value_slots += bucket.n_bins * bucket.members.len();
    }
    // Per-bucket measure column slices, resolved once.
    let bucket_cols: Vec<Vec<&[f64]>> = buckets
        .iter()
        .map(|b| {
            b.members
                .iter()
                .filter_map(|&mi| measures.get(mi).copied())
                .collect()
        })
        .collect();
    // Buckets sharing one member list (the common case: every dimension ×
    // the same measures) also share one row-major packed-value buffer per
    // partition, so each bucket's scan reads adjacent packed values instead
    // of gathering from M separate columns.
    let mut set_keys: Vec<&Vec<usize>> = Vec::new();
    let mut set_cols: Vec<&Vec<&[f64]>> = Vec::new();
    let mut bucket_set: Vec<usize> = Vec::with_capacity(buckets.len());
    for (bucket, cols) in buckets.iter().zip(&bucket_cols) {
        let set = match set_keys.iter().position(|k| **k == bucket.members) {
            Some(i) => i,
            None => {
                set_keys.push(&bucket.members);
                set_cols.push(cols);
                set_keys.len() - 1
            }
        };
        bucket_set.push(set);
    }
    // Per-set scan inputs (bin assignment + slot bases per bucket), resolved
    // once and shared by every partition. Buckets stay in declaration order
    // within each set, and bucket slot ranges are disjoint, so fusing a set's
    // buckets into one row loop visits every slot in the same row order as
    // bucket-by-bucket scanning would.
    let set_scans: Vec<Vec<BucketScan<'_>>> = (0..set_keys.len())
        .map(|set| {
            buckets
                .iter()
                .zip(&bucket_set)
                .filter(|&(_, &s)| s == set)
                .filter_map(|(bucket, _)| {
                    assignments.get(bucket.assign).map(|bins| BucketScan {
                        bins,
                        cnt_base: bucket.cnt_base,
                        val_base: bucket.val_base,
                    })
                })
                .collect()
        })
        .collect();

    // Target membership bitmap, built once.
    let mut dq_mask = vec![false; n_rows];
    for &r in dq.ids() {
        if let Some(slot) = dq_mask.get_mut(r as usize) {
            *slot = true;
        }
    }
    // Target rows the reference scan will not visit (DQ ⊄ DR happens when
    // both sets are α-sampled independently).
    let dq_extra: Vec<u32> = {
        let dr_ids = dr.ids();
        let mut i = 0usize;
        dq.ids()
            .iter()
            .copied()
            .filter(|&q| {
                while dr_ids.get(i).is_some_and(|&d| d < q) {
                    i += 1;
                }
                dr_ids.get(i) != Some(&q)
            })
            .collect()
    };

    // Fixed partition grid over the reference rows: depends only on the
    // data, never on `threads`.
    let dr_ids = dr.ids();
    let rows_per_part = dr_ids
        .len()
        .div_ceil(MAX_PARTITIONS)
        .max(MIN_PARTITION_ROWS);
    let n_parts = dr_ids.len().div_ceil(rows_per_part);

    // Row-major within each partition: one pass per member set walks the
    // partition's reference rows in ascending order, reads each row's
    // measure values straight from the columns once (sequential streams —
    // the row ids are sorted), and applies them to every bucket of the set
    // (see [`scan_rows_fixed`]). The assignment vectors and columns stream
    // through the cache exactly once per partition while the accumulator
    // slots stay cache-resident (partition sizing is the blocking factor).
    //
    // Each row is accumulated exactly once — into the target-hit half of the
    // partition block when the bitmap hits, into the complement half
    // otherwise — and the reference aggregates are derived as
    // `hits + complement` after the partition fold. That derivation
    // reassociates reference sums relative to a row-order scan, which is
    // invisible on exactly-representable values (f64 addition is exact
    // there) and within the documented ULP-level contract otherwise;
    // counts, minima, and maxima are order-independent and stay exact. It
    // is also independent of `threads`, so determinism is unaffected.
    let scan_partition = |part: usize| -> AccBlock {
        let start = part * rows_per_part;
        let end = (start + rows_per_part).min(dr_ids.len());
        // Double-size block: [0, slots) is the target-hit half,
        // [slots, 2·slots) the complement half.
        let mut block = AccBlock::new(2 * count_slots, 2 * value_slots);
        let rows = dr_ids.get(start..end).unwrap_or(&[]);
        for (scans, cols) in set_scans.iter().zip(&set_cols) {
            scan_rows(
                &mut block,
                scans,
                rows,
                cols,
                &dq_mask,
                count_slots,
                value_slots,
            );
        }
        block
    };

    // Per-partition blocks in ascending partition order, regardless of how
    // many threads produced them.
    let threads = threads.max(1).min(n_parts.max(1));
    let partials: Vec<AccBlock> = if threads <= 1 {
        (0..n_parts).map(scan_partition).collect()
    } else {
        let chunk = n_parts.div_ceil(threads);
        let parts: Vec<usize> = (0..n_parts).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .chunks(chunk)
                .map(|slice| {
                    let scan_partition = &scan_partition;
                    s.spawn(move || slice.iter().map(|&p| scan_partition(p)).collect::<Vec<_>>())
                })
                .collect();
            let mut all = Vec::with_capacity(n_parts);
            for h in handles {
                match h.join() {
                    Ok(blocks) => all.extend(blocks),
                    Err(_) => {
                        return Err(DatasetError::Invalid("fused scan worker panicked".into()))
                    }
                }
            }
            Ok(all)
        })?
    };

    // Strict left fold in ascending partition order — the determinism
    // contract. (Partial sums start from +0.0 and so can never be -0.0;
    // folding them onto a fresh +0.0 block is therefore bit-exact.) The
    // reference block is the fold of the hit halves followed by the fold of
    // the complement halves — a fixed order, independent of `threads`.
    let mut reference = AccBlock::new(count_slots, value_slots);
    let mut target = AccBlock::new(count_slots, value_slots);
    for part in &partials {
        reference.merge_half(part, 0, 0);
        target.merge_half(part, 0, 0);
    }
    for part in &partials {
        reference.merge_half(part, count_slots, value_slots);
    }
    drop(partials);

    // Sequential tail pass for target rows outside the reference set,
    // always after the fold so the order never depends on `threads`.
    let mut vals: Vec<f64> = Vec::new();
    for (bucket, cols) in buckets.iter().zip(&bucket_cols) {
        let Some(bins) = assignments.get(bucket.assign) else {
            return Err(DatasetError::Invalid(
                "fused scan bucket lost its bin assignment".into(),
            ));
        };
        vals.clear();
        vals.resize(cols.len(), 0.0);
        for &row in &dq_extra {
            let row = row as usize;
            for (v, col) in vals.iter_mut().zip(cols) {
                *v = col.get(row).copied().unwrap_or_default();
            }
            let bin = bins.get(row).map_or(0, |&b| b as usize);
            if let Some(c) = target.counts.get_mut(bucket.cnt_base + bin) {
                *c += 1;
            }
            target.accumulate(bucket.val_base + bin * cols.len(), &vals);
        }
    }

    let stats = FusedScanStats {
        rows_scanned: (dr_ids.len() + dq_extra.len()) as u64,
        partitions: n_parts,
        groups: requests.len(),
        bin_assignments: assignments.len(),
        scans: u64::from(!dr_ids.is_empty()) + u64::from(!dq_extra.is_empty()),
        rowgroups_scanned: 0,
        rowgroups_pruned: 0,
    };
    Ok((
        RawAggregates {
            request_slots,
            buckets,
            target,
            reference,
        },
        stats,
    ))
}

/// The fused scan's accumulator state before finalization: mergeable
/// partials, one target block and one reference block, plus the bucket
/// layout needed to read them back out per request.
///
/// Two `RawAggregates` produced by scans with the **same request list**
/// (same order, same specs) have identical layouts and can be merged; the
/// layout is checked structurally before any slot is touched.
#[derive(Debug)]
pub struct RawAggregates {
    request_slots: Vec<(usize, usize)>,
    buckets: Vec<Bucket>,
    target: AccBlock,
    reference: AccBlock,
}

impl RawAggregates {
    /// Number of requests these aggregates answer.
    #[must_use]
    pub fn request_count(&self) -> usize {
        self.request_slots.len()
    }

    /// Finalizes into per-request results — exactly what
    /// [`fused_group_by_all`] would have returned for the same scan.
    #[must_use]
    pub fn finalize(&self) -> Vec<FusedGroupResult> {
        self.request_slots
            .iter()
            .filter_map(|&(bucket, member)| {
                let bucket = self.buckets.get(bucket)?;
                Some(FusedGroupResult {
                    target: finalize_request(&self.target, bucket, member),
                    reference: finalize_request(&self.reference, bucket, member),
                })
            })
            .collect()
    }

    /// Folds `tail` — the aggregates of an appended row chunk scanned
    /// under the same requests — into `self`. Counts add, sums add in
    /// `self`-then-`tail` order (a fixed association, deterministic for
    /// any thread count on either side), and extremes combine under the
    /// scan's NaN discipline.
    ///
    /// # Errors
    ///
    /// [`DatasetError::Invalid`] when the two layouts differ (different
    /// requests, bins, or measure sets) — merging those would silently
    /// misattribute bins.
    pub fn merge(&mut self, tail: &RawAggregates) -> Result<(), DatasetError> {
        let same_layout = self.request_slots == tail.request_slots
            && self.buckets.len() == tail.buckets.len()
            && self.buckets.iter().zip(&tail.buckets).all(|(a, b)| {
                a.n_bins == b.n_bins
                    && a.members == b.members
                    && a.cnt_base == b.cnt_base
                    && a.val_base == b.val_base
            });
        if !same_layout {
            return Err(DatasetError::Invalid(
                "cannot merge fused aggregates with different request layouts".into(),
            ));
        }
        self.target.merge_half(&tail.target, 0, 0);
        self.reference.merge_half(&tail.reference, 0, 0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::group_by_all;
    use crate::column::Column;
    use crate::generate::{generate_diab, DiabConfig};
    use crate::predicate::Predicate;
    use crate::query::SelectQuery;
    use crate::schema::Schema;

    fn small_table() -> Table {
        let schema = Schema::builder()
            .categorical_dimension("cat")
            .numeric_dimension("x")
            .measure("m0")
            .measure("m1")
            .build()
            .unwrap();
        Table::new(
            schema,
            vec![
                Column::categorical_from_values(&["a", "b", "a", "b", "a", "c"]),
                Column::numeric(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]),
                Column::numeric(vec![1.0, -10.0, 3.0, 0.0, 5.0, 7.0]),
                Column::numeric(vec![2.0, 2.0, -4.0, 8.0, 0.0, 1.0]),
            ],
        )
        .unwrap()
    }

    fn requests_for(table: &Table) -> Vec<GroupRequest> {
        let cat_spec = BinSpec::categorical_of(table.column_by_name("cat").unwrap()).unwrap();
        let x_spec = BinSpec::equal_width_of(table.column_by_name("x").unwrap(), 3).unwrap();
        let mut reqs = Vec::new();
        for (dim, spec) in [("cat", &cat_spec), ("x", &x_spec)] {
            for measure in ["m0", "m1"] {
                reqs.push(GroupRequest {
                    dimension: dim.to_owned(),
                    spec: spec.clone(),
                    measure: measure.to_owned(),
                });
            }
        }
        reqs
    }

    fn assert_matches_oracle(table: &Table, dq: &RowSet, dr: &RowSet, threads: usize) {
        let reqs = requests_for(table);
        let (fused, stats) = fused_group_by_all(table, dq, dr, &reqs, threads).unwrap();
        assert_eq!(fused.len(), reqs.len());
        for (req, got) in reqs.iter().zip(&fused) {
            let target = group_by_all(table, dq, &req.dimension, &req.spec, &req.measure).unwrap();
            let reference =
                group_by_all(table, dr, &req.dimension, &req.spec, &req.measure).unwrap();
            assert_eq!(got.target, target, "target mismatch for {req:?}");
            assert_eq!(got.reference, reference, "reference mismatch for {req:?}");
        }
        assert_eq!(stats.groups, reqs.len());
        assert_eq!(stats.bin_assignments, 2, "one assignment per (dim, spec)");
    }

    #[test]
    fn matches_sequential_oracle_across_thread_counts() {
        let t = small_table();
        let dq = RowSet::from_ids(vec![0, 2, 4]).unwrap();
        let dr = t.all_rows();
        for threads in [1, 2, 8] {
            assert_matches_oracle(&t, &dq, &dr, threads);
        }
    }

    #[test]
    fn target_rows_outside_reference_are_still_aggregated() {
        // DQ ⊄ DR: rows 1 and 5 are in DQ but not DR.
        let t = small_table();
        let dq = RowSet::from_ids(vec![1, 2, 5]).unwrap();
        let dr = RowSet::from_ids(vec![0, 2, 3]).unwrap();
        for threads in [1, 4] {
            assert_matches_oracle(&t, &dq, &dr, threads);
        }
        let reqs = requests_for(&t);
        let (_, stats) = fused_group_by_all(&t, &dq, &dr, &reqs, 1).unwrap();
        assert_eq!(stats.rows_scanned, 3 + 2);
        assert_eq!(stats.scans, 2, "reference pass + target tail pass");
    }

    #[test]
    fn empty_row_sets() {
        let t = small_table();
        assert_matches_oracle(&t, &RowSet::empty(), &t.all_rows(), 2);
        assert_matches_oracle(&t, &RowSet::empty(), &RowSet::empty(), 2);
        let reqs = requests_for(&t);
        let (fused, stats) =
            fused_group_by_all(&t, &RowSet::empty(), &RowSet::empty(), &reqs, 2).unwrap();
        assert_eq!(stats.rows_scanned, 0);
        assert_eq!(stats.scans, 0);
        assert_eq!(fused[0].target.dispersion, 0.0);
    }

    #[test]
    fn empty_requests_answer_nothing() {
        let t = small_table();
        let (fused, stats) = fused_group_by_all(&t, &t.all_rows(), &t.all_rows(), &[], 4).unwrap();
        assert!(fused.is_empty());
        assert_eq!(stats, FusedScanStats::default());
    }

    #[test]
    fn out_of_range_rows_error_like_the_oracle() {
        let t = small_table();
        let reqs = requests_for(&t);
        let bad = RowSet::from_ids(vec![2, 9]).unwrap();
        let err = fused_group_by_all(&t, &bad, &t.all_rows(), &reqs, 1).unwrap_err();
        assert_eq!(err, DatasetError::IndexOutOfRange { index: 9, len: 6 });
        let err = fused_group_by_all(&t, &t.all_rows(), &bad, &reqs, 1).unwrap_err();
        assert_eq!(err, DatasetError::IndexOutOfRange { index: 9, len: 6 });
    }

    #[test]
    fn unknown_columns_error() {
        let t = small_table();
        let spec = BinSpec::categorical_of(t.column_by_name("cat").unwrap()).unwrap();
        let bad_dim = vec![GroupRequest {
            dimension: "nope".into(),
            spec: spec.clone(),
            measure: "m0".into(),
        }];
        assert!(fused_group_by_all(&t, &t.all_rows(), &t.all_rows(), &bad_dim, 1).is_err());
        let bad_measure = vec![GroupRequest {
            dimension: "cat".into(),
            spec,
            measure: "nope".into(),
        }];
        assert!(fused_group_by_all(&t, &t.all_rows(), &t.all_rows(), &bad_measure, 1).is_err());
    }

    #[test]
    fn thread_count_never_changes_the_result_on_generated_data() {
        // DIAB-like data has non-integer measures, where partition merges
        // could expose ordering effects if the grid were thread-dependent.
        let t = generate_diab(&DiabConfig::small(3_000, 11)).unwrap();
        let dq = SelectQuery::new(Predicate::eq("a0", "a0_v0"))
            .execute(&t)
            .unwrap();
        let dr = t.all_rows();
        let spec = BinSpec::categorical_of(t.column_by_name("a1").unwrap()).unwrap();
        let reqs = vec![GroupRequest {
            dimension: "a1".into(),
            spec,
            measure: "m0".into(),
        }];
        let (one, _) = fused_group_by_all(&t, &dq, &dr, &reqs, 1).unwrap();
        for threads in [2, 3, 8, 64] {
            let (many, _) = fused_group_by_all(&t, &dq, &dr, &reqs, threads).unwrap();
            assert_eq!(one, many, "threads={threads}");
        }
    }

    #[test]
    fn partition_grid_is_data_dependent_only() {
        let t = generate_diab(&DiabConfig::small(5_000, 3)).unwrap();
        let spec = BinSpec::categorical_of(t.column_by_name("a0").unwrap()).unwrap();
        let reqs = vec![GroupRequest {
            dimension: "a0".into(),
            spec,
            measure: "m0".into(),
        }];
        let (_, s1) = fused_group_by_all(&t, &t.all_rows(), &t.all_rows(), &reqs, 1).unwrap();
        let (_, s8) = fused_group_by_all(&t, &t.all_rows(), &t.all_rows(), &reqs, 8).unwrap();
        assert_eq!(s1, s8, "stats (incl. partition grid) ignore threads");
        assert_eq!(s1.partitions, 5_000usize.div_ceil(MIN_PARTITION_ROWS));
    }

    /// Bit-level comparison that treats NaN == NaN, for pinning the
    /// NaN-poisoning semantics below (`PartialEq` on f64 can't).
    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len(), "{what} length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn nan_measures_poison_sums_exactly_like_the_oracle() {
        // Pinned semantics, shared by every executor: a NaN measure value
        // still counts its row, poisons the bin's SUM and AVG to NaN, is
        // invisible to MIN/MAX (`<` comparisons with NaN are false — a bin
        // of only NaNs keeps the ±infinity sentinels), and contributes
        // nothing to dispersion (`NaN.max(0.0)` is 0). Downstream,
        // `Distribution::from_aggregates` rejects the non-finite SUM/AVG
        // vectors, so NaN data fails loudly at view materialization rather
        // than silently skewing rankings.
        let schema = Schema::builder()
            .categorical_dimension("cat")
            .measure("m")
            .build()
            .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::categorical_from_values(&["a", "a", "b", "c"]),
                Column::numeric(vec![2.0, f64::NAN, 5.0, f64::NAN]),
            ],
        )
        .unwrap();
        let spec = BinSpec::categorical_of(t.column_by_name("cat").unwrap()).unwrap();
        let reqs = vec![GroupRequest {
            dimension: "cat".into(),
            spec: spec.clone(),
            measure: "m".into(),
        }];
        let (fused, _) = fused_group_by_all(&t, &t.all_rows(), &t.all_rows(), &reqs, 1).unwrap();
        let oracle = group_by_all(&t, &t.all_rows(), "cat", &spec, "m").unwrap();
        let got = &fused[0].reference;
        assert_eq!(got.counts, oracle.counts);
        assert_eq!(got.counts, vec![2, 1, 1]);
        assert_bits_eq(&got.sums, &oracle.sums, "sums");
        assert_bits_eq(&got.avgs, &oracle.avgs, "avgs");
        assert_bits_eq(&got.mins, &oracle.mins, "mins");
        assert_bits_eq(&got.maxs, &oracle.maxs, "maxs");
        assert!(got.sums[0].is_nan() && got.avgs[0].is_nan());
        assert_eq!((got.mins[0], got.maxs[0]), (2.0, 2.0));
        // The all-NaN bin "c" never updated its extremes.
        assert_eq!(got.mins[2], f64::INFINITY);
        assert_eq!(got.maxs[2], f64::NEG_INFINITY);
        assert_eq!(got.dispersion.to_bits(), oracle.dispersion.to_bits());
    }

    #[test]
    fn all_rows_landing_in_one_bin_match_the_oracle() {
        let schema = Schema::builder()
            .categorical_dimension("cat")
            .measure("m")
            .build()
            .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::categorical_from_values(&["only", "only", "only", "only"]),
                Column::numeric(vec![3.0, -1.0, 4.0, -1.0]),
            ],
        )
        .unwrap();
        let spec = BinSpec::categorical_of(t.column_by_name("cat").unwrap()).unwrap();
        assert_eq!(spec.bin_count(), 1);
        let reqs = vec![GroupRequest {
            dimension: "cat".into(),
            spec: spec.clone(),
            measure: "m".into(),
        }];
        for threads in [1, 4] {
            let (fused, _) =
                fused_group_by_all(&t, &t.all_rows(), &t.all_rows(), &reqs, threads).unwrap();
            let oracle = group_by_all(&t, &t.all_rows(), "cat", &spec, "m").unwrap();
            assert_eq!(fused[0].reference, oracle);
            assert_eq!(fused[0].reference.counts, vec![4]);
            assert_eq!(fused[0].reference.mins, vec![-1.0]);
            assert_eq!(fused[0].reference.maxs, vec![4.0]);
        }
    }

    #[test]
    fn raw_merge_of_a_split_scan_matches_one_scan_on_integer_data() {
        // Integer-valued measures: f64 addition is exact, so merging the
        // aggregates of two disjoint halves must reproduce the one-scan
        // result bit for bit. This is the append fold's contract.
        let t = small_table();
        let reqs = requests_for(&t);
        let head = t
            .gather(&RowSet::from_ids(vec![0, 1, 2, 3]).unwrap())
            .unwrap();
        let tail = t.gather(&RowSet::from_ids(vec![4, 5]).unwrap()).unwrap();
        // DQ = rows {0, 2, 4} of the full table → {0, 2} in head, {0} in tail.
        let (mut head_raw, _) = fused_group_by_all_raw(
            &head,
            &RowSet::from_ids(vec![0, 2]).unwrap(),
            &head.all_rows(),
            &reqs,
            1,
        )
        .unwrap();
        let (tail_raw, _) = fused_group_by_all_raw(
            &tail,
            &RowSet::from_ids(vec![0]).unwrap(),
            &tail.all_rows(),
            &reqs,
            1,
        )
        .unwrap();
        head_raw.merge(&tail_raw).unwrap();
        let merged = head_raw.finalize();
        let (whole, _) = fused_group_by_all(
            &t,
            &RowSet::from_ids(vec![0, 2, 4]).unwrap(),
            &t.all_rows(),
            &reqs,
            1,
        )
        .unwrap();
        assert_eq!(merged, whole);
    }

    #[test]
    fn raw_merge_rejects_mismatched_layouts() {
        let t = small_table();
        let reqs = requests_for(&t);
        let (mut a, _) =
            fused_group_by_all_raw(&t, &t.all_rows(), &t.all_rows(), &reqs, 1).unwrap();
        let (b, _) =
            fused_group_by_all_raw(&t, &t.all_rows(), &t.all_rows(), &reqs[..1], 1).unwrap();
        assert!(matches!(a.merge(&b), Err(DatasetError::Invalid(_))));
    }

    #[test]
    fn pruned_entry_is_bit_identical_to_plain_evaluation() {
        let t = generate_diab(&DiabConfig::small(6_000, 5)).unwrap();
        let zones = crate::zones::ZoneMaps::build(&t, 512);
        let pred = Predicate::eq("a0", "a0_v0");
        let spec = BinSpec::categorical_of(t.column_by_name("a1").unwrap()).unwrap();
        let reqs = vec![GroupRequest {
            dimension: "a1".into(),
            spec,
            measure: "m0".into(),
        }];
        let dq = SelectQuery::new(pred.clone()).execute(&t).unwrap();
        let (plain, _) = fused_group_by_all(&t, &dq, &t.all_rows(), &reqs, 2).unwrap();
        let (raw, pruned_dq, stats) =
            fused_group_by_all_pruned(&t, &zones, &pred, &reqs, 2).unwrap();
        assert_eq!(pruned_dq.ids(), dq.ids());
        assert_eq!(raw.finalize(), plain);
        assert_eq!(
            stats.rowgroups_scanned + stats.rowgroups_pruned,
            6_000u64.div_ceil(512)
        );
    }

    #[test]
    fn single_row_bins_have_zero_dispersion() {
        let schema = Schema::builder()
            .categorical_dimension("cat")
            .measure("m")
            .build()
            .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::categorical_from_values(&["a", "b", "c", "d"]),
                Column::numeric(vec![3.5, -1.25, 400.0, 0.0]),
            ],
        )
        .unwrap();
        let spec = BinSpec::categorical_of(t.column_by_name("cat").unwrap()).unwrap();
        let reqs = vec![GroupRequest {
            dimension: "cat".into(),
            spec,
            measure: "m".into(),
        }];
        let (fused, _) = fused_group_by_all(&t, &t.all_rows(), &t.all_rows(), &reqs, 2).unwrap();
        let got = &fused[0].reference;
        assert_eq!(got.counts, vec![1, 1, 1, 1]);
        // One row per bin: every bin mean equals its single value, so the
        // within-bin squared error — and the dispersion — is exactly zero.
        assert_eq!(got.dispersion, 0.0);
        assert_eq!(got.mins, got.maxs);
        assert_eq!(got.avgs, vec![3.5, -1.25, 400.0, 0.0]);
    }
}
