//! Row selections.
//!
//! A [`RowSet`] is a sorted, deduplicated vector of row ids — the result of
//! evaluating a predicate against a table. Set algebra on row sets backs the
//! `AND` / `OR` / `NOT` connectives of the predicate AST via linear merges.

use crate::DatasetError;

/// A sorted, deduplicated set of row ids.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowSet {
    ids: Vec<u32>,
}

impl RowSet {
    /// An empty selection.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Selects every row of a table with `n` rows.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX` (the engine addresses rows with
    /// 32-bit ids).
    #[must_use]
    pub fn all(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "row count exceeds u32 addressing");
        Self {
            ids: (0..n as u32).collect(),
        }
    }

    /// Builds a row set from arbitrary ids, sorting and deduplicating.
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` reserves room for stricter validation
    /// and keeps call sites uniform with the rest of the engine.
    pub fn from_ids(mut ids: Vec<u32>) -> Result<Self, DatasetError> {
        ids.sort_unstable();
        ids.dedup();
        Ok(Self { ids })
    }

    /// Builds a row set from ids already known to be sorted and unique.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Invalid`] if the ids are not strictly
    /// increasing.
    pub fn from_sorted_ids(ids: Vec<u32>) -> Result<Self, DatasetError> {
        if ids.iter().zip(ids.iter().skip(1)).any(|(a, b)| a >= b) {
            return Err(DatasetError::Invalid(
                "ids must be strictly increasing".into(),
            ));
        }
        Ok(Self { ids })
    }

    /// The selected row ids, sorted ascending.
    #[must_use]
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Number of selected rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the selection is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether `row` is selected (binary search).
    #[must_use]
    pub fn contains(&self, row: u32) -> bool {
        self.ids.binary_search(&row).is_ok()
    }

    /// Set intersection (linear merge).
    #[must_use]
    pub fn intersect(&self, other: &RowSet) -> RowSet {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        let (mut i, mut j) = (0, 0);
        while let (Some(&a), Some(&b)) = (self.ids.get(i), other.ids.get(j)) {
            match a.cmp(&b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a);
                    i += 1;
                    j += 1;
                }
            }
        }
        RowSet { ids: out }
    }

    /// Set union (linear merge).
    #[must_use]
    pub fn union(&self, other: &RowSet) -> RowSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        RowSet { ids: out }
    }

    /// Complement with respect to a table of `universe` rows.
    #[must_use]
    pub fn complement(&self, universe: usize) -> RowSet {
        let mut out = Vec::with_capacity(universe.saturating_sub(self.len()));
        let mut next = self.ids.iter().peekable();
        for row in 0..universe as u32 {
            if next.peek() == Some(&&row) {
                next.next();
            } else {
                out.push(row);
            }
        }
        RowSet { ids: out }
    }

    /// Fraction of a `universe`-row table this selection covers.
    #[must_use]
    pub fn selectivity(&self, universe: usize) -> f64 {
        if universe == 0 {
            return 0.0;
        }
        self.len() as f64 / universe as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(ids: &[u32]) -> RowSet {
        RowSet::from_ids(ids.to_vec()).unwrap()
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        assert_eq!(rs(&[3, 1, 3, 2]).ids(), &[1, 2, 3]);
    }

    #[test]
    fn from_sorted_ids_validates() {
        assert!(RowSet::from_sorted_ids(vec![1, 2, 3]).is_ok());
        assert!(RowSet::from_sorted_ids(vec![1, 1]).is_err());
        assert!(RowSet::from_sorted_ids(vec![2, 1]).is_err());
    }

    #[test]
    fn all_and_contains() {
        let s = RowSet::all(4);
        assert_eq!(s.len(), 4);
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    fn intersect_union_basics() {
        let a = rs(&[1, 3, 5, 7]);
        let b = rs(&[3, 4, 5]);
        assert_eq!(a.intersect(&b).ids(), &[3, 5]);
        assert_eq!(a.union(&b).ids(), &[1, 3, 4, 5, 7]);
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        let a = rs(&[1, 2]);
        assert!(a.intersect(&RowSet::empty()).is_empty());
        assert_eq!(a.union(&RowSet::empty()), a);
    }

    #[test]
    fn complement_covers_universe() {
        let a = rs(&[0, 2]);
        assert_eq!(a.complement(5).ids(), &[1, 3, 4]);
        let everything = RowSet::all(5);
        assert!(everything.complement(5).is_empty());
        assert_eq!(RowSet::empty().complement(3).ids(), &[0, 1, 2]);
    }

    #[test]
    fn selectivity() {
        assert_eq!(rs(&[0, 1]).selectivity(4), 0.5);
        assert_eq!(RowSet::empty().selectivity(0), 0.0);
    }

    #[test]
    fn union_is_commutative_and_intersect_distributes() {
        let a = rs(&[1, 4, 6]);
        let b = rs(&[2, 4]);
        let c = rs(&[4, 6, 9]);
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(
            a.intersect(&b.union(&c)),
            a.intersect(&b).union(&a.intersect(&c))
        );
    }
}
