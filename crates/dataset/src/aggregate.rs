//! Group-by aggregation.
//!
//! A view `(a, m, f)` is the result of
//!
//! ```sql
//! SELECT a, f(m) FROM D [WHERE q] GROUP BY a
//! ```
//!
//! [`group_by_aggregate`] executes that in a single pass over the selected
//! rows, scattering into per-bin accumulators. The paper's aggregate function
//! set `F` has five members (Table 1): COUNT, SUM, AVG, MIN, MAX.

use serde::{Deserialize, Serialize};

use crate::binning::BinSpec;
use crate::selection::RowSet;
use crate::table::Table;
use crate::DatasetError;

/// The paper's five aggregate functions (`|F| = 5`, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregateFunction {
    /// Row count per bin (ignores the measure's values).
    Count,
    /// Sum of the measure per bin.
    Sum,
    /// Arithmetic mean of the measure per bin (0 for empty bins).
    Avg,
    /// Minimum of the measure per bin (0 for empty bins).
    Min,
    /// Maximum of the measure per bin (0 for empty bins).
    Max,
}

impl AggregateFunction {
    /// All five aggregate functions, in a stable order.
    #[must_use]
    pub fn all() -> [AggregateFunction; 5] {
        [
            AggregateFunction::Count,
            AggregateFunction::Sum,
            AggregateFunction::Avg,
            AggregateFunction::Min,
            AggregateFunction::Max,
        ]
    }
}

impl std::fmt::Display for AggregateFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            AggregateFunction::Count => "COUNT",
            AggregateFunction::Sum => "SUM",
            AggregateFunction::Avg => "AVG",
            AggregateFunction::Min => "MIN",
            AggregateFunction::Max => "MAX",
        };
        f.write_str(name)
    }
}

/// The result of a group-by aggregation: one aggregate value and one row
/// count per bin.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupByResult {
    /// Per-bin aggregate values (`f(m)` per bin). Empty bins yield 0.
    pub aggregates: Vec<f64>,
    /// Per-bin row counts (useful for χ² and diagnostics).
    pub counts: Vec<u64>,
}

impl GroupByResult {
    /// Number of bins.
    #[must_use]
    pub fn bin_count(&self) -> usize {
        self.aggregates.len()
    }

    /// Total number of rows that contributed.
    #[must_use]
    pub fn total_rows(&self) -> u64 {
        self.counts.iter().sum::<u64>()
    }
}

/// Per-bin running accumulator shared by every single-pass scan in this
/// module. One accumulator per bin replaces the older struct-of-arrays
/// layout so the hot loop performs a single bounds check per row.
#[derive(Debug, Clone, Copy)]
struct BinAcc {
    count: u64,
    sum: f64,
    sq_sum: f64,
    min: f64,
    max: f64,
}

impl BinAcc {
    const EMPTY: BinAcc = BinAcc {
        count: 0,
        sum: 0.0,
        sq_sum: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
    };
}

/// The shared scan: bins the dimension with `spec`, then accumulates count,
/// sum, sum of squares, min, and max of the measure for every selected row.
fn scan_bins(
    table: &Table,
    rows: &RowSet,
    dimension: &str,
    spec: &BinSpec,
    measure: &str,
) -> Result<Vec<BinAcc>, DatasetError> {
    let dim_col = table.column_by_name(dimension)?;
    let measure_vals = table.numeric_values(measure)?;
    let bins = spec.assign(dim_col)?;

    let mut accs = vec![BinAcc::EMPTY; spec.bin_count()];
    for &row in rows.ids() {
        let row = row as usize;
        let Some(&b) = bins.get(row) else {
            return Err(DatasetError::IndexOutOfRange {
                index: row,
                len: bins.len(),
            });
        };
        let Some(&v) = measure_vals.get(row) else {
            return Err(DatasetError::IndexOutOfRange {
                index: row,
                len: measure_vals.len(),
            });
        };
        let Some(acc) = accs.get_mut(b as usize) else {
            return Err(DatasetError::IndexOutOfRange {
                index: b as usize,
                len: accs.len(),
            });
        };
        acc.count += 1;
        acc.sum += v;
        acc.sq_sum += v * v;
        if v < acc.min {
            acc.min = v;
        }
        if v > acc.max {
            acc.max = v;
        }
    }
    Ok(accs)
}

/// Executes `SELECT dimension, func(measure) GROUP BY dimension` over the
/// rows of `rows`, binning the dimension with `spec`.
///
/// # Errors
///
/// * column lookup / type errors from the table;
/// * bin-assignment errors from [`BinSpec::assign`].
pub fn group_by_aggregate(
    table: &Table,
    rows: &RowSet,
    dimension: &str,
    spec: &BinSpec,
    measure: &str,
    func: AggregateFunction,
) -> Result<GroupByResult, DatasetError> {
    let accs = scan_bins(table, rows, dimension, spec, measure)?;
    let aggregates = accs
        .iter()
        .map(|acc| {
            if acc.count == 0 {
                0.0
            } else {
                match func {
                    AggregateFunction::Count => acc.count as f64,
                    AggregateFunction::Sum => acc.sum,
                    AggregateFunction::Avg => acc.sum / acc.count as f64,
                    AggregateFunction::Min => acc.min,
                    AggregateFunction::Max => acc.max,
                }
            }
        })
        .collect();
    let counts = accs.iter().map(|acc| acc.count).collect();
    Ok(GroupByResult { aggregates, counts })
}

/// Within-bin dispersion: the sum over bins of the squared error of each
/// row's measure value around its bin mean.
///
/// This is the MuVE-style *accuracy* quantity — how faithfully one bar per
/// bin summarizes the underlying rows (smaller = more accurate view). The
/// value is normalized by the number of contributing rows so tables of
/// different sizes are comparable.
///
/// # Errors
///
/// Same error surface as [`group_by_aggregate`].
pub fn within_bin_dispersion(
    table: &Table,
    rows: &RowSet,
    dimension: &str,
    spec: &BinSpec,
    measure: &str,
) -> Result<f64, DatasetError> {
    // Single-pass variance via the shared per-bin sum / sum-of-squares scan.
    let accs = scan_bins(table, rows, dimension, spec, measure)?;
    let total = accs.iter().map(|acc| acc.count).sum::<u64>();
    if total == 0 {
        return Ok(0.0);
    }
    let mut sse = 0.0;
    for acc in &accs {
        if acc.count > 0 {
            let n = acc.count as f64;
            // Σ(v−mean)² = Σv² − (Σv)²/n ; clamp tiny negative round-off.
            sse += (acc.sq_sum - acc.sum * acc.sum / n).max(0.0);
        }
    }
    Ok(sse / total as f64)
}

/// All five aggregates of one (dimension, measure) pair computed in a single
/// pass, plus the within-bin dispersion — the SeeDB-style *shared
/// computation* optimization: views differing only in their aggregate
/// function share one scan instead of five.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupByAllResult {
    /// Per-bin row counts.
    pub counts: Vec<u64>,
    /// Per-bin counts as aggregate values (what COUNT produces).
    pub count_values: Vec<f64>,
    /// Per-bin sums of the measure.
    pub sums: Vec<f64>,
    /// Per-bin means (0 for empty bins).
    pub avgs: Vec<f64>,
    /// Per-bin minimums (0 for empty bins).
    pub mins: Vec<f64>,
    /// Per-bin maximums (0 for empty bins).
    pub maxs: Vec<f64>,
    /// Within-bin dispersion (see [`within_bin_dispersion`]).
    pub dispersion: f64,
}

impl GroupByAllResult {
    /// The aggregate vector for one function, exactly as
    /// [`group_by_aggregate`] would have produced it.
    #[must_use]
    pub fn aggregates(&self, func: AggregateFunction) -> &[f64] {
        match func {
            AggregateFunction::Count => &self.count_values,
            AggregateFunction::Sum => &self.sums,
            AggregateFunction::Avg => &self.avgs,
            AggregateFunction::Min => &self.mins,
            AggregateFunction::Max => &self.maxs,
        }
    }

    /// Total rows that contributed.
    #[must_use]
    pub fn total_rows(&self) -> u64 {
        self.counts.iter().sum::<u64>()
    }
}

/// Computes every aggregate function plus the within-bin dispersion of one
/// `(dimension, measure)` pair in a single pass over the selected rows.
///
/// Equivalent to five [`group_by_aggregate`] calls plus one
/// [`within_bin_dispersion`] call, at roughly one sixth of the scan cost.
///
/// # Errors
///
/// Same error surface as [`group_by_aggregate`].
pub fn group_by_all(
    table: &Table,
    rows: &RowSet,
    dimension: &str,
    spec: &BinSpec,
    measure: &str,
) -> Result<GroupByAllResult, DatasetError> {
    let accs = scan_bins(table, rows, dimension, spec, measure)?;
    let total = accs.iter().map(|acc| acc.count).sum::<u64>();

    let n_bins = accs.len();
    let mut counts = Vec::with_capacity(n_bins);
    let mut count_values = Vec::with_capacity(n_bins);
    let mut sums = Vec::with_capacity(n_bins);
    let mut avgs = Vec::with_capacity(n_bins);
    let mut mins = Vec::with_capacity(n_bins);
    let mut maxs = Vec::with_capacity(n_bins);
    let mut sse = 0.0;
    for acc in &accs {
        counts.push(acc.count);
        sums.push(acc.sum);
        if acc.count == 0 {
            count_values.push(0.0);
            avgs.push(0.0);
            mins.push(0.0);
            maxs.push(0.0);
        } else {
            let n = acc.count as f64;
            count_values.push(n);
            avgs.push(acc.sum / n);
            mins.push(acc.min);
            maxs.push(acc.max);
            sse += (acc.sq_sum - acc.sum * acc.sum / n).max(0.0);
        }
    }
    let dispersion = if total == 0 { 0.0 } else { sse / total as f64 };

    Ok(GroupByAllResult {
        counts,
        count_values,
        sums,
        avgs,
        mins,
        maxs,
        dispersion,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::Schema;

    fn table() -> Table {
        let schema = Schema::builder()
            .categorical_dimension("cat")
            .measure("m")
            .build()
            .unwrap();
        Table::new(
            schema,
            vec![
                Column::categorical_from_values(&["a", "b", "a", "b", "a"]),
                Column::numeric(vec![1.0, 10.0, 3.0, 20.0, 5.0]),
            ],
        )
        .unwrap()
    }

    fn run(func: AggregateFunction) -> GroupByResult {
        let t = table();
        let spec = BinSpec::categorical_of(t.column_by_name("cat").unwrap()).unwrap();
        group_by_aggregate(&t, &t.all_rows(), "cat", &spec, "m", func).unwrap()
    }

    #[test]
    fn count_sum_avg_min_max() {
        assert_eq!(run(AggregateFunction::Count).aggregates, vec![3.0, 2.0]);
        assert_eq!(run(AggregateFunction::Sum).aggregates, vec![9.0, 30.0]);
        assert_eq!(run(AggregateFunction::Avg).aggregates, vec![3.0, 15.0]);
        assert_eq!(run(AggregateFunction::Min).aggregates, vec![1.0, 10.0]);
        assert_eq!(run(AggregateFunction::Max).aggregates, vec![5.0, 20.0]);
    }

    #[test]
    fn counts_match_selection() {
        let r = run(AggregateFunction::Sum);
        assert_eq!(r.counts, vec![3, 2]);
        assert_eq!(r.total_rows(), 5);
        assert_eq!(r.bin_count(), 2);
    }

    #[test]
    fn restricted_selection_changes_aggregates() {
        let t = table();
        let spec = BinSpec::categorical_of(t.column_by_name("cat").unwrap()).unwrap();
        let rows = RowSet::from_ids(vec![0, 1]).unwrap();
        let r = group_by_aggregate(&t, &rows, "cat", &spec, "m", AggregateFunction::Sum).unwrap();
        assert_eq!(r.aggregates, vec![1.0, 10.0]);
        assert_eq!(r.counts, vec![1, 1]);
    }

    #[test]
    fn empty_bins_are_zero() {
        let t = table();
        let spec = BinSpec::categorical_of(t.column_by_name("cat").unwrap()).unwrap();
        let rows = RowSet::from_ids(vec![0]).unwrap(); // only an "a" row
        for f in AggregateFunction::all() {
            let r = group_by_aggregate(&t, &rows, "cat", &spec, "m", f).unwrap();
            assert_eq!(r.aggregates[1], 0.0, "{f} over an empty bin should be 0");
        }
    }

    #[test]
    fn empty_selection_yields_all_zero() {
        let t = table();
        let spec = BinSpec::categorical_of(t.column_by_name("cat").unwrap()).unwrap();
        let r = group_by_aggregate(
            &t,
            &RowSet::empty(),
            "cat",
            &spec,
            "m",
            AggregateFunction::Avg,
        )
        .unwrap();
        assert_eq!(r.aggregates, vec![0.0, 0.0]);
        assert_eq!(r.total_rows(), 0);
    }

    #[test]
    fn numeric_dimension_binning() {
        let schema = Schema::builder()
            .numeric_dimension("x")
            .measure("m")
            .build()
            .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::numeric(vec![0.0, 1.0, 2.0, 3.0]),
                Column::numeric(vec![1.0, 1.0, 1.0, 1.0]),
            ],
        )
        .unwrap();
        let spec = BinSpec::equal_width_of(t.column_by_name("x").unwrap(), 2).unwrap();
        let r = group_by_aggregate(&t, &t.all_rows(), "x", &spec, "m", AggregateFunction::Count)
            .unwrap();
        assert_eq!(r.aggregates, vec![2.0, 2.0]);
    }

    #[test]
    fn dispersion_zero_when_bins_are_constant() {
        let schema = Schema::builder()
            .categorical_dimension("cat")
            .measure("m")
            .build()
            .unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::categorical_from_values(&["a", "a", "b", "b"]),
                Column::numeric(vec![7.0, 7.0, 2.0, 2.0]),
            ],
        )
        .unwrap();
        let spec = BinSpec::categorical_of(t.column_by_name("cat").unwrap()).unwrap();
        let d = within_bin_dispersion(&t, &t.all_rows(), "cat", &spec, "m").unwrap();
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn dispersion_matches_hand_computation() {
        let t = table();
        let spec = BinSpec::categorical_of(t.column_by_name("cat").unwrap()).unwrap();
        let d = within_bin_dispersion(&t, &t.all_rows(), "cat", &spec, "m").unwrap();
        // bin a: {1,3,5} mean 3 → SSE 8; bin b: {10,20} mean 15 → SSE 50.
        assert!((d - 58.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn dispersion_of_empty_selection_is_zero() {
        let t = table();
        let spec = BinSpec::categorical_of(t.column_by_name("cat").unwrap()).unwrap();
        let d = within_bin_dispersion(&t, &RowSet::empty(), "cat", &spec, "m").unwrap();
        assert_eq!(d, 0.0);
    }

    #[test]
    fn unknown_columns_error() {
        let t = table();
        let spec = BinSpec::categorical_of(t.column_by_name("cat").unwrap()).unwrap();
        assert!(group_by_aggregate(
            &t,
            &t.all_rows(),
            "nope",
            &spec,
            "m",
            AggregateFunction::Sum
        )
        .is_err());
        assert!(group_by_aggregate(
            &t,
            &t.all_rows(),
            "cat",
            &spec,
            "nope",
            AggregateFunction::Sum
        )
        .is_err());
    }

    #[test]
    fn group_by_all_matches_individual_aggregates() {
        let t = table();
        let spec = BinSpec::categorical_of(t.column_by_name("cat").unwrap()).unwrap();
        let all = group_by_all(&t, &t.all_rows(), "cat", &spec, "m").unwrap();
        for f in AggregateFunction::all() {
            let single = group_by_aggregate(&t, &t.all_rows(), "cat", &spec, "m", f).unwrap();
            assert_eq!(
                all.aggregates(f),
                single.aggregates.as_slice(),
                "mismatch for {f}"
            );
        }
        let disp = within_bin_dispersion(&t, &t.all_rows(), "cat", &spec, "m").unwrap();
        assert!((all.dispersion - disp).abs() < 1e-12);
        assert_eq!(all.total_rows(), 5);
    }

    #[test]
    fn group_by_all_empty_selection() {
        let t = table();
        let spec = BinSpec::categorical_of(t.column_by_name("cat").unwrap()).unwrap();
        let all = group_by_all(&t, &RowSet::empty(), "cat", &spec, "m").unwrap();
        assert_eq!(all.total_rows(), 0);
        assert_eq!(all.dispersion, 0.0);
        for f in AggregateFunction::all() {
            assert!(all.aggregates(f).iter().all(|v| *v == 0.0), "{f}");
        }
    }

    #[test]
    fn group_by_all_error_paths() {
        let t = table();
        let spec = BinSpec::categorical_of(t.column_by_name("cat").unwrap()).unwrap();
        assert!(group_by_all(&t, &t.all_rows(), "nope", &spec, "m").is_err());
        assert!(group_by_all(&t, &t.all_rows(), "cat", &spec, "nope").is_err());
    }
}
