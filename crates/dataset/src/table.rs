//! Tables: a schema plus equally-long columns.

use crate::column::Column;
use crate::schema::{AttributeRole, ColumnType, Schema};
use crate::selection::RowSet;
use crate::DatasetError;

/// An immutable in-memory table.
///
/// Construction validates that every column matches its schema entry in both
/// type and length, so all downstream query code can index without checks.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Assembles a table from a schema and matching columns.
    ///
    /// # Errors
    ///
    /// * [`DatasetError::Invalid`] if the column count differs from the
    ///   schema;
    /// * [`DatasetError::ColumnTypeMismatch`] if a column's physical type
    ///   differs from its schema entry;
    /// * [`DatasetError::LengthMismatch`] if columns differ in length.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self, DatasetError> {
        if schema.len() != columns.len() {
            return Err(DatasetError::Invalid(format!(
                "schema has {} columns but {} were provided",
                schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, Column::len);
        for (meta, col) in schema.columns().iter().zip(&columns) {
            let type_ok = match meta.column_type {
                ColumnType::Categorical => col.is_categorical(),
                ColumnType::Numeric => !col.is_categorical(),
            };
            if !type_ok {
                return Err(DatasetError::ColumnTypeMismatch {
                    column: meta.name.clone(),
                    expected: match meta.column_type {
                        ColumnType::Categorical => "categorical",
                        ColumnType::Numeric => "numeric",
                    },
                });
            }
            if col.len() != rows {
                return Err(DatasetError::LengthMismatch {
                    column: meta.name.clone(),
                    len: col.len(),
                    expected: rows,
                });
            }
        }
        Ok(Self {
            schema,
            columns,
            rows,
        })
    }

    /// The table's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Column by index. Out-of-range indices yield a shared empty numeric
    /// column rather than panicking.
    #[must_use]
    pub fn column(&self, index: usize) -> &Column {
        static EMPTY_COLUMN: std::sync::OnceLock<Column> = std::sync::OnceLock::new();
        self.columns
            .get(index)
            .unwrap_or_else(|| EMPTY_COLUMN.get_or_init(|| Column::numeric(Vec::new())))
    }

    /// Column by name.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::UnknownColumn`] if no column has that name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, DatasetError> {
        self.schema
            .index_of(name)
            .and_then(|i| self.columns.get(i))
            .ok_or_else(|| DatasetError::UnknownColumn(name.to_owned()))
    }

    /// A numeric column's values by name.
    ///
    /// # Errors
    ///
    /// [`DatasetError::UnknownColumn`] or [`DatasetError::ColumnTypeMismatch`].
    pub fn numeric_values(&self, name: &str) -> Result<&[f64], DatasetError> {
        self.column_by_name(name)?
            .values()
            .ok_or_else(|| DatasetError::ColumnTypeMismatch {
                column: name.to_owned(),
                expected: "numeric",
            })
    }

    /// A row set selecting every row of the table.
    #[must_use]
    pub fn all_rows(&self) -> RowSet {
        RowSet::all(self.rows)
    }

    /// Materializes the listed rows into a new table sharing this schema.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::IndexOutOfRange`] if any row id is out of
    /// range.
    pub fn gather(&self, rows: &RowSet) -> Result<Table, DatasetError> {
        if let Some(&max) = rows.ids().iter().max() {
            if max as usize >= self.rows {
                return Err(DatasetError::IndexOutOfRange {
                    index: max as usize,
                    len: self.rows,
                });
            }
        }
        let columns = self.columns.iter().map(|c| c.gather(rows.ids())).collect();
        Table::new(self.schema.clone(), columns)
    }

    /// Names of dimension attributes (delegates to the schema).
    #[must_use]
    pub fn dimension_names(&self) -> Vec<&str> {
        self.schema.dimension_names()
    }

    /// Names of measure attributes (delegates to the schema).
    #[must_use]
    pub fn measure_names(&self) -> Vec<&str> {
        self.schema.measure_names()
    }

    /// Whether the named attribute is a dimension.
    #[must_use]
    pub fn is_dimension(&self, name: &str) -> bool {
        self.schema
            .column(name)
            .is_some_and(|c| c.role == AttributeRole::Dimension)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn small_table() -> Table {
        let schema = Schema::builder()
            .categorical_dimension("color")
            .measure("price")
            .build()
            .unwrap();
        Table::new(
            schema,
            vec![
                Column::categorical_from_values(&["red", "blue", "red"]),
                Column::numeric(vec![1.0, 2.0, 3.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let t = small_table();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.dimension_names(), vec!["color"]);
        assert_eq!(t.measure_names(), vec!["price"]);
        assert!(t.is_dimension("color"));
        assert!(!t.is_dimension("price"));
        assert!(!t.is_dimension("missing"));
        assert_eq!(t.numeric_values("price").unwrap(), &[1.0, 2.0, 3.0]);
        assert!(t.numeric_values("color").is_err());
        assert!(t.column_by_name("nope").is_err());
    }

    #[test]
    fn mismatched_column_count_rejected() {
        let schema = Schema::builder().measure("m").build().unwrap();
        assert!(Table::new(schema, vec![]).is_err());
    }

    #[test]
    fn mismatched_column_type_rejected() {
        let schema = Schema::builder()
            .categorical_dimension("d")
            .build()
            .unwrap();
        let r = Table::new(schema, vec![Column::numeric(vec![1.0])]);
        assert!(matches!(r, Err(DatasetError::ColumnTypeMismatch { .. })));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let schema = Schema::builder().measure("a").measure("b").build().unwrap();
        let r = Table::new(
            schema,
            vec![Column::numeric(vec![1.0]), Column::numeric(vec![1.0, 2.0])],
        );
        assert!(matches!(r, Err(DatasetError::LengthMismatch { .. })));
    }

    #[test]
    fn gather_selects_rows() {
        let t = small_table();
        let sub = t.gather(&RowSet::from_ids(vec![0, 2]).unwrap()).unwrap();
        assert_eq!(sub.row_count(), 2);
        assert_eq!(sub.numeric_values("price").unwrap(), &[1.0, 3.0]);
        assert_eq!(sub.column(0).category_at(1), "red");
    }

    #[test]
    fn gather_out_of_range_rejected() {
        let t = small_table();
        assert!(t.gather(&RowSet::from_ids(vec![5]).unwrap()).is_err());
    }
}
