//! Predicate AST and evaluation.
//!
//! The user query `Q` that defines the explored subset `DQ` is expressed as a
//! predicate tree over the table's columns. The paper's testbed builds `DQ`
//! as a *hypercube in record space* — a conjunction of per-attribute ranges /
//! membership tests — which this AST covers, along with general boolean
//! composition.

use crate::selection::RowSet;
use crate::table::Table;
use crate::DatasetError;

/// A boolean predicate over table rows.
///
/// ```
/// use viewseeker_dataset::builder::TableBuilder;
/// use viewseeker_dataset::{row, Predicate, Schema};
///
/// let mut b = TableBuilder::new(
///     Schema::builder()
///         .categorical_dimension("color")
///         .measure("price")
///         .build()
///         .unwrap(),
/// );
/// b.push_row(row!["red", 10.0]).unwrap();
/// b.push_row(row!["blue", 20.0]).unwrap();
/// b.push_row(row!["red", 30.0]).unwrap();
/// let table = b.finish().unwrap();
///
/// let p = Predicate::eq("color", "red").and(Predicate::range("price", 0.0, 25.0));
/// assert_eq!(p.evaluate(&table).unwrap().ids(), &[0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true — selects every row (the trivial query `Q = DR`).
    True,
    /// Categorical column equals the given value.
    Eq {
        /// Column name.
        column: String,
        /// Value to match.
        value: String,
    },
    /// Categorical column's value is one of the given values.
    In {
        /// Column name.
        column: String,
        /// Accepted values.
        values: Vec<String>,
    },
    /// Numeric column lies in `[low, high)` (half-open; `high` may be
    /// `f64::INFINITY` for an unbounded range).
    Range {
        /// Column name.
        column: String,
        /// Inclusive lower bound.
        low: f64,
        /// Exclusive upper bound.
        high: f64,
    },
    /// Conjunction of sub-predicates; empty conjunction is `True`.
    And(Vec<Predicate>),
    /// Disjunction of sub-predicates; empty disjunction selects nothing.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for [`Predicate::Eq`].
    #[must_use]
    pub fn eq(column: impl Into<String>, value: impl Into<String>) -> Self {
        Predicate::Eq {
            column: column.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for [`Predicate::In`].
    #[must_use]
    pub fn is_in(column: impl Into<String>, values: Vec<String>) -> Self {
        Predicate::In {
            column: column.into(),
            values,
        }
    }

    /// Convenience constructor for [`Predicate::Range`].
    #[must_use]
    pub fn range(column: impl Into<String>, low: f64, high: f64) -> Self {
        Predicate::Range {
            column: column.into(),
            low,
            high,
        }
    }

    /// Conjunction of two predicates.
    #[must_use]
    pub fn and(self, other: Predicate) -> Self {
        match self {
            Predicate::And(mut preds) => {
                preds.push(other);
                Predicate::And(preds)
            }
            p => Predicate::And(vec![p, other]),
        }
    }

    /// Evaluates the predicate against `table`, returning the selected rows.
    ///
    /// # Errors
    ///
    /// * [`DatasetError::UnknownColumn`] for a reference to a missing column;
    /// * [`DatasetError::ColumnTypeMismatch`] for `Eq`/`In` on a numeric
    ///   column or `Range` on a categorical column.
    pub fn evaluate(&self, table: &Table) -> Result<RowSet, DatasetError> {
        match self {
            Predicate::True => Ok(table.all_rows()),
            Predicate::Eq { column, value } => {
                eval_membership(table, column, std::slice::from_ref(value))
            }
            Predicate::In { column, values } => eval_membership(table, column, values),
            Predicate::Range { column, low, high } => {
                let values = table.column_by_name(column)?.values().ok_or(
                    DatasetError::ColumnTypeMismatch {
                        column: column.clone(),
                        expected: "numeric (Range predicate)",
                    },
                )?;
                let ids = values
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| **v >= *low && **v < *high)
                    .map(|(i, _)| i as u32)
                    .collect();
                RowSet::from_sorted_ids(ids)
            }
            Predicate::And(preds) => {
                let mut acc = table.all_rows();
                for p in preds {
                    acc = acc.intersect(&p.evaluate(table)?);
                    if acc.is_empty() {
                        break;
                    }
                }
                Ok(acc)
            }
            Predicate::Or(preds) => {
                let mut acc = RowSet::empty();
                for p in preds {
                    acc = acc.union(&p.evaluate(table)?);
                }
                Ok(acc)
            }
            Predicate::Not(inner) => Ok(inner.evaluate(table)?.complement(table.row_count())),
        }
    }
}

fn eval_membership(table: &Table, column: &str, values: &[String]) -> Result<RowSet, DatasetError> {
    let col = table.column_by_name(column)?;
    let (codes, dictionary) = match (col.codes(), col.dictionary()) {
        (Some(c), Some(d)) => (c, d),
        _ => {
            return Err(DatasetError::ColumnTypeMismatch {
                column: column.to_owned(),
                expected: "categorical (Eq/In predicate)",
            })
        }
    };
    // Translate values to codes once, then scan the code vector.
    let mut wanted = vec![false; dictionary.len()];
    for v in values {
        if let Some(slot) = dictionary
            .iter()
            .position(|d| d == v)
            .and_then(|code| wanted.get_mut(code))
        {
            *slot = true;
        }
    }
    let ids = codes
        .iter()
        .enumerate()
        .filter(|(_, c)| wanted.get(**c as usize).copied().unwrap_or(false))
        .map(|(i, _)| i as u32)
        .collect();
    RowSet::from_sorted_ids(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::Schema;

    fn table() -> Table {
        let schema = Schema::builder()
            .categorical_dimension("color")
            .numeric_dimension("age")
            .measure("price")
            .build()
            .unwrap();
        Table::new(
            schema,
            vec![
                Column::categorical_from_values(&["red", "blue", "red", "green", "blue"]),
                Column::numeric(vec![10.0, 20.0, 30.0, 40.0, 50.0]),
                Column::numeric(vec![1.0, 2.0, 3.0, 4.0, 5.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn true_selects_all() {
        let t = table();
        assert_eq!(Predicate::True.evaluate(&t).unwrap().len(), 5);
    }

    #[test]
    fn eq_on_categorical() {
        let t = table();
        let s = Predicate::eq("color", "red").evaluate(&t).unwrap();
        assert_eq!(s.ids(), &[0, 2]);
    }

    #[test]
    fn eq_unknown_value_selects_nothing() {
        let t = table();
        let s = Predicate::eq("color", "purple").evaluate(&t).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn in_on_categorical() {
        let t = table();
        let s = Predicate::is_in("color", vec!["red".into(), "green".into()])
            .evaluate(&t)
            .unwrap();
        assert_eq!(s.ids(), &[0, 2, 3]);
    }

    #[test]
    fn range_is_half_open() {
        let t = table();
        let s = Predicate::range("age", 20.0, 40.0).evaluate(&t).unwrap();
        assert_eq!(s.ids(), &[1, 2]);
    }

    #[test]
    fn unbounded_range() {
        let t = table();
        let s = Predicate::range("age", 30.0, f64::INFINITY)
            .evaluate(&t)
            .unwrap();
        assert_eq!(s.ids(), &[2, 3, 4]);
    }

    #[test]
    fn and_or_not_compose() {
        let t = table();
        let p = Predicate::eq("color", "blue").and(Predicate::range("age", 0.0, 30.0));
        assert_eq!(p.evaluate(&t).unwrap().ids(), &[1]);

        let or = Predicate::Or(vec![
            Predicate::eq("color", "green"),
            Predicate::range("age", 0.0, 15.0),
        ]);
        assert_eq!(or.evaluate(&t).unwrap().ids(), &[0, 3]);

        let not = Predicate::Not(Box::new(Predicate::eq("color", "red")));
        assert_eq!(not.evaluate(&t).unwrap().ids(), &[1, 3, 4]);
    }

    #[test]
    fn empty_connectives() {
        let t = table();
        assert_eq!(Predicate::And(vec![]).evaluate(&t).unwrap().len(), 5);
        assert!(Predicate::Or(vec![]).evaluate(&t).unwrap().is_empty());
    }

    #[test]
    fn type_errors_are_reported() {
        let t = table();
        assert!(matches!(
            Predicate::eq("age", "10").evaluate(&t),
            Err(DatasetError::ColumnTypeMismatch { .. })
        ));
        assert!(matches!(
            Predicate::range("color", 0.0, 1.0).evaluate(&t),
            Err(DatasetError::ColumnTypeMismatch { .. })
        ));
        assert!(matches!(
            Predicate::eq("missing", "x").evaluate(&t),
            Err(DatasetError::UnknownColumn(_))
        ));
    }

    #[test]
    fn and_builder_flattens() {
        let p = Predicate::eq("a", "1")
            .and(Predicate::eq("b", "2"))
            .and(Predicate::eq("c", "3"));
        match p {
            Predicate::And(children) => assert_eq!(children.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }
}
