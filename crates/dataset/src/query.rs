//! Select queries.
//!
//! A [`SelectQuery`] wraps a predicate and is how the user specifies the
//! explored subset `DQ` over the full database `DR` (the paper's "data
//! specification method such as an SQL/NoSQL query over DR").

use crate::predicate::Predicate;
use crate::selection::RowSet;
use crate::table::Table;
use crate::DatasetError;

/// A selection query over a table.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    predicate: Predicate,
}

impl SelectQuery {
    /// Builds a query from a predicate.
    #[must_use]
    pub fn new(predicate: Predicate) -> Self {
        Self { predicate }
    }

    /// The query that selects all rows.
    #[must_use]
    pub fn select_all() -> Self {
        Self {
            predicate: Predicate::True,
        }
    }

    /// The wrapped predicate.
    #[must_use]
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }

    /// Executes the query, returning the selected rows.
    ///
    /// # Errors
    ///
    /// Propagates predicate evaluation errors.
    pub fn execute(&self, table: &Table) -> Result<RowSet, DatasetError> {
        self.predicate.evaluate(table)
    }

    /// Executes and reports the selectivity (fraction of rows selected) —
    /// the paper's testbed targets a `DQ` cardinality ratio of 0.5%.
    ///
    /// # Errors
    ///
    /// Propagates predicate evaluation errors.
    pub fn execute_with_selectivity(&self, table: &Table) -> Result<(RowSet, f64), DatasetError> {
        let rows = self.execute(table)?;
        let sel = rows.selectivity(table.row_count());
        Ok((rows, sel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::schema::Schema;

    fn table() -> Table {
        let schema = Schema::builder()
            .categorical_dimension("g")
            .measure("m")
            .build()
            .unwrap();
        Table::new(
            schema,
            vec![
                Column::categorical_from_values(&["x", "y", "x", "y"]),
                Column::numeric(vec![1.0, 2.0, 3.0, 4.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn select_all() {
        let t = table();
        let (rows, sel) = SelectQuery::select_all()
            .execute_with_selectivity(&t)
            .unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(sel, 1.0);
    }

    #[test]
    fn filtered_query() {
        let t = table();
        let q = SelectQuery::new(Predicate::eq("g", "x"));
        let (rows, sel) = q.execute_with_selectivity(&t).unwrap();
        assert_eq!(rows.ids(), &[0, 2]);
        assert_eq!(sel, 0.5);
    }

    #[test]
    fn error_propagates() {
        let t = table();
        let q = SelectQuery::new(Predicate::eq("missing", "x"));
        assert!(q.execute(&t).is_err());
    }
}
