//! SQL abstract syntax tree.

use crate::aggregate::AggregateFunction;

/// A literal value in a predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlValue {
    /// String literal.
    Text(String),
    /// Numeric literal.
    Number(f64),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `=`
    Eq,
    /// `!=` / `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

/// A boolean predicate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// `column <op> literal`
    Compare {
        /// Column name.
        column: String,
        /// Operator.
        op: Comparison,
        /// Right-hand literal.
        value: SqlValue,
    },
    /// `column IN (v1, v2, …)`
    InList {
        /// Column name.
        column: String,
        /// Accepted values.
        values: Vec<SqlValue>,
    },
    /// `column BETWEEN low AND high` (inclusive per SQL semantics).
    Between {
        /// Column name.
        column: String,
        /// Inclusive lower bound.
        low: f64,
        /// Inclusive upper bound.
        high: f64,
    },
    /// `a AND b`
    And(Box<SqlExpr>, Box<SqlExpr>),
    /// `a OR b`
    Or(Box<SqlExpr>, Box<SqlExpr>),
    /// `NOT a`
    Not(Box<SqlExpr>),
}

/// An aggregate call in the projection list.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// The aggregate function.
    pub func: AggregateFunction,
    /// The measure column, or `None` for `COUNT(*)`.
    pub column: Option<String>,
}

impl std::fmt::Display for Aggregate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.column {
            Some(c) => write!(f, "{}({c})", self.func),
            None => write!(f, "{}(*)", self.func),
        }
    }
}

/// One projected output column.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*`
    All,
    /// A plain column reference.
    Column(String),
    /// An aggregate call.
    Aggregate(Aggregate),
}

/// Sort direction of an `ORDER BY`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (the SQL default).
    Asc,
    /// Descending.
    Desc,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// The projection list, in order.
    pub projections: Vec<Projection>,
    /// The `FROM` name (informational — execution receives a table).
    pub from: String,
    /// Optional `WHERE` predicate.
    pub where_clause: Option<SqlExpr>,
    /// Optional single `GROUP BY` column.
    pub group_by: Option<String>,
    /// Optional `ORDER BY (output column, direction)`.
    pub order_by: Option<(String, SortOrder)>,
    /// Optional `LIMIT`.
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_display() {
        let a = Aggregate {
            func: AggregateFunction::Avg,
            column: Some("m0".into()),
        };
        assert_eq!(a.to_string(), "AVG(m0)");
        let c = Aggregate {
            func: AggregateFunction::Count,
            column: None,
        };
        assert_eq!(c.to_string(), "COUNT(*)");
    }
}
