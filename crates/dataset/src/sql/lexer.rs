//! SQL tokenizer.

use crate::DatasetError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (case preserved; keyword matching is
    /// case-insensitive in the parser).
    Ident(String),
    /// Single-quoted string literal, quotes stripped, `''` unescaped.
    String(String),
    /// Numeric literal.
    Number(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::String(s) => write!(f, "'{s}'"),
            Token::Number(n) => write!(f, "{n}"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Star => f.write_str("*"),
            Token::Eq => f.write_str("="),
            Token::NotEq => f.write_str("!="),
            Token::Lt => f.write_str("<"),
            Token::LtEq => f.write_str("<="),
            Token::Gt => f.write_str(">"),
            Token::GtEq => f.write_str(">="),
        }
    }
}

/// Tokenizes a SQL string.
///
/// # Errors
///
/// Returns [`DatasetError::Sql`] for unterminated strings, malformed
/// numbers, or unexpected characters.
pub fn tokenize(input: &str) -> Result<Vec<Token>, DatasetError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '*' => {
                chars.next();
                tokens.push(Token::Star);
            }
            '=' => {
                chars.next();
                tokens.push(Token::Eq);
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::NotEq);
                } else {
                    return Err(DatasetError::Sql("expected '=' after '!'".into()));
                }
            }
            '<' => {
                chars.next();
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        tokens.push(Token::LtEq);
                    }
                    Some('>') => {
                        chars.next();
                        tokens.push(Token::NotEq);
                    }
                    _ => tokens.push(Token::Lt),
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::GtEq);
                } else {
                    tokens.push(Token::Gt);
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            // '' escapes a quote.
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                        None => {
                            return Err(DatasetError::Sql("unterminated string literal".into()))
                        }
                    }
                }
                tokens.push(Token::String(s));
            }
            c if c.is_ascii_digit() || c == '-' || c == '.' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit()
                        || d == '.'
                        || d == 'e'
                        || d == 'E'
                        || d == '-'
                        || d == '+'
                    {
                        // Only allow sign directly after an exponent marker.
                        if (d == '-' || d == '+') && !matches!(s.chars().last(), Some('e' | 'E')) {
                            break;
                        }
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let n: f64 = s
                    .parse()
                    .map_err(|_| DatasetError::Sql(format!("malformed number {s:?}")))?;
                tokens.push(Token::Number(n));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            other => {
                return Err(DatasetError::Sql(format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_full_select() {
        let toks = tokenize("SELECT a, AVG(m) FROM t WHERE x >= 1.5 GROUP BY a").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::LParen));
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::Number(1.5)));
        assert_eq!(toks.last(), Some(&Token::Ident("a".into())));
    }

    #[test]
    fn string_literals_and_escapes() {
        let toks = tokenize("name = 'O''Brien'").unwrap();
        assert_eq!(toks[2], Token::String("O'Brien".into()));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("a != b <> c <= d >= e < f > g").unwrap();
        let ops: Vec<&Token> = toks
            .iter()
            .filter(|t| !matches!(t, Token::Ident(_)))
            .collect();
        assert_eq!(
            ops,
            vec![
                &Token::NotEq,
                &Token::NotEq,
                &Token::LtEq,
                &Token::GtEq,
                &Token::Lt,
                &Token::Gt
            ]
        );
    }

    #[test]
    fn numbers_including_negatives_and_exponents() {
        assert_eq!(tokenize("-3.5").unwrap(), vec![Token::Number(-3.5)]);
        assert_eq!(tokenize("1e-3").unwrap(), vec![Token::Number(1e-3)]);
        assert!(tokenize("1.2.3").is_err());
    }

    #[test]
    fn bang_without_eq_is_an_error() {
        assert!(tokenize("a ! b").is_err());
        assert!(matches!(tokenize("a @ b"), Err(DatasetError::Sql(_))));
    }

    #[test]
    fn empty_input_is_empty_tokens() {
        assert!(tokenize("   ").unwrap().is_empty());
    }
}
