//! A small SQL layer over the columnar engine.
//!
//! The paper describes both views and the exploration subset in SQL terms:
//! "a view vᵢ essentially represents an SQL query with a group-by clause
//! over a database D", and "DQ can be specified by any data specification
//! method such as an SQL/NoSQL query over DR". This module makes those
//! sentences literal:
//!
//! ```
//! use viewseeker_dataset::generate::{generate_diab, DiabConfig};
//! use viewseeker_dataset::sql::execute;
//!
//! let table = generate_diab(&DiabConfig::small(1_000, 1)).unwrap();
//! let result = execute(
//!     "SELECT a0, AVG(m0) FROM diab WHERE a1 = 'a1_v0' GROUP BY a0",
//!     &table,
//! )
//! .unwrap();
//! assert_eq!(result.columns, vec!["a0", "AVG(m0)"]);
//! ```
//!
//! Supported surface (deliberately the fragment view recommendation needs):
//!
//! ```sql
//! SELECT <projection, ...> FROM <name>
//!   [WHERE <predicate>] [GROUP BY <column>]
//!   [ORDER BY <output column> [ASC|DESC]] [LIMIT <n>]
//! ```
//!
//! * projections: `*`, column names, `COUNT(*)`, and `f(measure)` for the
//!   five aggregate functions;
//! * predicates: `=`, `!=`/`<>`, `<`, `<=`, `>`, `>=`, `IN (…)`,
//!   `BETWEEN a AND b`, combined with `AND`, `OR`, `NOT`, parentheses;
//! * string literals in single quotes; numbers as literals;
//! * `GROUP BY` over one categorical dimension.
//!
//! The `FROM` name is informational (a table is passed in explicitly).

mod ast;
mod exec;
mod lexer;
mod parser;

pub use ast::{Aggregate, Comparison, Projection, SelectStatement, SortOrder, SqlExpr, SqlValue};
pub use exec::{execute, execute_statement, ResultSet, ResultValue};
pub use lexer::{tokenize, Token};
pub use parser::parse_select;

use crate::predicate::Predicate;
use crate::DatasetError;

/// Parses just a WHERE-style predicate expression (no `SELECT` framing) into
/// the engine's [`Predicate`] AST — the convenient path for specifying `DQ`.
///
/// ```
/// use viewseeker_dataset::sql::parse_where;
///
/// let p = parse_where("a0 = 'x' AND m0 BETWEEN 10 AND 20").unwrap();
/// // p is a regular engine predicate, usable in a SelectQuery.
/// # let _ = p;
/// ```
///
/// # Errors
///
/// Returns [`DatasetError::Sql`] for syntax errors.
pub fn parse_where(input: &str) -> Result<Predicate, DatasetError> {
    let tokens = tokenize(input)?;
    let mut parser = parser::Parser::new(tokens);
    let expr = parser.parse_expr()?;
    parser.expect_end()?;
    exec::compile_predicate(&expr)
}
