//! SQL execution over the columnar engine.

use crate::aggregate::{group_by_aggregate, AggregateFunction};
use crate::binning::BinSpec;
use crate::executor::strict_sum;
use crate::predicate::Predicate;
use crate::sql::ast::{Comparison, Projection, SelectStatement, SortOrder, SqlExpr, SqlValue};
use crate::sql::parser::parse_select;
use crate::table::Table;
use crate::DatasetError;

/// One output cell.
#[derive(Debug, Clone, PartialEq)]
pub enum ResultValue {
    /// A categorical / label value.
    Text(String),
    /// A numeric value.
    Number(f64),
}

impl std::fmt::Display for ResultValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResultValue::Text(s) => f.write_str(s),
            ResultValue::Number(n) => write!(f, "{n}"),
        }
    }
}

/// A query result: named columns and rows of values.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names, in projection order.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<ResultValue>>,
}

impl ResultSet {
    /// Renders the result as an aligned text table.
    #[must_use]
    pub fn to_text_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(ToString::to_string).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_owned()
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &rendered {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Parses and executes a SQL string against `table`.
///
/// # Errors
///
/// [`DatasetError::Sql`] for syntax or semantic errors; engine errors for
/// unknown columns / type mismatches.
pub fn execute(sql: &str, table: &Table) -> Result<ResultSet, DatasetError> {
    execute_statement(&parse_select(sql)?, table)
}

/// Executes a parsed statement against `table`.
///
/// # Errors
///
/// Same contract as [`execute`].
pub fn execute_statement(stmt: &SelectStatement, table: &Table) -> Result<ResultSet, DatasetError> {
    let rows = match &stmt.where_clause {
        Some(expr) => compile_predicate(expr)?.evaluate(table)?,
        None => table.all_rows(),
    };

    let mut result = match &stmt.group_by {
        Some(group_col) => execute_grouped(stmt, table, &rows, group_col)?,
        None => execute_flat(stmt, table, &rows)?,
    };
    if let Some((column, order)) = &stmt.order_by {
        let idx = result
            .columns
            .iter()
            .position(|c| c == column)
            .ok_or_else(|| {
                DatasetError::Sql(format!(
                    "ORDER BY {column}: not an output column (have {:?})",
                    result.columns
                ))
            })?;
        result.rows.sort_by(|a, b| {
            let ord = compare_values(&a[idx], &b[idx]);
            match order {
                SortOrder::Asc => ord,
                SortOrder::Desc => ord.reverse(),
            }
        });
    }
    if let Some(limit) = stmt.limit {
        result.rows.truncate(limit);
    }
    Ok(result)
}

/// Total order over result values: numbers before text, numbers by value
/// (NaN last), text lexicographic.
fn compare_values(a: &ResultValue, b: &ResultValue) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (ResultValue::Number(x), ResultValue::Number(y)) => {
            x.partial_cmp(y).unwrap_or(Ordering::Equal)
        }
        (ResultValue::Text(x), ResultValue::Text(y)) => x.cmp(y),
        (ResultValue::Number(_), ResultValue::Text(_)) => Ordering::Less,
        (ResultValue::Text(_), ResultValue::Number(_)) => Ordering::Greater,
    }
}

fn execute_grouped(
    stmt: &SelectStatement,
    table: &Table,
    rows: &crate::selection::RowSet,
    group_col: &str,
) -> Result<ResultSet, DatasetError> {
    let col = table.column_by_name(group_col)?;
    let spec = BinSpec::categorical_of(col).map_err(|_| {
        DatasetError::Sql(format!(
            "GROUP BY {group_col}: only categorical columns are groupable (bin numeric \
             dimensions through the view API)"
        ))
    })?;

    let mut columns = Vec::with_capacity(stmt.projections.len());
    // Per-projection output: either the group labels or an aggregate vector.
    let mut outputs: Vec<Vec<ResultValue>> = Vec::with_capacity(stmt.projections.len());
    for projection in &stmt.projections {
        match projection {
            Projection::All => {
                return Err(DatasetError::Sql(
                    "SELECT * is not valid with GROUP BY; project the group column and aggregates"
                        .into(),
                ))
            }
            Projection::Column(name) if name == group_col => {
                columns.push(name.clone());
                outputs.push(
                    (0..spec.bin_count())
                        .map(|b| ResultValue::Text(spec.label(b)))
                        .collect(),
                );
            }
            Projection::Column(name) => {
                return Err(DatasetError::Sql(format!(
                    "column {name} must appear in GROUP BY or inside an aggregate"
                )))
            }
            Projection::Aggregate(agg) => {
                // COUNT(*) counts rows; any other aggregate needs a measure.
                let measure = match (&agg.column, agg.func) {
                    (Some(m), _) => m.clone(),
                    (None, AggregateFunction::Count) => {
                        // COUNT(*): count via any numeric column-independent
                        // path — use the group-by counts of the group itself.
                        let r = group_by_aggregate(
                            table,
                            rows,
                            group_col,
                            &spec,
                            first_measure(table)?,
                            AggregateFunction::Count,
                        )?;
                        columns.push(agg.to_string());
                        outputs.push(
                            r.aggregates
                                .iter()
                                .map(|v| ResultValue::Number(*v))
                                .collect(),
                        );
                        continue;
                    }
                    (None, f) => return Err(DatasetError::Sql(format!("{f}(*) is not defined"))),
                };
                let r = group_by_aggregate(table, rows, group_col, &spec, &measure, agg.func)?;
                columns.push(agg.to_string());
                outputs.push(
                    r.aggregates
                        .iter()
                        .map(|v| ResultValue::Number(*v))
                        .collect(),
                );
            }
        }
    }

    let bin_count = spec.bin_count();
    let rows_out = (0..bin_count)
        .map(|b| outputs.iter().map(|col| col[b].clone()).collect())
        .collect();
    Ok(ResultSet {
        columns,
        rows: rows_out,
    })
}

fn execute_flat(
    stmt: &SelectStatement,
    table: &Table,
    rows: &crate::selection::RowSet,
) -> Result<ResultSet, DatasetError> {
    let has_aggregate = stmt
        .projections
        .iter()
        .any(|p| matches!(p, Projection::Aggregate(_)));
    if has_aggregate {
        // SQL semantics: aggregates without GROUP BY collapse to one row;
        // plain columns are then invalid.
        let mut columns = Vec::new();
        let mut row = Vec::new();
        for projection in &stmt.projections {
            let Projection::Aggregate(agg) = projection else {
                return Err(DatasetError::Sql(
                    "cannot mix plain columns with aggregates without GROUP BY".into(),
                ));
            };
            columns.push(agg.to_string());
            row.push(ResultValue::Number(flat_aggregate(table, rows, agg)?));
        }
        return Ok(ResultSet {
            columns,
            rows: vec![row],
        });
    }

    // Plain projection: list the selected rows.
    let names: Vec<String> = if stmt.projections == vec![Projection::All] {
        table
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect()
    } else {
        stmt.projections
            .iter()
            .map(|p| match p {
                Projection::Column(c) => Ok(c.clone()),
                Projection::All => Err(DatasetError::Sql(
                    "'*' cannot be combined with other projections".into(),
                )),
                Projection::Aggregate(_) => unreachable!("handled above"),
            })
            .collect::<Result<_, _>>()?
    };
    // Validate columns up front.
    for n in &names {
        table.column_by_name(n)?;
    }
    let rows_out = rows
        .ids()
        .iter()
        .map(|&r| {
            names
                .iter()
                .map(|n| {
                    let col = table.column_by_name(n).expect("validated above");
                    if col.is_categorical() {
                        ResultValue::Text(col.category_at(r as usize).to_owned())
                    } else {
                        ResultValue::Number(col.values().expect("numeric")[r as usize])
                    }
                })
                .collect()
        })
        .collect();
    Ok(ResultSet {
        columns: names,
        rows: rows_out,
    })
}

fn flat_aggregate(
    table: &Table,
    rows: &crate::selection::RowSet,
    agg: &crate::sql::ast::Aggregate,
) -> Result<f64, DatasetError> {
    let values = match (&agg.column, agg.func) {
        (None, AggregateFunction::Count) => return Ok(rows.len() as f64),
        (None, f) => return Err(DatasetError::Sql(format!("{f}(*) is not defined"))),
        (Some(m), _) => table.numeric_values(m)?,
    };
    let selected = rows.ids().iter().map(|&r| values[r as usize]);
    Ok(match agg.func {
        AggregateFunction::Count => rows.len() as f64,
        AggregateFunction::Sum => strict_sum(selected),
        AggregateFunction::Avg => {
            if rows.is_empty() {
                0.0
            } else {
                strict_sum(selected) / rows.len() as f64
            }
        }
        // Empty selections yield 0, consistent with the group-by path.
        AggregateFunction::Min => {
            if rows.is_empty() {
                0.0
            } else {
                selected.fold(f64::INFINITY, f64::min)
            }
        }
        AggregateFunction::Max => {
            if rows.is_empty() {
                0.0
            } else {
                selected.fold(f64::NEG_INFINITY, f64::max)
            }
        }
    })
}

fn first_measure(table: &Table) -> Result<&str, DatasetError> {
    table
        .measure_names()
        .first()
        .copied()
        .ok_or_else(|| DatasetError::Sql("COUNT(*) needs at least one measure column".into()))
}

/// Compiles a SQL predicate expression into the engine's [`Predicate`].
///
/// # Errors
///
/// [`DatasetError::Sql`] for semantically invalid comparisons (e.g. ordered
/// comparison against a string literal).
pub(crate) fn compile_predicate(expr: &SqlExpr) -> Result<Predicate, DatasetError> {
    Ok(match expr {
        SqlExpr::Compare { column, op, value } => match (op, value) {
            (Comparison::Eq, SqlValue::Text(v)) => Predicate::eq(column.clone(), v.clone()),
            (Comparison::NotEq, SqlValue::Text(v)) => {
                Predicate::Not(Box::new(Predicate::eq(column.clone(), v.clone())))
            }
            (Comparison::Eq, SqlValue::Number(n)) => {
                Predicate::range(column.clone(), *n, next_up(*n))
            }
            (Comparison::NotEq, SqlValue::Number(n)) => {
                Predicate::Not(Box::new(Predicate::range(column.clone(), *n, next_up(*n))))
            }
            (Comparison::Lt, SqlValue::Number(n)) => {
                Predicate::range(column.clone(), f64::NEG_INFINITY, *n)
            }
            (Comparison::LtEq, SqlValue::Number(n)) => {
                Predicate::range(column.clone(), f64::NEG_INFINITY, next_up(*n))
            }
            (Comparison::Gt, SqlValue::Number(n)) => {
                Predicate::range(column.clone(), next_up(*n), f64::INFINITY)
            }
            (Comparison::GtEq, SqlValue::Number(n)) => {
                Predicate::range(column.clone(), *n, f64::INFINITY)
            }
            (_, SqlValue::Text(v)) => {
                return Err(DatasetError::Sql(format!(
                    "ordered comparison against string literal '{v}' is not supported"
                )))
            }
        },
        SqlExpr::InList { column, values } => {
            let mut texts = Vec::new();
            let mut numbers = Vec::new();
            for v in values {
                match v {
                    SqlValue::Text(s) => texts.push(s.clone()),
                    SqlValue::Number(n) => numbers.push(*n),
                }
            }
            if !texts.is_empty() && !numbers.is_empty() {
                return Err(DatasetError::Sql(
                    "IN list mixes string and numeric literals".into(),
                ));
            }
            if !texts.is_empty() {
                Predicate::is_in(column.clone(), texts)
            } else {
                Predicate::Or(
                    numbers
                        .into_iter()
                        .map(|n| Predicate::range(column.clone(), n, next_up(n)))
                        .collect(),
                )
            }
        }
        SqlExpr::Between { column, low, high } => {
            // SQL BETWEEN is inclusive on both ends.
            Predicate::range(column.clone(), *low, next_up(*high))
        }
        SqlExpr::And(a, b) => Predicate::And(vec![compile_predicate(a)?, compile_predicate(b)?]),
        SqlExpr::Or(a, b) => Predicate::Or(vec![compile_predicate(a)?, compile_predicate(b)?]),
        SqlExpr::Not(inner) => Predicate::Not(Box::new(compile_predicate(inner)?)),
    })
}

/// Smallest f64 strictly greater than `x` (used to express inclusive upper
/// bounds with the engine's half-open ranges).
fn next_up(x: f64) -> f64 {
    if x == f64::INFINITY {
        x
    } else {
        let bits = x.to_bits();
        let next = if x >= 0.0 { bits + 1 } else { bits - 1 };
        f64::from_bits(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TableBuilder;
    use crate::row;
    use crate::schema::Schema;

    fn table() -> Table {
        let schema = Schema::builder()
            .categorical_dimension("city")
            .numeric_dimension("age")
            .measure("m_sales")
            .build()
            .unwrap();
        let mut b = TableBuilder::new(schema);
        for (city, age, sales) in [
            ("NY", 25.0, 100.0),
            ("NY", 35.0, 200.0),
            ("LA", 45.0, 50.0),
            ("LA", 55.0, 150.0),
            ("SF", 65.0, 300.0),
        ] {
            b.push_row(row![city, age, sales]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn group_by_aggregates() {
        let r = execute(
            "SELECT city, AVG(m_sales), COUNT(*) FROM t GROUP BY city",
            &table(),
        )
        .unwrap();
        assert_eq!(r.columns, vec!["city", "AVG(m_sales)", "COUNT(*)"]);
        assert_eq!(r.rows.len(), 3);
        assert_eq!(
            r.rows[0],
            vec![
                ResultValue::Text("NY".into()),
                ResultValue::Number(150.0),
                ResultValue::Number(2.0)
            ]
        );
    }

    #[test]
    fn where_filters_before_grouping() {
        let r = execute(
            "SELECT city, SUM(m_sales) FROM t WHERE age >= 40 GROUP BY city",
            &table(),
        )
        .unwrap();
        // NY rows filtered out: its bin is empty → 0.
        assert_eq!(r.rows[0][1], ResultValue::Number(0.0));
        assert_eq!(r.rows[1][1], ResultValue::Number(200.0)); // LA: 50+150
        assert_eq!(r.rows[2][1], ResultValue::Number(300.0)); // SF
    }

    #[test]
    fn flat_aggregates_collapse_to_one_row() {
        let r = execute(
            "SELECT COUNT(*), AVG(m_sales), MIN(m_sales), MAX(m_sales) FROM t WHERE city = 'LA'",
            &table(),
        )
        .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(
            r.rows[0],
            vec![
                ResultValue::Number(2.0),
                ResultValue::Number(100.0),
                ResultValue::Number(50.0),
                ResultValue::Number(150.0)
            ]
        );
    }

    #[test]
    fn row_listing_with_projection_and_limit() {
        let r = execute("SELECT city, age FROM t WHERE age > 30 LIMIT 2", &table()).unwrap();
        assert_eq!(r.columns, vec!["city", "age"]);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], ResultValue::Text("NY".into()));
    }

    #[test]
    fn select_star_lists_all_columns() {
        let r = execute("SELECT * FROM t LIMIT 1", &table()).unwrap();
        assert_eq!(r.columns, vec!["city", "age", "m_sales"]);
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn between_is_inclusive() {
        let r = execute(
            "SELECT COUNT(*) FROM t WHERE age BETWEEN 35 AND 55",
            &table(),
        )
        .unwrap();
        assert_eq!(r.rows[0][0], ResultValue::Number(3.0));
    }

    #[test]
    fn in_list_and_or() {
        let r = execute(
            "SELECT COUNT(*) FROM t WHERE city IN ('NY', 'SF') OR age = 45",
            &table(),
        )
        .unwrap();
        assert_eq!(r.rows[0][0], ResultValue::Number(4.0));
    }

    #[test]
    fn numeric_equality_and_inequality() {
        let t = table();
        let eq = execute("SELECT COUNT(*) FROM t WHERE age = 45", &t).unwrap();
        assert_eq!(eq.rows[0][0], ResultValue::Number(1.0));
        let neq = execute("SELECT COUNT(*) FROM t WHERE age != 45", &t).unwrap();
        assert_eq!(neq.rows[0][0], ResultValue::Number(4.0));
        let sneq = execute("SELECT COUNT(*) FROM t WHERE city <> 'NY'", &t).unwrap();
        assert_eq!(sneq.rows[0][0], ResultValue::Number(3.0));
    }

    #[test]
    fn order_by_sorts_and_limits() {
        let r = execute(
            "SELECT city, SUM(m_sales) FROM t GROUP BY city ORDER BY SUM(m_sales) DESC LIMIT 2",
            &table(),
        )
        .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], ResultValue::Text("NY".into())); // 300
        assert_eq!(r.rows[1][0], ResultValue::Text("SF".into())); // 300? no: SF 300, NY 300
        let asc = execute("SELECT age FROM t ORDER BY age", &table()).unwrap();
        let ages: Vec<String> = asc.rows.iter().map(|r| r[0].to_string()).collect();
        let mut sorted = ages.clone();
        sorted.sort_by(|a, b| {
            a.parse::<f64>()
                .unwrap()
                .partial_cmp(&b.parse::<f64>().unwrap())
                .unwrap()
        });
        assert_eq!(ages, sorted);
        assert!(execute("SELECT city FROM t ORDER BY nope", &table()).is_err());
    }

    #[test]
    fn semantic_errors() {
        let t = table();
        assert!(execute("SELECT * FROM t GROUP BY city", &t).is_err());
        assert!(execute("SELECT age FROM t GROUP BY city", &t).is_err());
        assert!(
            execute("SELECT city, age FROM t GROUP BY age", &t).is_err(),
            "numeric group"
        );
        assert!(
            execute("SELECT city, COUNT(*) FROM t", &t).is_err(),
            "mixed flat"
        );
        assert!(execute("SELECT COUNT(*) FROM t WHERE city > 'A'", &t).is_err());
        assert!(execute("SELECT COUNT(*) FROM t WHERE city IN ('NY', 3)", &t).is_err());
        assert!(execute("SELECT nope FROM t", &t).is_err());
    }

    #[test]
    fn empty_selection_flat_aggregates() {
        let r = execute(
            "SELECT COUNT(*), AVG(m_sales), MIN(m_sales), MAX(m_sales) FROM t WHERE age > 1000",
            &table(),
        )
        .unwrap();
        assert_eq!(
            r.rows[0],
            vec![
                ResultValue::Number(0.0),
                ResultValue::Number(0.0),
                ResultValue::Number(0.0),
                ResultValue::Number(0.0)
            ]
        );
    }

    #[test]
    fn text_table_rendering() {
        let r = execute("SELECT city, AVG(m_sales) FROM t GROUP BY city", &table()).unwrap();
        let text = r.to_text_table();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("city"));
        assert!(lines[1].starts_with("----"));
        assert_eq!(lines.len(), 2 + 3);
    }

    #[test]
    fn parse_where_round_trip() {
        let p = crate::sql::parse_where("city = 'NY' AND age >= 30").unwrap();
        let rows = p.evaluate(&table()).unwrap();
        assert_eq!(rows.ids(), &[1]);
        assert!(crate::sql::parse_where("city = 'NY' extra").is_err());
    }
}
