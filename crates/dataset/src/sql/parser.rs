//! Recursive-descent SQL parser.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! select     := SELECT projections FROM ident [WHERE expr]
//!               [GROUP BY ident] [ORDER BY column [ASC|DESC]] [LIMIT number]
//! projections:= projection (',' projection)*
//! projection := '*' | aggregate | ident
//! aggregate  := (COUNT|SUM|AVG|MIN|MAX) '(' ('*' | ident) ')'
//! expr       := and_expr (OR and_expr)*
//! and_expr   := unary (AND unary)*
//! unary      := NOT unary | '(' expr ')' | comparison
//! comparison := ident ( op literal
//!                     | IN '(' literal (',' literal)* ')'
//!                     | [NOT] BETWEEN number AND number )
//! ```

use crate::aggregate::AggregateFunction;
use crate::sql::ast::{
    Aggregate, Comparison, Projection, SelectStatement, SortOrder, SqlExpr, SqlValue,
};
use crate::sql::lexer::Token;
use crate::DatasetError;

/// Parses a full `SELECT` statement.
///
/// # Errors
///
/// Returns [`DatasetError::Sql`] with a position-free human message.
pub fn parse_select(input: &str) -> Result<SelectStatement, DatasetError> {
    let tokens = crate::sql::lexer::tokenize(input)?;
    let mut p = Parser::new(tokens);
    let stmt = p.parse_statement()?;
    p.expect_end()?;
    Ok(stmt)
}

/// Token-stream parser (shared with [`crate::sql::parse_where`]).
pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub(crate) fn new(tokens: Vec<Token>) -> Self {
        Self { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes the next token if it's the given case-insensitive keyword.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), DatasetError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(DatasetError::Sql(format!(
                "expected {kw}, found {}",
                self.describe_next()
            )))
        }
    }

    fn expect_token(&mut self, want: &Token, what: &str) -> Result<(), DatasetError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DatasetError::Sql(format!(
                "expected {what}, found {}",
                self.describe_next()
            )))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, DatasetError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(DatasetError::Sql(format!(
                "expected {what}, found {}",
                describe(other.as_ref())
            ))),
        }
    }

    fn describe_next(&self) -> String {
        describe(self.peek())
    }

    pub(crate) fn expect_end(&mut self) -> Result<(), DatasetError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(DatasetError::Sql(format!(
                "unexpected trailing input starting at {}",
                self.describe_next()
            )))
        }
    }

    fn parse_statement(&mut self) -> Result<SelectStatement, DatasetError> {
        self.expect_keyword("SELECT")?;
        let mut projections = vec![self.parse_projection()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            projections.push(self.parse_projection()?);
        }
        self.expect_keyword("FROM")?;
        let from = self.expect_ident("table name")?;

        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let group_by = if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            Some(self.expect_ident("group-by column")?)
        } else {
            None
        };
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            // Accept a column name or an aggregate spelling like AVG(m).
            let mut name = self.expect_ident("order-by column")?;
            if self.peek() == Some(&Token::LParen) {
                self.pos += 1;
                let arg = if self.peek() == Some(&Token::Star) {
                    self.pos += 1;
                    "*".to_owned()
                } else {
                    self.expect_ident("aggregate argument")?
                };
                self.expect_token(&Token::RParen, ")")?;
                name = format!("{}({arg})", name.to_ascii_uppercase());
            }
            let order = if self.eat_keyword("DESC") {
                SortOrder::Desc
            } else {
                let _ = self.eat_keyword("ASC");
                SortOrder::Asc
            };
            Some((name, order))
        } else {
            None
        };
        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Number(n)) if n >= 0.0 && n.fract() == 0.0 => Some(n as usize),
                other => {
                    return Err(DatasetError::Sql(format!(
                        "expected a non-negative integer LIMIT, found {}",
                        describe(other.as_ref())
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStatement {
            projections,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn parse_projection(&mut self) -> Result<Projection, DatasetError> {
        if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            return Ok(Projection::All);
        }
        let name = self.expect_ident("a projection")?;
        let func = aggregate_function(&name);
        if let (Some(func), Some(Token::LParen)) = (func, self.peek()) {
            self.pos += 1;
            let column = if self.peek() == Some(&Token::Star) {
                self.pos += 1;
                None
            } else {
                Some(self.expect_ident("aggregate argument")?)
            };
            self.expect_token(&Token::RParen, ")")?;
            if column.is_none() && func != AggregateFunction::Count {
                return Err(DatasetError::Sql(format!("{func}(*) is not defined")));
            }
            return Ok(Projection::Aggregate(Aggregate { func, column }));
        }
        Ok(Projection::Column(name))
    }

    pub(crate) fn parse_expr(&mut self) -> Result<SqlExpr, DatasetError> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = SqlExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<SqlExpr, DatasetError> {
        let mut left = self.parse_unary()?;
        while self.eat_keyword("AND") {
            let right = self.parse_unary()?;
            left = SqlExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<SqlExpr, DatasetError> {
        if self.eat_keyword("NOT") {
            return Ok(SqlExpr::Not(Box::new(self.parse_unary()?)));
        }
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let inner = self.parse_expr()?;
            self.expect_token(&Token::RParen, ")")?;
            return Ok(inner);
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<SqlExpr, DatasetError> {
        let column = self.expect_ident("a column name")?;
        if self.eat_keyword("IN") {
            self.expect_token(&Token::LParen, "(")?;
            let mut values = vec![self.parse_literal()?];
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                values.push(self.parse_literal()?);
            }
            self.expect_token(&Token::RParen, ")")?;
            return Ok(SqlExpr::InList { column, values });
        }
        let negate = self.eat_keyword("NOT");
        if self.eat_keyword("BETWEEN") {
            let low = self.parse_number()?;
            self.expect_keyword("AND")?;
            let high = self.parse_number()?;
            let between = SqlExpr::Between { column, low, high };
            return Ok(if negate {
                SqlExpr::Not(Box::new(between))
            } else {
                between
            });
        }
        if negate {
            return Err(DatasetError::Sql(
                "expected BETWEEN after NOT in a comparison".into(),
            ));
        }
        let op = match self.next() {
            Some(Token::Eq) => Comparison::Eq,
            Some(Token::NotEq) => Comparison::NotEq,
            Some(Token::Lt) => Comparison::Lt,
            Some(Token::LtEq) => Comparison::LtEq,
            Some(Token::Gt) => Comparison::Gt,
            Some(Token::GtEq) => Comparison::GtEq,
            other => {
                return Err(DatasetError::Sql(format!(
                    "expected a comparison operator, found {}",
                    describe(other.as_ref())
                )))
            }
        };
        let value = self.parse_literal()?;
        Ok(SqlExpr::Compare { column, op, value })
    }

    fn parse_literal(&mut self) -> Result<SqlValue, DatasetError> {
        match self.next() {
            Some(Token::String(s)) => Ok(SqlValue::Text(s)),
            Some(Token::Number(n)) => Ok(SqlValue::Number(n)),
            other => Err(DatasetError::Sql(format!(
                "expected a literal, found {}",
                describe(other.as_ref())
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<f64, DatasetError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => Err(DatasetError::Sql(format!(
                "expected a number, found {}",
                describe(other.as_ref())
            ))),
        }
    }
}

fn describe(token: Option<&Token>) -> String {
    match token {
        Some(t) => format!("{t}"),
        None => "end of input".into(),
    }
}

fn aggregate_function(name: &str) -> Option<AggregateFunction> {
    match name.to_ascii_uppercase().as_str() {
        "COUNT" => Some(AggregateFunction::Count),
        "SUM" => Some(AggregateFunction::Sum),
        "AVG" => Some(AggregateFunction::Avg),
        "MIN" => Some(AggregateFunction::Min),
        "MAX" => Some(AggregateFunction::Max),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_canonical_view_query() {
        let s = parse_select("SELECT a0, AVG(m0) FROM diab WHERE a1 = 'x' GROUP BY a0").unwrap();
        assert_eq!(s.projections.len(), 2);
        assert_eq!(s.projections[0], Projection::Column("a0".into()));
        assert_eq!(
            s.projections[1],
            Projection::Aggregate(Aggregate {
                func: AggregateFunction::Avg,
                column: Some("m0".into())
            })
        );
        assert_eq!(s.from, "diab");
        assert_eq!(s.group_by.as_deref(), Some("a0"));
        assert!(s.limit.is_none());
        assert!(matches!(s.where_clause, Some(SqlExpr::Compare { .. })));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let s = parse_select("select * from t where x > 1 limit 5").unwrap();
        assert_eq!(s.projections, vec![Projection::All]);
        assert_eq!(s.limit, Some(5));
    }

    #[test]
    fn count_star_and_aggregate_star_rules() {
        let s = parse_select("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(
            s.projections[0],
            Projection::Aggregate(Aggregate {
                func: AggregateFunction::Count,
                column: None
            })
        );
        assert!(parse_select("SELECT AVG(*) FROM t").is_err());
    }

    #[test]
    fn boolean_precedence_and_parens() {
        // a OR b AND c parses as a OR (b AND c).
        let s = parse_select("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match s.where_clause.unwrap() {
            SqlExpr::Or(_, right) => assert!(matches!(*right, SqlExpr::And(_, _))),
            other => panic!("expected OR at the top, got {other:?}"),
        }
        let s2 = parse_select("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3").unwrap();
        assert!(matches!(s2.where_clause.unwrap(), SqlExpr::And(_, _)));
    }

    #[test]
    fn in_between_and_not() {
        let s = parse_select(
            "SELECT * FROM t WHERE color IN ('red', 'blue') AND age BETWEEN 20 AND 65 AND NOT x = 1",
        )
        .unwrap();
        let mut found_in = false;
        let mut found_between = false;
        let mut found_not = false;
        fn walk(e: &SqlExpr, f: &mut impl FnMut(&SqlExpr)) {
            f(e);
            match e {
                SqlExpr::And(a, b) | SqlExpr::Or(a, b) => {
                    walk(a, f);
                    walk(b, f);
                }
                SqlExpr::Not(a) => walk(a, f),
                _ => {}
            }
        }
        walk(&s.where_clause.unwrap(), &mut |e| match e {
            SqlExpr::InList { .. } => found_in = true,
            SqlExpr::Between { .. } => found_between = true,
            SqlExpr::Not(_) => found_not = true,
            _ => {}
        });
        assert!(found_in && found_between && found_not);
    }

    #[test]
    fn not_between() {
        let s = parse_select("SELECT * FROM t WHERE age NOT BETWEEN 20 AND 30").unwrap();
        assert!(matches!(s.where_clause.unwrap(), SqlExpr::Not(_)));
        assert!(parse_select("SELECT * FROM t WHERE age NOT = 5").is_err());
    }

    #[test]
    fn order_by_variants() {
        let s =
            parse_select("SELECT city, AVG(m) FROM t GROUP BY city ORDER BY AVG(m) DESC LIMIT 3")
                .unwrap();
        assert_eq!(s.order_by, Some(("AVG(m)".into(), SortOrder::Desc)));
        assert_eq!(s.limit, Some(3));
        let asc = parse_select("SELECT * FROM t ORDER BY age").unwrap();
        assert_eq!(asc.order_by, Some(("age".into(), SortOrder::Asc)));
        let explicit = parse_select("SELECT * FROM t ORDER BY age ASC").unwrap();
        assert_eq!(explicit.order_by, Some(("age".into(), SortOrder::Asc)));
        assert!(parse_select("SELECT * FROM t ORDER age").is_err());
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse_select("FROM t").is_err());
        assert!(parse_select("SELECT FROM t").is_err());
        assert!(parse_select("SELECT * FROM").is_err());
        assert!(parse_select("SELECT * FROM t WHERE").is_err());
        assert!(parse_select("SELECT * FROM t GROUP a").is_err());
        assert!(parse_select("SELECT * FROM t LIMIT 2.5").is_err());
        assert!(parse_select("SELECT * FROM t extra").is_err());
        assert!(parse_select("SELECT * FROM t WHERE a = ").is_err());
        assert!(parse_select("SELECT * FROM t WHERE = 3").is_err());
    }
}
