//! Zone maps: per-row-group column statistics and predicate pruning.
//!
//! A [`ZoneMaps`] cuts a table's row range into fixed-size *row groups*
//! and records, for every `(group, column)` pair, a small summary — value
//! range, NaN count, and a distinct-count bound. The VSC2 on-disk format
//! persists these summaries in its manifest so a predicate can be pruned
//! against a dataset *before* any block is decoded; for in-memory tables
//! the same summaries are built in one streaming pass.
//!
//! Pruning classifies a predicate per group into a tri-state
//! [`ZoneDecision`]:
//!
//! * `Exclude` — the zone proves **no** row of the group can match; the
//!   group's rows are skipped without being read;
//! * `IncludeAll` — the zone proves **every** row matches; the group's
//!   row ids are emitted without reading values;
//! * `Scan` — the zone is inconclusive; the group is evaluated row by
//!   row, exactly like [`Predicate::evaluate`] would.
//!
//! [`Predicate::evaluate_pruned`] is *set-identical* to
//! [`Predicate::evaluate`] for every predicate/table pair (pinned by a
//! differential property test): classification is sound in both
//! directions, and the `Scan` fallback applies the same row-wise
//! semantics — half-open ranges, NaN never matching `Range`, unknown
//! `Eq`/`In` values matching nothing.

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::predicate::Predicate;
use crate::selection::RowSet;
use crate::table::Table;
use crate::DatasetError;

/// Default rows per group: matches the VSC2 on-disk row-group size, so
/// in-memory zone maps line up with persisted ones.
pub const DEFAULT_GROUP_ROWS: usize = 65_536;

/// Zone summary for one `(row group, column)` pair.
///
/// Float bounds are stored as IEEE-754 bit patterns so the summary
/// serializes losslessly through JSON manifests (`serde_json` cannot
/// round-trip `±inf`, and exact bits are what tamper detection compares).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnZone {
    /// Numeric column summary.
    Numeric {
        /// Bit pattern of the minimum non-NaN value (`+inf` when every
        /// value is NaN or the group is empty).
        min_bits: u64,
        /// Bit pattern of the maximum non-NaN value (`-inf` when every
        /// value is NaN or the group is empty).
        max_bits: u64,
        /// NaN values in the group.
        nan_count: u64,
        /// Upper bound on the number of distinct values (run count — every
        /// distinct value occupies at least one maximal run).
        distinct_bound: u64,
    },
    /// Categorical column summary over dictionary codes.
    Categorical {
        /// Smallest code in the group (0 when empty).
        min_code: u32,
        /// Largest code in the group (0 when empty).
        max_code: u32,
        /// Upper bound on the number of distinct codes (run count).
        distinct_bound: u64,
    },
}

impl ColumnZone {
    /// Summarizes a slice of numeric values.
    #[must_use]
    pub fn of_numeric(values: &[f64]) -> Self {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut nan_count = 0u64;
        let mut runs = 0u64;
        let mut prev_bits: Option<u64> = None;
        for &v in values {
            if v.is_nan() {
                nan_count += 1;
            } else {
                if v < min {
                    min = v;
                }
                if v > max {
                    max = v;
                }
            }
            let bits = v.to_bits();
            if prev_bits != Some(bits) {
                runs += 1;
                prev_bits = Some(bits);
            }
        }
        ColumnZone::Numeric {
            min_bits: min.to_bits(),
            max_bits: max.to_bits(),
            nan_count,
            distinct_bound: runs,
        }
    }

    /// Summarizes a slice of dictionary codes.
    #[must_use]
    pub fn of_codes(codes: &[u32]) -> Self {
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut runs = 0u64;
        let mut prev: Option<u32> = None;
        for &c in codes {
            if c < min {
                min = c;
            }
            if c > max {
                max = c;
            }
            if prev != Some(c) {
                runs += 1;
                prev = Some(c);
            }
        }
        if codes.is_empty() {
            min = 0;
        }
        ColumnZone::Categorical {
            min_code: min,
            max_code: max,
            distinct_bound: runs,
        }
    }

    /// Summarizes the rows `[start, end)` of a column.
    #[must_use]
    pub fn of_column(column: &Column, start: usize, end: usize) -> Self {
        match column {
            Column::Numeric(values) => {
                ColumnZone::of_numeric(values.as_slice().get(start..end).unwrap_or(&[]))
            }
            Column::Categorical { codes, .. } => {
                ColumnZone::of_codes(codes.get(start..end).unwrap_or(&[]))
            }
        }
    }
}

/// Per-row-group zone summaries for every column of a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneMaps {
    /// Rows per group (the final group may be shorter).
    pub group_rows: usize,
    /// Total rows covered.
    pub rows: usize,
    /// `groups[g][c]` summarizes rows `[g·group_rows, ..)` of column `c`.
    pub groups: Vec<Vec<ColumnZone>>,
}

impl ZoneMaps {
    /// Builds zone maps for `table` in one streaming pass.
    ///
    /// A `group_rows` of zero falls back to [`DEFAULT_GROUP_ROWS`].
    #[must_use]
    pub fn build(table: &Table, group_rows: usize) -> Self {
        let group_rows = if group_rows == 0 {
            DEFAULT_GROUP_ROWS
        } else {
            group_rows
        };
        let rows = table.row_count();
        let n_groups = rows.div_ceil(group_rows);
        let n_cols = table.schema().len();
        let mut groups = Vec::with_capacity(n_groups);
        for g in 0..n_groups {
            let start = g * group_rows;
            let end = (start + group_rows).min(rows);
            let mut zones = Vec::with_capacity(n_cols);
            for c in 0..n_cols {
                zones.push(ColumnZone::of_column(table.column(c), start, end));
            }
            groups.push(zones);
        }
        ZoneMaps {
            group_rows,
            rows,
            groups,
        }
    }

    /// Number of row groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The row range `[start, end)` of group `g`.
    #[must_use]
    pub fn group_range(&self, g: usize) -> (usize, usize) {
        let start = g * self.group_rows;
        (
            (start).min(self.rows),
            (start + self.group_rows).min(self.rows),
        )
    }

    /// Whether these maps describe `table`'s shape (row count and column
    /// count); a mismatch means the maps were built for different data.
    #[must_use]
    pub fn covers(&self, table: &Table) -> bool {
        self.rows == table.row_count()
            && self.groups.iter().all(|g| g.len() == table.schema().len())
    }
}

/// Outcome of classifying a predicate against one row group's zones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneDecision {
    /// No row of the group can match.
    Exclude,
    /// Every row of the group matches.
    IncludeAll,
    /// Inconclusive; evaluate row by row.
    Scan,
}

/// Work counters from one pruned predicate evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneStats {
    /// Total row groups considered.
    pub groups: u64,
    /// Groups excluded entirely by their zones (no rows read).
    pub pruned: u64,
    /// Groups fully included by their zones (row ids emitted, no values
    /// read).
    pub included: u64,
    /// Groups evaluated row by row.
    pub scanned: u64,
}

/// A predicate compiled against one table: column references resolved to
/// indices and value slices, `Eq`/`In` values translated to a code mask.
/// Shared by the classification pass and the row-wise `Scan` fallback.
enum Compiled<'t> {
    True,
    /// `Eq`/`In`: the row's code must be `wanted`.
    Member {
        col: usize,
        codes: &'t [u32],
        wanted: Vec<bool>,
    },
    /// `Range`: `low <= v < high` (false for NaN).
    Range {
        col: usize,
        values: &'t [f64],
        low: f64,
        high: f64,
    },
    And(Vec<Compiled<'t>>),
    Or(Vec<Compiled<'t>>),
    Not(Box<Compiled<'t>>),
}

impl<'t> Compiled<'t> {
    fn compile(pred: &Predicate, table: &'t Table) -> Result<Self, DatasetError> {
        match pred {
            Predicate::True => Ok(Compiled::True),
            Predicate::Eq { column, value } => {
                Compiled::member(table, column, std::slice::from_ref(value))
            }
            Predicate::In { column, values } => Compiled::member(table, column, values),
            Predicate::Range { column, low, high } => {
                let col = table
                    .schema()
                    .index_of(column)
                    .ok_or_else(|| DatasetError::UnknownColumn(column.clone()))?;
                let values =
                    table
                        .column(col)
                        .values()
                        .ok_or_else(|| DatasetError::ColumnTypeMismatch {
                            column: column.clone(),
                            expected: "numeric (Range predicate)",
                        })?;
                Ok(Compiled::Range {
                    col,
                    values,
                    low: *low,
                    high: *high,
                })
            }
            Predicate::And(preds) => Ok(Compiled::And(
                preds
                    .iter()
                    .map(|p| Compiled::compile(p, table))
                    .collect::<Result<_, _>>()?,
            )),
            Predicate::Or(preds) => Ok(Compiled::Or(
                preds
                    .iter()
                    .map(|p| Compiled::compile(p, table))
                    .collect::<Result<_, _>>()?,
            )),
            Predicate::Not(inner) => Ok(Compiled::Not(Box::new(Compiled::compile(inner, table)?))),
        }
    }

    fn member(table: &'t Table, column: &str, values: &[String]) -> Result<Self, DatasetError> {
        let col = table
            .schema()
            .index_of(column)
            .ok_or_else(|| DatasetError::UnknownColumn(column.to_owned()))?;
        let (codes, dictionary) = match (table.column(col).codes(), table.column(col).dictionary())
        {
            (Some(c), Some(d)) => (c, d),
            _ => {
                return Err(DatasetError::ColumnTypeMismatch {
                    column: column.to_owned(),
                    expected: "categorical (Eq/In predicate)",
                })
            }
        };
        let mut wanted = vec![false; dictionary.len()];
        for v in values {
            if let Some(code) = dictionary.iter().position(|d| d == v) {
                if let Some(w) = wanted.get_mut(code) {
                    *w = true;
                }
            }
        }
        Ok(Compiled::Member { col, codes, wanted })
    }

    /// Row-wise evaluation — exactly [`Predicate::evaluate`]'s semantics.
    fn matches(&self, row: usize) -> bool {
        match self {
            Compiled::True => true,
            Compiled::Member { codes, wanted, .. } => codes
                .get(row)
                .is_some_and(|&c| wanted.get(c as usize).copied().unwrap_or(false)),
            Compiled::Range {
                values, low, high, ..
            } => values.get(row).is_some_and(|&v| v >= *low && v < *high),
            Compiled::And(preds) => preds.iter().all(|p| p.matches(row)),
            Compiled::Or(preds) => preds.iter().any(|p| p.matches(row)),
            Compiled::Not(inner) => !inner.matches(row),
        }
    }

    /// Classifies this predicate against group `g`'s zones. Sound in both
    /// directions: `Exclude` only when no row can match, `IncludeAll` only
    /// when every row must match.
    fn classify(&self, zones: &[ColumnZone], group_len: usize) -> ZoneDecision {
        match self {
            Compiled::True => ZoneDecision::IncludeAll,
            Compiled::Member { col, wanted, .. } => {
                let Some(ColumnZone::Categorical {
                    min_code, max_code, ..
                }) = zones.get(*col)
                else {
                    return ZoneDecision::Scan;
                };
                if group_len == 0 {
                    return ZoneDecision::Exclude;
                }
                if *max_code as usize >= wanted.len() || min_code > max_code {
                    // Codes beyond the dictionary (or an inverted span)
                    // mean the zone wasn't built for this column: don't
                    // reason from it — and don't iterate an attacker-sized
                    // span either.
                    return ZoneDecision::Scan;
                }
                let span = *min_code..=*max_code;
                let mut any = false;
                let mut all = true;
                for code in span {
                    let hit = wanted.get(code as usize).copied().unwrap_or(false);
                    any |= hit;
                    all &= hit;
                }
                if !any {
                    ZoneDecision::Exclude
                } else if all {
                    // Every code the group *can* contain is wanted, and
                    // every row's code lies in [min, max].
                    ZoneDecision::IncludeAll
                } else {
                    ZoneDecision::Scan
                }
            }
            Compiled::Range { col, low, high, .. } => {
                let Some(ColumnZone::Numeric {
                    min_bits,
                    max_bits,
                    nan_count,
                    ..
                }) = zones.get(*col)
                else {
                    return ZoneDecision::Scan;
                };
                if group_len == 0 {
                    return ZoneDecision::Exclude;
                }
                let min = f64::from_bits(*min_bits);
                let max = f64::from_bits(*max_bits);
                if *nan_count as usize == group_len {
                    // All NaN: comparisons are false for every row.
                    return ZoneDecision::Exclude;
                }
                if max < *low || min >= *high {
                    // Every non-NaN value misses, NaN rows never match.
                    return ZoneDecision::Exclude;
                }
                if *nan_count == 0 && min >= *low && max < *high {
                    return ZoneDecision::IncludeAll;
                }
                ZoneDecision::Scan
            }
            Compiled::And(preds) => {
                let mut all_include = true;
                for p in preds {
                    match p.classify(zones, group_len) {
                        ZoneDecision::Exclude => return ZoneDecision::Exclude,
                        ZoneDecision::Scan => all_include = false,
                        ZoneDecision::IncludeAll => {}
                    }
                }
                if all_include {
                    ZoneDecision::IncludeAll
                } else {
                    ZoneDecision::Scan
                }
            }
            Compiled::Or(preds) => {
                let mut all_exclude = true;
                for p in preds {
                    match p.classify(zones, group_len) {
                        ZoneDecision::IncludeAll => return ZoneDecision::IncludeAll,
                        ZoneDecision::Scan => all_exclude = false,
                        ZoneDecision::Exclude => {}
                    }
                }
                if all_exclude {
                    ZoneDecision::Exclude
                } else {
                    ZoneDecision::Scan
                }
            }
            Compiled::Not(inner) => match inner.classify(zones, group_len) {
                ZoneDecision::Exclude => ZoneDecision::IncludeAll,
                ZoneDecision::IncludeAll => ZoneDecision::Exclude,
                ZoneDecision::Scan => ZoneDecision::Scan,
            },
        }
    }
}

impl Predicate {
    /// Evaluates the predicate with zone-map pruning: row groups the zones
    /// prove excluded are skipped without reading a value, fully-included
    /// groups emit their row ids directly, and only inconclusive groups
    /// are evaluated row by row.
    ///
    /// The returned [`RowSet`] is **identical** to
    /// [`Predicate::evaluate`]'s for any predicate/table pair; `zones`
    /// that do not cover the table (different row/column count) fall back
    /// to scanning every group.
    ///
    /// # Errors
    ///
    /// The same column-resolution and type errors as
    /// [`Predicate::evaluate`].
    pub fn evaluate_pruned(
        &self,
        table: &Table,
        zones: &ZoneMaps,
    ) -> Result<(RowSet, PruneStats), DatasetError> {
        let compiled = Compiled::compile(self, table)?;
        let usable = zones.covers(table);
        let n_rows = table.row_count();
        let group_rows = if zones.group_rows == 0 {
            DEFAULT_GROUP_ROWS
        } else {
            zones.group_rows
        };
        let n_groups = n_rows.div_ceil(group_rows);
        let mut stats = PruneStats {
            groups: n_groups as u64,
            ..PruneStats::default()
        };
        let mut ids: Vec<u32> = Vec::new();
        let empty: Vec<ColumnZone> = Vec::new();
        for g in 0..n_groups {
            let start = g * group_rows;
            let end = (start + group_rows).min(n_rows);
            let zone = if usable {
                zones.groups.get(g).unwrap_or(&empty)
            } else {
                &empty
            };
            let decision = if usable && !zone.is_empty() {
                compiled.classify(zone, end - start)
            } else {
                ZoneDecision::Scan
            };
            match decision {
                ZoneDecision::Exclude => stats.pruned += 1,
                ZoneDecision::IncludeAll => {
                    stats.included += 1;
                    ids.extend((start as u32)..(end as u32));
                }
                ZoneDecision::Scan => {
                    stats.scanned += 1;
                    for row in start..end {
                        if compiled.matches(row) {
                            ids.push(row as u32);
                        }
                    }
                }
            }
        }
        Ok((RowSet::from_sorted_ids(ids)?, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn table(rows: usize) -> Table {
        // Clustered layout: color blocks of 8, ascending ages — zones can
        // actually prune.
        let colors: Vec<&str> = (0..rows)
            .map(|i| ["red", "blue", "green"][(i / 8) % 3])
            .collect();
        let ages: Vec<f64> = (0..rows).map(|i| i as f64).collect();
        let schema = Schema::builder()
            .categorical_dimension("color")
            .numeric_dimension("age")
            .build()
            .unwrap();
        Table::new(
            schema,
            vec![
                Column::categorical_from_values(&colors),
                Column::numeric(ages),
            ],
        )
        .unwrap()
    }

    fn assert_identical(pred: &Predicate, t: &Table, zones: &ZoneMaps) -> PruneStats {
        let plain = pred.evaluate(t).unwrap();
        let (pruned, stats) = pred.evaluate_pruned(t, zones).unwrap();
        assert_eq!(plain.ids(), pruned.ids(), "pruned evaluation diverged");
        stats
    }

    #[test]
    fn range_pruning_skips_excluded_groups() {
        let t = table(64);
        let zones = ZoneMaps::build(&t, 16);
        let p = Predicate::range("age", 0.0, 16.0);
        let stats = assert_identical(&p, &t, &zones);
        assert_eq!(stats.groups, 4);
        assert_eq!(stats.pruned, 3);
        assert_eq!(stats.included, 1, "first group is wholly inside");
    }

    #[test]
    fn boundary_straddling_ranges_scan_only_edge_groups() {
        let t = table(64);
        let zones = ZoneMaps::build(&t, 16);
        let p = Predicate::range("age", 8.0, 24.0);
        let stats = assert_identical(&p, &t, &zones);
        assert_eq!(stats.pruned, 2);
        assert_eq!(stats.scanned, 2);
    }

    #[test]
    fn categorical_pruning_uses_code_spans() {
        let t = table(48);
        let zones = ZoneMaps::build(&t, 8);
        // Groups are single-color runs of 8 — every group is either all
        // "red" (IncludeAll) or red-free (Exclude).
        let stats = assert_identical(&Predicate::eq("color", "red"), &t, &zones);
        assert_eq!(stats.scanned, 0);
        assert!(stats.pruned > 0 && stats.included > 0);
    }

    #[test]
    fn boolean_composition_and_unknown_values_stay_identical() {
        let t = table(100);
        let zones = ZoneMaps::build(&t, 16);
        let preds = [
            Predicate::True,
            Predicate::eq("color", "purple"),
            Predicate::eq("color", "red").and(Predicate::range("age", 10.0, 60.0)),
            Predicate::Or(vec![
                Predicate::range("age", 0.0, 5.0),
                Predicate::range("age", 90.0, f64::INFINITY),
            ]),
            Predicate::Not(Box::new(Predicate::range("age", 20.0, 80.0))),
            Predicate::And(vec![]),
            Predicate::Or(vec![]),
        ];
        for p in &preds {
            assert_identical(p, &t, &zones);
        }
    }

    #[test]
    fn nan_rows_never_match_ranges() {
        let schema = Schema::builder().numeric_dimension("x").build().unwrap();
        let t = Table::new(
            schema,
            vec![Column::numeric(vec![
                1.0,
                f64::NAN,
                3.0,
                f64::NAN,
                f64::NAN,
                f64::NAN,
            ])],
        )
        .unwrap();
        let zones = ZoneMaps::build(&t, 3);
        // Second group is all-NaN → Exclude even for an unbounded range.
        let p = Predicate::range("x", f64::NEG_INFINITY, f64::INFINITY);
        let stats = assert_identical(&p, &t, &zones);
        assert_eq!(stats.pruned, 1);
    }

    #[test]
    fn mismatched_zones_fall_back_to_scanning() {
        let t = table(32);
        let other = table(16);
        let zones = ZoneMaps::build(&other, 8);
        let p = Predicate::range("age", 0.0, 8.0);
        let (set, stats) = p.evaluate_pruned(&t, &zones).unwrap();
        assert_eq!(set.ids(), p.evaluate(&t).unwrap().ids());
        assert_eq!(stats.pruned, 0, "uncovered zones must not prune");
    }

    #[test]
    fn zone_summaries_handle_empty_and_nan() {
        let z = ColumnZone::of_numeric(&[]);
        match z {
            ColumnZone::Numeric {
                min_bits,
                max_bits,
                nan_count,
                distinct_bound,
            } => {
                assert_eq!(f64::from_bits(min_bits), f64::INFINITY);
                assert_eq!(f64::from_bits(max_bits), f64::NEG_INFINITY);
                assert_eq!((nan_count, distinct_bound), (0, 0));
            }
            ColumnZone::Categorical { .. } => panic!("numeric zone expected"),
        }
        let z = ColumnZone::of_numeric(&[f64::NAN, f64::NAN]);
        match z {
            ColumnZone::Numeric { nan_count, .. } => assert_eq!(nan_count, 2),
            ColumnZone::Categorical { .. } => panic!("numeric zone expected"),
        }
    }

    #[test]
    fn distinct_bound_is_an_upper_bound() {
        // [1,2,1,2] has 2 distinct values and 4 runs — the bound may be
        // loose but never under-counts.
        let z = ColumnZone::of_numeric(&[1.0, 2.0, 1.0, 2.0]);
        match z {
            ColumnZone::Numeric { distinct_bound, .. } => assert_eq!(distinct_bound, 4),
            ColumnZone::Categorical { .. } => panic!("numeric zone expected"),
        }
        let z = ColumnZone::of_codes(&[5, 5, 5, 2]);
        match z {
            ColumnZone::Categorical {
                min_code,
                max_code,
                distinct_bound,
            } => assert_eq!((min_code, max_code, distinct_bound), (2, 5, 2)),
            ColumnZone::Numeric { .. } => panic!("categorical zone expected"),
        }
    }
}
