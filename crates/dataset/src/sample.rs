//! Seeded uniform sampling.
//!
//! The α-sampling optimization (paper §3.3) computes "rough" utility features
//! over a uniform sample of `α` percent of the data. Sampling is seeded so
//! experiments are reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::selection::RowSet;

/// Keeps each row of `rows` independently with probability `fraction`
/// (Bernoulli sampling), deterministically for a given seed.
///
/// `fraction` is clamped to `[0, 1]`.
#[must_use]
pub fn bernoulli_sample(rows: &RowSet, fraction: f64, seed: u64) -> RowSet {
    let fraction = fraction.clamp(0.0, 1.0);
    if fraction >= 1.0 {
        return rows.clone();
    }
    if fraction <= 0.0 {
        return RowSet::empty();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let ids: Vec<u32> = rows
        .ids()
        .iter()
        .copied()
        .filter(|_| rng.gen::<f64>() < fraction)
        .collect();
    // Filtering a sorted id list preserves strict ordering, so this cannot
    // fail; the fallback keeps the path panic-free regardless.
    RowSet::from_sorted_ids(ids).unwrap_or_else(|_| RowSet::empty())
}

/// Draws exactly `min(k, rows.len())` rows uniformly without replacement,
/// deterministically for a given seed.
#[must_use]
pub fn fixed_size_sample(rows: &RowSet, k: usize, seed: u64) -> RowSet {
    if k >= rows.len() {
        return rows.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<u32> = rows.ids().to_vec();
    pool.shuffle(&mut rng);
    pool.truncate(k);
    RowSet::from_ids(pool).expect("sampled ids are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_is_deterministic() {
        let rows = RowSet::all(10_000);
        let a = bernoulli_sample(&rows, 0.1, 42);
        let b = bernoulli_sample(&rows, 0.1, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn bernoulli_hits_expected_fraction() {
        let rows = RowSet::all(100_000);
        let s = bernoulli_sample(&rows, 0.1, 7);
        let frac = s.len() as f64 / 100_000.0;
        assert!((frac - 0.1).abs() < 0.01, "fraction was {frac}");
    }

    #[test]
    fn bernoulli_extremes() {
        let rows = RowSet::all(100);
        assert_eq!(bernoulli_sample(&rows, 1.0, 1), rows);
        assert!(bernoulli_sample(&rows, 0.0, 1).is_empty());
        // Out-of-range fractions clamp.
        assert_eq!(bernoulli_sample(&rows, 2.5, 1), rows);
        assert!(bernoulli_sample(&rows, -1.0, 1).is_empty());
    }

    #[test]
    fn bernoulli_sample_is_subset() {
        let rows = RowSet::from_ids((0..1000).step_by(3).collect()).unwrap();
        let s = bernoulli_sample(&rows, 0.5, 99);
        assert!(s.ids().iter().all(|id| rows.contains(*id)));
    }

    #[test]
    fn fixed_size_exact_count() {
        let rows = RowSet::all(1000);
        let s = fixed_size_sample(&rows, 37, 3);
        assert_eq!(s.len(), 37);
        assert!(s.ids().iter().all(|id| *id < 1000));
    }

    #[test]
    fn fixed_size_caps_at_population() {
        let rows = RowSet::all(10);
        assert_eq!(fixed_size_sample(&rows, 100, 3).len(), 10);
    }

    #[test]
    fn different_seeds_differ() {
        let rows = RowSet::all(10_000);
        let a = bernoulli_sample(&rows, 0.5, 1);
        let b = bernoulli_sample(&rows, 0.5, 2);
        assert_ne!(a, b);
    }
}
