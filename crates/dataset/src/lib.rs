//! In-memory columnar analytic engine for ViewSeeker.
//!
//! ViewSeeker operates over a multi-dimensional data model: a table with
//! *dimension attributes* `A` (categorical or binnable numeric columns that
//! views group by) and *measure attributes* `M` (numeric columns that views
//! aggregate). This crate provides that substrate, built from scratch:
//!
//! * [`schema`] / [`mod@column`] / [`table`] — a dictionary-encoded columnar
//!   store with role-tagged attributes;
//! * [`predicate`] / [`selection`] / [`query`] — a predicate AST evaluated
//!   into row selections; this is how the user query `Q` carves the subset
//!   `DQ` out of the full database `DR`;
//! * [`binning`] / [`aggregate`] — group-by aggregation over a dimension with
//!   one of the paper's five aggregate functions (COUNT, SUM, AVG, MIN, MAX),
//!   producing the per-bin vectors that become view distributions;
//! * [`executor`] — the fused executor: every `(dimension, measure)` group
//!   of a whole view space answered in one partition-parallel scan, with a
//!   deterministic merge that is bit-identical across thread counts;
//! * [`sample`] — seeded uniform sampling (the α-sampling optimization);
//! * [`csv`] — a minimal CSV codec so generated datasets can be persisted;
//! * [`generate`] — the SYN and DIAB-like dataset generators plus the
//!   hypercube query generator used by the paper's testbed (Table 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod binning;
pub mod builder;
pub mod column;
pub mod csv;
pub mod executor;
pub mod generate;
pub mod predicate;
pub mod query;
pub mod sample;
pub mod schema;
pub mod selection;
pub mod sql;
pub mod table;
pub mod zones;

pub use aggregate::{AggregateFunction, GroupByResult};
pub use binning::BinSpec;
pub use column::{Column, F64Buffer, NumericStorage};
pub use executor::{
    fused_group_by_all, fused_group_by_all_pruned, fused_group_by_all_raw, strict_sum,
    FusedGroupResult, FusedScanStats, GroupRequest, RawAggregates,
};
pub use predicate::Predicate;
pub use query::SelectQuery;
pub use schema::{AttributeRole, ColumnMeta, Schema};
pub use selection::RowSet;
pub use table::Table;
pub use zones::{ColumnZone, PruneStats, ZoneMaps, DEFAULT_GROUP_ROWS};

/// Errors produced by the dataset engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// The column exists but has the wrong type or role for the operation.
    ColumnTypeMismatch {
        /// Column name.
        column: String,
        /// What the operation expected.
        expected: &'static str,
    },
    /// Columns of differing lengths were assembled into one table.
    LengthMismatch {
        /// Column name.
        column: String,
        /// That column's length.
        len: usize,
        /// The table's row count.
        expected: usize,
    },
    /// A dictionary code or row index was out of range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The container's length.
        len: usize,
    },
    /// CSV input could not be parsed.
    Csv(String),
    /// SQL input could not be parsed or executed.
    Sql(String),
    /// Invalid construction parameters (empty schema, zero bins, ...).
    Invalid(String),
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            DatasetError::ColumnTypeMismatch { column, expected } => {
                write!(f, "column {column} is not {expected}")
            }
            DatasetError::LengthMismatch {
                column,
                len,
                expected,
            } => write!(
                f,
                "column {column} has {len} rows, table expects {expected}"
            ),
            DatasetError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            DatasetError::Csv(msg) => write!(f, "csv error: {msg}"),
            DatasetError::Sql(msg) => write!(f, "sql error: {msg}"),
            DatasetError::Invalid(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}
