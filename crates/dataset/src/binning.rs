//! Bin specifications for group-by dimensions.
//!
//! A view groups rows into *bins* along a dimension attribute:
//!
//! * a categorical dimension has one bin per dictionary entry;
//! * a numeric dimension is split into `n` equal-width bins over its value
//!   range — the SYN testbed uses two bin configurations (3 and 4 bins),
//!   which doubles its view space (Table 1).

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::DatasetError;

/// How a dimension column's values map to bin indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BinSpec {
    /// One bin per dictionary code of a categorical column.
    Categorical {
        /// Bin labels (the dictionary), index = bin.
        labels: Vec<String>,
    },
    /// `count` equal-width bins over `[min, max]` of a numeric column.
    /// Values outside the range clamp to the first/last bin; the max value
    /// falls in the last bin.
    EqualWidth {
        /// Number of bins (≥ 1).
        count: usize,
        /// Lower edge of the first bin.
        min: f64,
        /// Upper edge of the last bin.
        max: f64,
    },
    /// Quantile (equal-frequency) bins: bin `i` covers
    /// `[edges[i], edges[i+1])`, with the final bin closed above. Produces
    /// visually balanced histograms on skewed measures — the line-chart-
    /// friendly binning the paper's future work gestures at.
    EqualFrequency {
        /// Interior bin edges, strictly increasing (`len = bins − 1`).
        edges: Vec<f64>,
    },
}

impl BinSpec {
    /// Derives the natural categorical spec from a categorical column.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::ColumnTypeMismatch`] for a numeric column and
    /// [`DatasetError::Invalid`] for an empty dictionary.
    pub fn categorical_of(column: &Column) -> Result<Self, DatasetError> {
        let labels = column
            .dictionary()
            .ok_or(DatasetError::ColumnTypeMismatch {
                column: String::new(),
                expected: "categorical",
            })?
            .to_vec();
        if labels.is_empty() {
            return Err(DatasetError::Invalid(
                "categorical column has an empty dictionary".into(),
            ));
        }
        Ok(BinSpec::Categorical { labels })
    }

    /// Derives an equal-width spec over the observed range of a numeric
    /// column.
    ///
    /// # Errors
    ///
    /// [`DatasetError::Invalid`] for zero bins or an empty/all-NaN column;
    /// [`DatasetError::ColumnTypeMismatch`] for a categorical column.
    pub fn equal_width_of(column: &Column, count: usize) -> Result<Self, DatasetError> {
        if count == 0 {
            return Err(DatasetError::Invalid("bin count must be positive".into()));
        }
        if column.is_categorical() {
            return Err(DatasetError::ColumnTypeMismatch {
                column: String::new(),
                expected: "numeric",
            });
        }
        let (min, max) = column
            .numeric_range()
            .ok_or_else(|| DatasetError::Invalid("cannot bin an empty column".into()))?;
        Ok(BinSpec::EqualWidth { count, min, max })
    }

    /// Derives an equal-frequency (quantile) spec from a numeric column:
    /// interior edges are placed at the `i/count` quantiles of the observed
    /// values, deduplicated (heavily repeated values can merge bins).
    ///
    /// # Errors
    ///
    /// [`DatasetError::Invalid`] for zero bins or an empty/all-NaN column;
    /// [`DatasetError::ColumnTypeMismatch`] for a categorical column.
    pub fn equal_frequency_of(column: &Column, count: usize) -> Result<Self, DatasetError> {
        if count == 0 {
            return Err(DatasetError::Invalid("bin count must be positive".into()));
        }
        let values = column.values().ok_or(DatasetError::ColumnTypeMismatch {
            column: String::new(),
            expected: "numeric",
        })?;
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if sorted.is_empty() {
            return Err(DatasetError::Invalid("cannot bin an empty column".into()));
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
        let mut edges = Vec::with_capacity(count.saturating_sub(1));
        for i in 1..count {
            let pos = (i * sorted.len()) / count;
            let edge = sorted[pos.min(sorted.len() - 1)];
            // An edge at (or below) the minimum would split off an empty
            // first bin; duplicated edges would create empty middle bins.
            if edge > sorted[0] && edges.last().is_none_or(|last| *last < edge) {
                edges.push(edge);
            }
        }
        Ok(BinSpec::EqualFrequency { edges })
    }

    /// Number of bins.
    #[must_use]
    pub fn bin_count(&self) -> usize {
        match self {
            BinSpec::Categorical { labels } => labels.len(),
            BinSpec::EqualWidth { count, .. } => *count,
            BinSpec::EqualFrequency { edges } => edges.len() + 1,
        }
    }

    /// Human-readable label for bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bin_count()`.
    #[must_use]
    pub fn label(&self, i: usize) -> String {
        match self {
            BinSpec::Categorical { labels } => labels[i].clone(),
            BinSpec::EqualWidth { count, min, max } => {
                assert!(i < *count, "bin index out of range");
                let width = (max - min) / *count as f64;
                let lo = min + width * i as f64;
                let hi = if i + 1 == *count { *max } else { lo + width };
                format!(
                    "[{lo:.3}, {hi:.3}{}",
                    if i + 1 == *count { "]" } else { ")" }
                )
            }
            BinSpec::EqualFrequency { edges } => {
                assert!(i <= edges.len(), "bin index out of range");
                match (i.checked_sub(1).map(|j| edges[j]), edges.get(i)) {
                    (None, Some(hi)) => format!("(-inf, {hi:.3})"),
                    (Some(lo), Some(hi)) => format!("[{lo:.3}, {hi:.3})"),
                    (Some(lo), None) => format!("[{lo:.3}, +inf)"),
                    (None, None) => "(-inf, +inf)".to_owned(),
                }
            }
        }
    }

    /// Maps every row of `column` to its bin index.
    ///
    /// Numeric NaNs map to bin 0 (they land somewhere deterministic rather
    /// than being dropped, so target/reference bin totals stay consistent).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::ColumnTypeMismatch`] if the column kind does
    /// not match the spec, or [`DatasetError::IndexOutOfRange`] if a
    /// categorical code exceeds the label list.
    pub fn assign(&self, column: &Column) -> Result<Vec<u32>, DatasetError> {
        match (self, column) {
            (BinSpec::Categorical { labels }, Column::Categorical { codes, .. }) => {
                if let Some(&bad) = codes.iter().find(|c| **c as usize >= labels.len()) {
                    return Err(DatasetError::IndexOutOfRange {
                        index: bad as usize,
                        len: labels.len(),
                    });
                }
                Ok(codes.clone())
            }
            (BinSpec::EqualWidth { count, min, max }, Column::Numeric(values)) => {
                let count = *count;
                let width = (max - min) / count as f64;
                Ok(values
                    .iter()
                    .map(|&v| {
                        if v.is_nan() || width <= 0.0 {
                            0
                        } else {
                            let raw = ((v - min) / width).floor();
                            (raw.clamp(0.0, (count - 1) as f64)) as u32
                        }
                    })
                    .collect())
            }
            (BinSpec::EqualFrequency { edges }, Column::Numeric(values)) => Ok(values
                .iter()
                .map(|&v| {
                    if v.is_nan() {
                        0
                    } else {
                        // First edge strictly greater than v = the bin index.
                        edges.partition_point(|e| *e <= v) as u32
                    }
                })
                .collect()),
            (BinSpec::Categorical { .. }, Column::Numeric(_)) => {
                Err(DatasetError::ColumnTypeMismatch {
                    column: String::new(),
                    expected: "categorical",
                })
            }
            (
                BinSpec::EqualWidth { .. } | BinSpec::EqualFrequency { .. },
                Column::Categorical { .. },
            ) => Err(DatasetError::ColumnTypeMismatch {
                column: String::new(),
                expected: "numeric",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_spec_mirrors_dictionary() {
        let col = Column::categorical_from_values(&["a", "b", "a", "c"]);
        let spec = BinSpec::categorical_of(&col).unwrap();
        assert_eq!(spec.bin_count(), 3);
        assert_eq!(spec.label(0), "a");
        assert_eq!(spec.assign(&col).unwrap(), vec![0, 1, 0, 2]);
    }

    #[test]
    fn equal_width_assignment() {
        let col = Column::numeric(vec![0.0, 2.5, 5.0, 7.5, 10.0]);
        let spec = BinSpec::equal_width_of(&col, 4).unwrap();
        assert_eq!(spec.bin_count(), 4);
        // Width 2.5: [0,2.5) [2.5,5) [5,7.5) [7.5,10]; 10.0 clamps into bin 3.
        assert_eq!(spec.assign(&col).unwrap(), vec![0, 1, 2, 3, 3]);
    }

    #[test]
    fn values_outside_range_clamp() {
        let spec = BinSpec::EqualWidth {
            count: 3,
            min: 0.0,
            max: 3.0,
        };
        let col = Column::numeric(vec![-5.0, 99.0, 1.5]);
        assert_eq!(spec.assign(&col).unwrap(), vec![0, 2, 1]);
    }

    #[test]
    fn nan_maps_to_first_bin() {
        let spec = BinSpec::EqualWidth {
            count: 2,
            min: 0.0,
            max: 1.0,
        };
        let col = Column::numeric(vec![f64::NAN, 0.9]);
        assert_eq!(spec.assign(&col).unwrap(), vec![0, 1]);
    }

    #[test]
    fn degenerate_range_maps_everything_to_bin_zero() {
        let col = Column::numeric(vec![5.0, 5.0, 5.0]);
        let spec = BinSpec::equal_width_of(&col, 3).unwrap();
        assert_eq!(spec.assign(&col).unwrap(), vec![0, 0, 0]);
    }

    #[test]
    fn zero_bins_rejected() {
        let col = Column::numeric(vec![1.0]);
        assert!(BinSpec::equal_width_of(&col, 0).is_err());
    }

    #[test]
    fn kind_mismatches_rejected() {
        let cat = Column::categorical_from_values(&["x"]);
        let num = Column::numeric(vec![1.0]);
        assert!(BinSpec::categorical_of(&num).is_err());
        assert!(BinSpec::equal_width_of(&cat, 2).is_err());
        let cat_spec = BinSpec::categorical_of(&cat).unwrap();
        assert!(cat_spec.assign(&num).is_err());
        let num_spec = BinSpec::equal_width_of(&num, 2).unwrap();
        assert!(num_spec.assign(&cat).is_err());
    }

    #[test]
    fn numeric_labels_are_half_open_except_last() {
        let spec = BinSpec::EqualWidth {
            count: 2,
            min: 0.0,
            max: 2.0,
        };
        assert_eq!(spec.label(0), "[0.000, 1.000)");
        assert_eq!(spec.label(1), "[1.000, 2.000]");
    }

    #[test]
    fn stale_dictionary_code_detected() {
        let spec = BinSpec::Categorical {
            labels: vec!["only".into()],
        };
        let col = Column::categorical_from_values(&["only", "new"]);
        assert!(matches!(
            spec.assign(&col),
            Err(DatasetError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn equal_frequency_balances_skewed_data() {
        // Heavily right-skewed values: quantile bins stay balanced where
        // equal-width bins would dump almost everything into bin 0.
        let values: Vec<f64> = (0..100).map(|i| ((i as f64) / 10.0).exp()).collect();
        let col = Column::numeric(values);
        let spec = BinSpec::equal_frequency_of(&col, 4).unwrap();
        assert_eq!(spec.bin_count(), 4);
        let assigned = spec.assign(&col).unwrap();
        let mut counts = [0usize; 4];
        for b in &assigned {
            counts[*b as usize] += 1;
        }
        for c in counts {
            assert!((20..=30).contains(&c), "balanced bins, got {counts:?}");
        }
    }

    #[test]
    fn equal_frequency_merges_duplicate_edges() {
        // A constant column cannot be split: it degrades to a single bin.
        let col = Column::numeric(vec![5.0; 20]);
        let spec = BinSpec::equal_frequency_of(&col, 4).unwrap();
        assert_eq!(spec.bin_count(), 1);
        assert!(spec.assign(&col).unwrap().iter().all(|b| *b == 0));
    }

    #[test]
    fn equal_frequency_labels_and_errors() {
        let col = Column::numeric(vec![1.0, 2.0, 3.0, 4.0]);
        let spec = BinSpec::equal_frequency_of(&col, 2).unwrap();
        assert!(spec.label(0).starts_with("(-inf"));
        assert!(spec.label(1).ends_with("+inf)"));
        assert!(BinSpec::equal_frequency_of(&col, 0).is_err());
        let cat = Column::categorical_from_values(&["x"]);
        assert!(BinSpec::equal_frequency_of(&cat, 2).is_err());
        assert!(spec.assign(&cat).is_err());
        let empty = Column::numeric(vec![]);
        assert!(BinSpec::equal_frequency_of(&empty, 2).is_err());
    }

    #[test]
    fn equal_frequency_nan_maps_to_first_bin() {
        let col = Column::numeric(vec![1.0, 2.0, 3.0, 4.0]);
        let spec = BinSpec::equal_frequency_of(&col, 2).unwrap();
        let probe = Column::numeric(vec![f64::NAN, 4.0]);
        assert_eq!(spec.assign(&probe).unwrap(), vec![0, 1]);
    }
}
