//! Column storage.
//!
//! Two physical layouts cover the paper's data model:
//!
//! * **Categorical** — dictionary-encoded: a `Vec<u32>` of codes plus a
//!   dictionary of distinct string values. Group-by over a categorical
//!   dimension is a direct scatter on the codes.
//! * **Numeric** — a dense `f64` buffer. Used for measures, and for numeric
//!   dimensions that are grouped via equal-width binning (the SYN dataset's
//!   3- and 4-bin configurations). The buffer's backing storage is
//!   abstracted behind [`NumericStorage`] so a column can either own its
//!   values (`Vec<f64>`) or borrow them zero-copy from a memory-mapped
//!   on-disk block (the VSC2 `catalog::map` loader) — every consumer sees
//!   the same `&[f64]` slice either way.

use std::ops::Deref;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::DatasetError;

/// Backing storage for a numeric column: anything that can present its
/// values as a dense `&[f64]` slice for the column's lifetime.
///
/// `Vec<f64>` is the owned implementation; the catalog's mmap loader
/// provides a zero-copy implementation whose slice aliases a mapped file
/// (the mapping is kept alive by the `Arc` inside [`F64Buffer`]).
pub trait NumericStorage: Send + Sync {
    /// The column's values.
    fn as_f64s(&self) -> &[f64];

    /// Heap bytes owned by this storage (0 for borrowed/mapped storage).
    /// Lets the catalog's byte-budget cache charge mapped tables at mapped
    /// size rather than decoded size.
    fn owned_bytes(&self) -> usize;
}

impl NumericStorage for Vec<f64> {
    fn as_f64s(&self) -> &[f64] {
        self
    }

    fn owned_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<f64>()
    }
}

/// A shared, immutable `f64` buffer: cheap to clone, `Deref`s to `[f64]`.
#[derive(Clone)]
pub struct F64Buffer(Arc<dyn NumericStorage>);

impl F64Buffer {
    /// Wraps any [`NumericStorage`] implementation (owned or mapped).
    #[must_use]
    pub fn from_storage(storage: Arc<dyn NumericStorage>) -> Self {
        F64Buffer(storage)
    }

    /// The values as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        self.0.as_f64s()
    }

    /// Heap bytes owned by the backing storage (0 when the values alias a
    /// memory-mapped file).
    #[must_use]
    pub fn owned_bytes(&self) -> usize {
        self.0.owned_bytes()
    }
}

impl From<Vec<f64>> for F64Buffer {
    fn from(values: Vec<f64>) -> Self {
        F64Buffer(Arc::new(values))
    }
}

impl Deref for F64Buffer {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        self.0.as_f64s()
    }
}

impl std::fmt::Debug for F64Buffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

/// Same semantics as `Vec<f64>` equality (`NaN != NaN`).
impl PartialEq for F64Buffer {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Serializes exactly like `Vec<f64>` did; deserializing always produces
/// owned storage.
impl Serialize for F64Buffer {
    fn to_value(&self) -> serde::Value {
        self.as_slice().to_vec().to_value()
    }
}

impl Deserialize for F64Buffer {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Vec::<f64>::from_value(v).map(F64Buffer::from)
    }
}

/// A single column of data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Dictionary-encoded categorical column.
    Categorical {
        /// Per-row dictionary codes; every code is `< dictionary.len()`.
        codes: Vec<u32>,
        /// Distinct values; index = code.
        dictionary: Vec<String>,
    },
    /// Dense numeric column.
    Numeric(F64Buffer),
}

impl Column {
    /// Builds a categorical column from raw string values, constructing the
    /// dictionary in first-appearance order.
    #[must_use]
    pub fn categorical_from_values<S: AsRef<str>>(values: &[S]) -> Self {
        let mut dictionary: Vec<String> = Vec::new();
        let mut codes = Vec::with_capacity(values.len());
        for v in values {
            let v = v.as_ref();
            let code = match dictionary.iter().position(|d| d == v) {
                Some(i) => i as u32,
                None => {
                    dictionary.push(v.to_owned());
                    (dictionary.len() - 1) as u32
                }
            };
            codes.push(code);
        }
        Column::Categorical { codes, dictionary }
    }

    /// Builds a categorical column directly from codes and a dictionary.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::IndexOutOfRange`] if any code exceeds the
    /// dictionary, or [`DatasetError::Invalid`] if the dictionary is empty
    /// while codes exist.
    pub fn categorical_from_codes(
        codes: Vec<u32>,
        dictionary: Vec<String>,
    ) -> Result<Self, DatasetError> {
        if dictionary.is_empty() && !codes.is_empty() {
            return Err(DatasetError::Invalid(
                "non-empty codes with empty dictionary".into(),
            ));
        }
        if let Some(&bad) = codes.iter().find(|c| **c as usize >= dictionary.len()) {
            return Err(DatasetError::IndexOutOfRange {
                index: bad as usize,
                len: dictionary.len(),
            });
        }
        Ok(Column::Categorical { codes, dictionary })
    }

    /// Builds a numeric column with owned storage.
    #[must_use]
    pub fn numeric(values: Vec<f64>) -> Self {
        Column::Numeric(F64Buffer::from(values))
    }

    /// Builds a numeric column over shared (possibly memory-mapped)
    /// storage.
    #[must_use]
    pub fn numeric_shared(storage: Arc<dyn NumericStorage>) -> Self {
        Column::Numeric(F64Buffer::from_storage(storage))
    }

    /// Heap bytes owned by this column's storage. Mapped numeric columns
    /// report 0 — their bytes belong to the file mapping, not the heap.
    #[must_use]
    pub fn owned_bytes(&self) -> usize {
        match self {
            Column::Categorical { codes, dictionary } => {
                codes.len() * 4
                    + dictionary
                        .iter()
                        .map(|s| s.len() + std::mem::size_of::<String>())
                        .sum::<usize>()
            }
            Column::Numeric(values) => values.owned_bytes(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Column::Categorical { codes, .. } => codes.len(),
            Column::Numeric(values) => values.len(),
        }
    }

    /// Whether the column has zero rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this is a categorical column.
    #[must_use]
    pub fn is_categorical(&self) -> bool {
        matches!(self, Column::Categorical { .. })
    }

    /// The dictionary codes, if categorical.
    #[must_use]
    pub fn codes(&self) -> Option<&[u32]> {
        match self {
            Column::Categorical { codes, .. } => Some(codes),
            Column::Numeric(_) => None,
        }
    }

    /// The dictionary, if categorical.
    #[must_use]
    pub fn dictionary(&self) -> Option<&[String]> {
        match self {
            Column::Categorical { dictionary, .. } => Some(dictionary),
            Column::Numeric(_) => None,
        }
    }

    /// The numeric values, if numeric.
    #[must_use]
    pub fn values(&self) -> Option<&[f64]> {
        match self {
            Column::Numeric(values) => Some(values.as_slice()),
            Column::Categorical { .. } => None,
        }
    }

    /// Number of distinct values: dictionary size for categorical columns,
    /// exact distinct count for numeric columns.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        match self {
            Column::Categorical { dictionary, .. } => dictionary.len(),
            Column::Numeric(values) => {
                let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
                sorted.sort_by(f64::total_cmp);
                sorted.dedup();
                sorted.len()
            }
        }
    }

    /// `(min, max)` of a numeric column, ignoring NaNs; `None` for
    /// categorical or all-NaN columns.
    #[must_use]
    pub fn numeric_range(&self) -> Option<(f64, f64)> {
        let values = self.values()?;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in values {
            if v.is_nan() {
                continue;
            }
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo <= hi).then_some((lo, hi))
    }

    /// The string value at `row` of a categorical column.
    ///
    /// # Panics
    ///
    /// Panics if the column is numeric or `row` is out of range.
    #[must_use]
    pub fn category_at(&self, row: usize) -> &str {
        match self {
            Column::Categorical { codes, dictionary } => &dictionary[codes[row] as usize],
            Column::Numeric(_) => panic!("category_at on a numeric column"),
        }
    }

    /// Gathers the rows listed in `rows` into a new column.
    ///
    /// # Panics
    ///
    /// Panics if any row index is out of range.
    #[must_use]
    pub fn gather(&self, rows: &[u32]) -> Column {
        match self {
            Column::Categorical { codes, dictionary } => Column::Categorical {
                codes: rows.iter().map(|&r| codes[r as usize]).collect(),
                dictionary: dictionary.clone(),
            },
            Column::Numeric(values) => {
                Column::numeric(rows.iter().map(|&r| values[r as usize]).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_dictionary_is_first_appearance_order() {
        let c = Column::categorical_from_values(&["b", "a", "b", "c"]);
        assert_eq!(c.dictionary().unwrap(), &["b", "a", "c"]);
        assert_eq!(c.codes().unwrap(), &[0, 1, 0, 2]);
        assert_eq!(c.cardinality(), 3);
        assert_eq!(c.category_at(3), "c");
    }

    #[test]
    fn categorical_from_codes_validates() {
        assert!(Column::categorical_from_codes(vec![0, 2], vec!["a".into(), "b".into()]).is_err());
        assert!(Column::categorical_from_codes(vec![0], vec![]).is_err());
        assert!(Column::categorical_from_codes(vec![], vec![]).is_ok());
        assert!(Column::categorical_from_codes(vec![1, 0], vec!["a".into(), "b".into()]).is_ok());
    }

    #[test]
    fn numeric_accessors() {
        let c = Column::numeric(vec![3.0, 1.0, 2.0, 1.0]);
        assert_eq!(c.len(), 4);
        assert!(!c.is_categorical());
        assert_eq!(c.cardinality(), 3);
        assert_eq!(c.numeric_range(), Some((1.0, 3.0)));
        assert!(c.codes().is_none());
    }

    #[test]
    fn numeric_range_ignores_nan() {
        let c = Column::numeric(vec![f64::NAN, 2.0, 5.0]);
        assert_eq!(c.numeric_range(), Some((2.0, 5.0)));
        let all_nan = Column::numeric(vec![f64::NAN]);
        assert_eq!(all_nan.numeric_range(), None);
    }

    #[test]
    fn gather_preserves_dictionary() {
        let c = Column::categorical_from_values(&["x", "y", "z"]);
        let g = c.gather(&[2, 0]);
        assert_eq!(g.codes().unwrap(), &[2, 0]);
        assert_eq!(g.dictionary().unwrap(), c.dictionary().unwrap());
    }

    #[test]
    fn gather_numeric() {
        let c = Column::numeric(vec![10.0, 20.0, 30.0]);
        let g = c.gather(&[1, 1, 2]);
        assert_eq!(g.values().unwrap(), &[20.0, 20.0, 30.0]);
    }

    #[test]
    fn empty_column_properties() {
        let c = Column::numeric(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.cardinality(), 0);
        assert_eq!(c.numeric_range(), None);
    }
}
