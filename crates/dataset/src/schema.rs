//! Table schemas with role-tagged attributes.
//!
//! The multi-dimensional data model of the paper splits attributes into a set
//! of *dimension attributes* `A = {a₁, a₂, …}` (grouped by) and *measure
//! attributes* `M = {m₁, m₂, …}` (aggregated). A [`Schema`] records, for each
//! column, its name, storage type, and [`AttributeRole`].

use serde::{Deserialize, Serialize};

use crate::DatasetError;

/// The role an attribute plays in the multi-dimensional data model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttributeRole {
    /// A dimension attribute: views group by it.
    Dimension,
    /// A measure attribute: views aggregate it.
    Measure,
}

/// Storage type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// Dictionary-encoded categorical values.
    Categorical,
    /// Dense 64-bit floating-point values.
    Numeric,
}

/// Metadata for a single column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Column name, unique within a schema.
    pub name: String,
    /// Storage type.
    pub column_type: ColumnType,
    /// Role in the multi-dimensional model.
    pub role: AttributeRole,
}

/// An ordered collection of column metadata with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnMeta>,
}

impl Schema {
    /// Builds a schema from column metadata.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Invalid`] if `columns` is empty or contains a
    /// duplicate name, and [`DatasetError::ColumnTypeMismatch`] if a measure
    /// attribute is declared categorical (measures must be aggregatable).
    pub fn new(columns: Vec<ColumnMeta>) -> Result<Self, DatasetError> {
        if columns.is_empty() {
            return Err(DatasetError::Invalid("schema has no columns".into()));
        }
        for (i, c) in columns.iter().enumerate() {
            if columns.iter().take(i).any(|p| p.name == c.name) {
                return Err(DatasetError::Invalid(format!(
                    "duplicate column name: {}",
                    c.name
                )));
            }
            if c.role == AttributeRole::Measure && c.column_type != ColumnType::Numeric {
                return Err(DatasetError::ColumnTypeMismatch {
                    column: c.name.clone(),
                    expected: "numeric (measure attributes must be aggregatable)",
                });
            }
        }
        Ok(Self { columns })
    }

    /// Starts a fluent builder.
    #[must_use]
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder {
            columns: Vec::new(),
        }
    }

    /// All column metadata, in declaration order.
    #[must_use]
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    /// Number of columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns (never true for a constructed
    /// schema).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the column named `name`.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Metadata of the column named `name`.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&ColumnMeta> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Names of all dimension attributes, in declaration order.
    #[must_use]
    pub fn dimension_names(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.role == AttributeRole::Dimension)
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Names of all measure attributes, in declaration order.
    #[must_use]
    pub fn measure_names(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.role == AttributeRole::Measure)
            .map(|c| c.name.as_str())
            .collect()
    }
}

/// Fluent builder for [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    columns: Vec<ColumnMeta>,
}

impl SchemaBuilder {
    /// Adds a categorical dimension attribute.
    #[must_use]
    pub fn categorical_dimension(mut self, name: impl Into<String>) -> Self {
        self.columns.push(ColumnMeta {
            name: name.into(),
            column_type: ColumnType::Categorical,
            role: AttributeRole::Dimension,
        });
        self
    }

    /// Adds a numeric dimension attribute (grouped via equal-width binning).
    #[must_use]
    pub fn numeric_dimension(mut self, name: impl Into<String>) -> Self {
        self.columns.push(ColumnMeta {
            name: name.into(),
            column_type: ColumnType::Numeric,
            role: AttributeRole::Dimension,
        });
        self
    }

    /// Adds a numeric measure attribute.
    #[must_use]
    pub fn measure(mut self, name: impl Into<String>) -> Self {
        self.columns.push(ColumnMeta {
            name: name.into(),
            column_type: ColumnType::Numeric,
            role: AttributeRole::Measure,
        });
        self
    }

    /// Finalizes the schema.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`Schema::new`].
    pub fn build(self) -> Result<Schema, DatasetError> {
        Schema::new(self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_ordered_schema() {
        let s = Schema::builder()
            .categorical_dimension("region")
            .numeric_dimension("age")
            .measure("sales")
            .build()
            .unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.dimension_names(), vec!["region", "age"]);
        assert_eq!(s.measure_names(), vec!["sales"]);
        assert_eq!(s.index_of("age"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::builder()
            .categorical_dimension("x")
            .measure("x")
            .build();
        assert!(matches!(r, Err(DatasetError::Invalid(_))));
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(Schema::new(vec![]).is_err());
    }

    #[test]
    fn categorical_measure_rejected() {
        let r = Schema::new(vec![ColumnMeta {
            name: "m".into(),
            column_type: ColumnType::Categorical,
            role: AttributeRole::Measure,
        }]);
        assert!(matches!(r, Err(DatasetError::ColumnTypeMismatch { .. })));
    }

    #[test]
    fn column_lookup_by_name() {
        let s = Schema::builder().measure("m1").build().unwrap();
        assert_eq!(s.column("m1").unwrap().role, AttributeRole::Measure);
        assert!(s.column("nope").is_none());
    }
}
