//! Property-based tests of the consistent-hash ring — the three
//! guarantees the shard router leans on:
//!
//! * **Uniformity**: every member's share of a random key population
//!   stays within a stated band of fair (160 vnodes put the relative
//!   spread at a few percent; the band is many sigmas wide).
//! * **Minimal disruption**: adding one member pulls keys *only onto*
//!   the new member, removing one pushes keys *only off* the removed
//!   member, and the moved fraction is ~1/N — never a reshuffle.
//! * **Determinism**: the assignment is a pure function of the member
//!   names — identical across independently-built rings, across
//!   threads, and (via pinned golden values) across process restarts.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

use proptest::prelude::*;
use viewseeker_cluster::ring::{remapped, shares, HashRing};

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("local-{i}")).collect()
}

/// Distinct keys in several id shapes: registry-minted (`s{n}`), hex
/// (`session-{n:x}`), and zero-padded (`u{n:020}`).
fn arb_keys() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec((0u64..u64::MAX, 0u32..3), 200..800).prop_map(|raw| {
        let set: HashSet<String> = raw
            .into_iter()
            .map(|(n, shape)| match shape {
                0 => format!("s{n}"),
                1 => format!("session-{n:x}"),
                _ => format!("u{n:020}"),
            })
            .collect();
        set.into_iter().collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // (a) Key→shard assignment is uniform within a stated bound: with
    // `K` random keys over `N` members, each member owns between a
    // third and three times the fair share (the observed spread with
    // 160 vnodes is well inside ±50%).
    #[test]
    fn assignment_is_uniform_within_bound(keys in arb_keys(), members in 2usize..9) {
        let member_names = names(members);
        let ring = HashRing::new(&member_names);
        let owned = shares(&ring, &member_names, &keys);
        let fair = keys.len() as f64 / members as f64;
        for (name, count) in owned {
            let share = count as f64;
            prop_assert!(
                share >= fair / 3.0 && share <= fair * 3.0,
                "member {name} owns {count} of {} keys (fair {fair:.1})",
                keys.len()
            );
        }
    }

    // (b) Adding one member remaps ~1/N of keys, every one of them
    // onto the new member; removing it restores the original
    // assignment exactly (so removal remaps only the removed member's
    // keys, back to their previous owners).
    #[test]
    fn one_member_change_remaps_about_one_nth(keys in arb_keys(), members in 2usize..9) {
        let before_names = names(members);
        let mut after_names = before_names.clone();
        after_names.push("joiner".to_owned());
        let before = HashRing::new(&before_names);
        let after = HashRing::new(&after_names);

        let mut moved = 0usize;
        for key in &keys {
            let old = before.shard_for(key);
            let new = after.shard_for(key);
            if old != new {
                prop_assert_eq!(
                    &after_names[new], "joiner",
                    "key {} moved between surviving members", key
                );
                moved += 1;
            }
        }
        let expected = keys.len() as f64 / (members + 1) as f64;
        prop_assert!(
            (moved as f64) <= expected * 3.0,
            "{moved} of {} keys moved (expected ~{expected:.1})",
            keys.len()
        );

        // Removing the joiner again is exactly the inverse.
        let restored = HashRing::new(&before_names);
        for key in &keys {
            prop_assert_eq!(restored.shard_for(key), before.shard_for(key));
        }
        prop_assert_eq!(
            remapped((&after, &after_names), (&restored, &before_names), &keys),
            moved
        );
    }

    // (c) Routing is deterministic: rings built independently on
    // different threads agree on every key.
    #[test]
    fn assignment_is_identical_across_threads(keys in arb_keys(), members in 1usize..9) {
        let member_names = names(members);
        let keys = Arc::new(keys);
        let baseline: Vec<usize> = {
            let ring = HashRing::new(&member_names);
            keys.iter().map(|k| ring.shard_for(k)).collect()
        };
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let keys = Arc::clone(&keys);
                let member_names = member_names.clone();
                thread::spawn(move || {
                    let ring = HashRing::new(&member_names);
                    keys.iter().map(|k| ring.shard_for(k)).collect::<Vec<usize>>()
                })
            })
            .collect();
        for handle in handles {
            let got = handle.join().expect("ring thread");
            prop_assert_eq!(&got, &baseline);
        }
    }

    // Every key has exactly one owner and owners are always in range.
    #[test]
    fn owners_are_always_in_range(keys in arb_keys(), members in 1usize..9) {
        let ring = HashRing::new(&names(members));
        let mut seen = HashSet::new();
        for key in &keys {
            let owner = ring.shard_for(key);
            prop_assert!(owner < members);
            seen.insert(owner);
        }
        // With hundreds of keys and at most 8 members, every member
        // should see traffic — a dead member would break balance.
        prop_assert_eq!(seen.len(), members.min(keys.len()));
    }
}

/// Process-restart determinism: values pinned from a previous run. A
/// failure here means persisted placements and cross-process agreement
/// silently broke.
#[test]
fn golden_assignments_survive_restarts() {
    let ring = HashRing::new(&names(3));
    let got: Vec<usize> = ["s1", "s2", "s3", "s4", "s5", "abc", "session-9"]
        .iter()
        .map(|k| ring.shard_for(k))
        .collect();
    assert_eq!(got, vec![0, 2, 2, 1, 2, 1, 1]);
}
