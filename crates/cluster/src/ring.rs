//! A deterministic consistent-hash ring over named members.
//!
//! Every member contributes [`VNODES`] virtual points, each at the
//! 64-bit mixed FNV-1a hash of `"{name}#vnode-{v}"`. A key is owned by
//! the member whose point is the first at or clockwise-after the key's
//! own hash (wrapping at the top of the ring). Because the points are a
//! pure function of the member *names*, two processes that agree on the
//! member list agree on every assignment — no coordination, no gossip,
//! nothing to converge — and adding or removing one member perturbs only
//! the keys that land on that member's points (~1/N of the space).
//!
//! Member *identity* is the name, not the index: `shard_for` returns the
//! index into the member list the ring was built from, so callers keep a
//! parallel list of routing targets, but renaming is rebuilding.

use std::collections::HashMap;

/// Virtual points per member. 160 keeps the per-member share of the key
/// space within a few percent of fair (relative spread shrinks like
/// `1/sqrt(VNODES)`) while the ring stays small enough that a rebuild is
/// microseconds.
pub const VNODES: usize = 160;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes`.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// A 64-bit finalizer (the murmur3 `fmix64` constants) on top of FNV-1a:
/// short, similar keys like `"s1"`/`"s2"` differ in few input bits, and
/// the avalanche step spreads them across the whole ring.
#[must_use]
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// The position of `key` on the ring.
#[must_use]
pub fn key_point(key: &str) -> u64 {
    mix(fnv1a(key.as_bytes()))
}

/// A consistent-hash ring built from an ordered list of member names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(point, member index)` sorted by point (ties broken by index so
    /// construction order never matters).
    points: Vec<(u64, usize)>,
    members: usize,
}

impl HashRing {
    /// Builds the ring. An empty member list yields an empty ring for
    /// which [`HashRing::shard_for`] always answers member `0`; callers
    /// are expected to pass at least one member.
    #[must_use]
    pub fn new<S: AsRef<str>>(members: &[S]) -> Self {
        let mut points = Vec::with_capacity(members.len() * VNODES);
        for (index, name) in members.iter().enumerate() {
            let name = name.as_ref();
            for vnode in 0..VNODES {
                let point = mix(fnv1a(format!("{name}#vnode-{vnode}").as_bytes()));
                points.push((point, index));
            }
        }
        points.sort_unstable();
        Self {
            points,
            members: members.len(),
        }
    }

    /// Number of members the ring was built from.
    #[must_use]
    pub fn members(&self) -> usize {
        self.members
    }

    /// Whether the ring has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members == 0
    }

    /// The member index owning `key`: the first point at or clockwise
    /// after the key's hash, wrapping past the top. `0` on an empty ring.
    #[must_use]
    pub fn shard_for(&self, key: &str) -> usize {
        let point = key_point(key);
        let at = self.points.partition_point(|&(p, _)| p < point);
        self.points
            .get(at)
            .or_else(|| self.points.first())
            .map_or(0, |&(_, member)| member)
    }

    /// Per-member key counts for `keys` — a cheap balance probe used by
    /// tests and the `/cluster` status endpoint's self-description.
    #[must_use]
    pub fn distribution<S: AsRef<str>>(&self, keys: &[S]) -> Vec<usize> {
        let mut counts = vec![0usize; self.members];
        for key in keys {
            if let Some(slot) = {
                let shard = self.shard_for(key.as_ref());
                counts.get_mut(shard)
            } {
                *slot += 1;
            }
        }
        counts
    }
}

/// How many of `keys` change owners between `before` and `after`, keyed
/// by member *name* (indices may shift when the lists differ).
#[must_use]
pub fn remapped<S: AsRef<str>>(
    before: (&HashRing, &[String]),
    after: (&HashRing, &[String]),
    keys: &[S],
) -> usize {
    let owner = |ring: &HashRing, names: &[String], key: &str| -> Option<String> {
        names.get(ring.shard_for(key)).cloned()
    };
    keys.iter()
        .filter(|key| {
            owner(before.0, before.1, key.as_ref()) != owner(after.0, after.1, key.as_ref())
        })
        .count()
}

/// A map from member name to the share of `keys` it owns — used by the
/// uniformity proptest.
#[must_use]
pub fn shares<S: AsRef<str>>(
    ring: &HashRing,
    names: &[String],
    keys: &[S],
) -> HashMap<String, usize> {
    let mut out: HashMap<String, usize> = names.iter().map(|n| (n.clone(), 0)).collect();
    for key in keys {
        if let Some(name) = names.get(ring.shard_for(key.as_ref())) {
            if let Some(count) = out.get_mut(name) {
                *count += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("local-{i}")).collect()
    }

    #[test]
    fn empty_ring_answers_zero() {
        let ring = HashRing::new::<&str>(&[]);
        assert!(ring.is_empty());
        assert_eq!(ring.shard_for("s1"), 0);
    }

    #[test]
    fn single_member_owns_everything() {
        let ring = HashRing::new(&names(1));
        for i in 0..100 {
            assert_eq!(ring.shard_for(&format!("s{i}")), 0);
        }
    }

    #[test]
    fn assignment_is_stable_across_rebuilds() {
        let a = HashRing::new(&names(5));
        let b = HashRing::new(&names(5));
        assert_eq!(a, b);
        for i in 0..1000 {
            let key = format!("s{i}");
            assert_eq!(a.shard_for(&key), b.shard_for(&key));
        }
    }

    #[test]
    fn golden_assignments_are_pinned() {
        // Frozen expectations: a change here means persisted placements
        // (and cross-process agreement) silently broke.
        let ring = HashRing::new(&names(4));
        let got: Vec<usize> = ["s1", "s2", "s3", "session-abc", "x"]
            .iter()
            .map(|k| ring.shard_for(k))
            .collect();
        assert_eq!(got, vec![0, 2, 2, 2, 1]);
    }

    #[test]
    fn every_member_owns_a_fair_share() {
        let members = names(4);
        let ring = HashRing::new(&members);
        let keys: Vec<String> = (0..4000).map(|i| format!("s{i}")).collect();
        let counts = ring.distribution(&keys);
        assert_eq!(counts.iter().sum::<usize>(), 4000);
        let fair = 1000;
        for (member, &count) in counts.iter().enumerate() {
            assert!(
                count > fair / 2 && count < fair * 2,
                "member {member} owns {count} of 4000"
            );
        }
    }

    #[test]
    fn adding_a_member_only_pulls_keys_to_it() {
        let before_names = names(4);
        let mut after_names = before_names.clone();
        after_names.push("local-4".to_owned());
        let before = HashRing::new(&before_names);
        let after = HashRing::new(&after_names);
        let keys: Vec<String> = (0..2000).map(|i| format!("s{i}")).collect();
        let mut moved = 0usize;
        for key in &keys {
            let old = before.shard_for(key);
            let new = after.shard_for(key);
            if old != new {
                assert_eq!(new, 4, "key {key} moved to an unrelated member");
                moved += 1;
            }
        }
        // Expect ~1/5 of keys to move; allow a generous band.
        assert!(moved > 2000 / 10 && moved < 2000 / 2, "moved {moved}");
    }
}
