//! A forwarding client for remote ring members speaking the existing
//! HTTP/1.1 protocol.
//!
//! This reuses the loadgen's epoll client machinery: a non-blocking
//! `TcpStream` registered with a [`viewseeker_net::sys::Poller`], the
//! request hand-formatted the same way the loadgen's `issue()` does, and
//! the response lifted incrementally with
//! [`viewseeker_net::http1::parse_response`]. Each exchange runs under a
//! hard deadline so a dead peer costs one bounded wait, not a hung
//! worker.
//!
//! Connections are kept alive between requests in a small fixed pool of
//! slots (round-robin), so concurrent forwards from different reactor
//! workers do not serialize on a single socket. A cached connection the
//! peer quietly closed is detected on the next exchange (write failure
//! or EOF before any response byte) and retried exactly once on a fresh
//! connection — safe because no response bytes were seen.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use viewseeker_net::http1::parse_response;
use viewseeker_net::sys::{Event, Interest, Poller};

/// Connections kept per peer. Bounded parallelism for forwards without
/// one socket per reactor worker.
const POOL_SLOTS: usize = 8;

/// Why a forward failed. All variants map to `503 Service Unavailable`
/// with `Retry-After` at the routing layer — from the client's point of
/// view a down peer looks exactly like admission-control shedding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerError {
    /// Connecting, writing, or reading the peer socket failed.
    Io(String),
    /// The exchange exceeded its deadline.
    Timeout,
    /// The peer sent bytes that do not parse as an HTTP/1.1 response.
    Protocol(String),
}

impl std::fmt::Display for PeerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerError::Io(m) => write!(f, "peer i/o error: {m}"),
            PeerError::Timeout => write!(f, "peer exchange timed out"),
            PeerError::Protocol(m) => write!(f, "peer protocol error: {m}"),
        }
    }
}

impl std::error::Error for PeerError {}

/// A complete response from the peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Parsed `Retry-After` seconds, when the peer sent one.
    pub retry_after: Option<u32>,
}

/// One cached keep-alive connection.
struct Conn {
    stream: TcpStream,
    poller: Poller,
    /// Unconsumed bytes read past the previous response (the protocol is
    /// strictly request/response per slot, so this is normally empty).
    carry: Vec<u8>,
}

impl Conn {
    fn open(addr: &str, deadline: Instant) -> Result<Conn, PeerError> {
        // A blocking connect bounded by the remaining deadline: connect
        // readiness is the one phase where std's own timeout plumbing is
        // simpler than registering a half-open socket with the poller.
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(PeerError::Timeout)?;
        let sockaddr: std::net::SocketAddr = addr
            .parse()
            .map_err(|e| PeerError::Io(format!("bad peer address {addr:?}: {e}")))?;
        let stream = TcpStream::connect_timeout(&sockaddr, remaining)
            .map_err(|e| PeerError::Io(format!("connect {addr}: {e}")))?;
        stream
            .set_nodelay(true)
            .and_then(|()| stream.set_nonblocking(true))
            .map_err(|e| PeerError::Io(format!("socket setup: {e}")))?;
        let poller = Poller::new().map_err(|e| PeerError::Io(format!("poller: {e}")))?;
        poller
            .add(stream.as_raw_fd(), 0, Interest::READ_WRITE)
            .map_err(|e| PeerError::Io(format!("poller add: {e}")))?;
        Ok(Conn {
            stream,
            poller,
            carry: Vec::new(),
        })
    }

    /// Blocks (via the poller) until the socket reports readiness or the
    /// deadline passes.
    fn wait_ready(&mut self, deadline: Instant) -> Result<(), PeerError> {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or(PeerError::Timeout)?;
        let timeout_ms = i32::try_from(remaining.as_millis().max(1)).unwrap_or(i32::MAX);
        let mut events: Vec<Event> = Vec::new();
        let n = self
            .poller
            .wait(timeout_ms, &mut events)
            .map_err(|e| PeerError::Io(format!("poll: {e}")))?;
        if n == 0 {
            return Err(PeerError::Timeout);
        }
        Ok(())
    }

    /// Writes all of `bytes`, waiting on readiness as needed.
    fn write_all_deadline(&mut self, bytes: &[u8], deadline: Instant) -> Result<(), PeerError> {
        let mut written = 0usize;
        while written < bytes.len() {
            let rest = bytes.get(written..).unwrap_or_default();
            match self.stream.write(rest) {
                Ok(0) => return Err(PeerError::Io("peer closed while writing".into())),
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => self.wait_ready(deadline)?,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(PeerError::Io(format!("write: {e}"))),
            }
        }
        Ok(())
    }

    /// Reads until one complete response parses, waiting on readiness as
    /// needed. Returns the response and whether the connection survives.
    fn read_response_deadline(
        &mut self,
        deadline: Instant,
    ) -> Result<(PeerResponse, bool), PeerError> {
        let mut buf = std::mem::take(&mut self.carry);
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match parse_response(&buf) {
                Ok(Some(parsed)) => {
                    self.carry = buf.get(parsed.consumed..).unwrap_or_default().to_vec();
                    return Ok((
                        PeerResponse {
                            status: parsed.status,
                            body: parsed.body,
                            retry_after: parsed.retry_after,
                        },
                        parsed.keep_alive,
                    ));
                }
                Ok(None) => {}
                Err(e) => return Err(PeerError::Protocol(e.message())),
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(PeerError::Io(format!(
                        "peer closed after {} response bytes",
                        buf.len()
                    )))
                }
                Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or_default()),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => self.wait_ready(deadline)?,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(PeerError::Io(format!("read: {e}"))),
            }
        }
    }
}

/// A remote ring member: an address plus a small pool of cached
/// keep-alive connections.
pub struct Peer {
    addr: String,
    slots: Vec<Mutex<Option<Conn>>>,
    next_slot: AtomicU64,
    requests: AtomicU64,
}

impl Peer {
    /// A peer at `addr` (`host:port`). No connection is made until the
    /// first request.
    #[must_use]
    pub fn new(addr: String) -> Self {
        Self {
            addr,
            slots: (0..POOL_SLOTS).map(|_| Mutex::new(None)).collect(),
            next_slot: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        }
    }

    /// The peer's address as configured.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Hand-formats one request the way the loadgen's `issue()` does.
    fn encode(&self, method: &str, target: &str, body: &[u8], request_id: Option<&str>) -> Vec<u8> {
        let seq = self.requests.fetch_add(1, Ordering::Relaxed);
        let mut head = format!(
            "{method} {target} HTTP/1.1\r\nHost: {}\r\nX-Request-Id: {}\r\nContent-Length: {}\r\n\r\n",
            self.addr,
            request_id.map_or_else(|| format!("fwd-{seq:x}"), str::to_owned),
            body.len(),
        )
        .into_bytes();
        head.extend_from_slice(body);
        head
    }

    /// Sends one request and waits for the full response, all within
    /// `timeout`.
    ///
    /// # Errors
    ///
    /// [`PeerError`] when the peer is unreachable, breaks protocol, or
    /// the deadline passes — the caller answers `503` + `Retry-After`.
    pub fn request(
        &self,
        method: &str,
        target: &str,
        body: &[u8],
        request_id: Option<&str>,
        timeout: Duration,
    ) -> Result<PeerResponse, PeerError> {
        let deadline = Instant::now() + timeout;
        let bytes = self.encode(method, target, body, request_id);
        let slot_index = self.next_slot.fetch_add(1, Ordering::Relaxed) as usize % POOL_SLOTS;
        let mut slot = self
            .slots
            .get(slot_index)
            .ok_or_else(|| PeerError::Io("no connection slot".into()))?
            .lock()
            .unwrap_or_else(PoisonError::into_inner);

        let reused = slot.is_some();
        let mut conn = match slot.take() {
            Some(conn) => conn,
            None => Conn::open(&self.addr, deadline)?,
        };
        match Self::exchange(&mut conn, &bytes, deadline) {
            Ok((response, keep_alive)) => {
                if keep_alive {
                    *slot = Some(conn);
                }
                Ok(response)
            }
            Err(PeerError::Io(_)) if reused => {
                // The cached connection went stale (peer closed it
                // between requests). No response bytes were delivered to
                // the caller, so one retry on a fresh socket is safe.
                let mut fresh = Conn::open(&self.addr, deadline)?;
                let (response, keep_alive) = Self::exchange(&mut fresh, &bytes, deadline)?;
                if keep_alive {
                    *slot = Some(fresh);
                }
                Ok(response)
            }
            Err(e) => Err(e),
        }
    }

    fn exchange(
        conn: &mut Conn,
        bytes: &[u8],
        deadline: Instant,
    ) -> Result<(PeerResponse, bool), PeerError> {
        conn.write_all_deadline(bytes, deadline)?;
        conn.read_response_deadline(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A scripted server thread: accepts connections one after another
    /// (the client's pool round-robins sockets), answering every parsed
    /// request on each with `response` until the client hangs up.
    fn serve_script(listener: TcpListener, response: &'static str) {
        std::thread::spawn(move || loop {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            // One thread per connection: the client pool keeps earlier
            // sockets open while opening new ones.
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                'conn: loop {
                    while viewseeker_net::http1::parse_request(&buf)
                        .expect("request parses")
                        .is_none()
                    {
                        let Ok(n) = stream.read(&mut chunk) else {
                            break 'conn;
                        };
                        if n == 0 {
                            break 'conn;
                        }
                        buf.extend_from_slice(&chunk[..n]);
                    }
                    let consumed = viewseeker_net::http1::parse_request(&buf)
                        .expect("request parses")
                        .expect("complete")
                        .consumed;
                    buf.drain(..consumed);
                    stream.write_all(response.as_bytes()).expect("write");
                }
            });
        });
    }

    #[test]
    fn round_trips_a_request() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        serve_script(
            listener,
            "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok",
        );
        let peer = Peer::new(addr);
        for _ in 0..2 {
            let got = peer
                .request(
                    "GET",
                    "/healthz",
                    b"",
                    Some("rid-1"),
                    Duration::from_secs(5),
                )
                .expect("forward");
            assert_eq!(got.status, 200);
            assert_eq!(got.body, b"ok");
        }
    }

    #[test]
    fn propagates_retry_after() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        serve_script(
            listener,
            "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nRetry-After: 3\r\nConnection: close\r\n\r\n",
        );
        let peer = Peer::new(addr);
        let got = peer
            .request("POST", "/sessions", b"{}", None, Duration::from_secs(5))
            .expect("forward");
        assert_eq!((got.status, got.retry_after), (503, Some(3)));
    }

    #[test]
    fn unreachable_peer_is_an_io_error() {
        // A bound-then-dropped listener leaves a port nothing accepts on.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        drop(listener);
        let peer = Peer::new(addr);
        let err = peer
            .request("GET", "/healthz", b"", None, Duration::from_millis(500))
            .expect_err("must fail");
        assert!(
            matches!(err, PeerError::Io(_) | PeerError::Timeout),
            "{err:?}"
        );
    }

    #[test]
    fn requests_carry_the_loadgen_wire_shape() {
        let peer = Peer::new("127.0.0.1:1".into());
        let bytes = peer.encode("POST", "/sessions?x=1", b"{\"a\":2}", None);
        let text = String::from_utf8(bytes).expect("utf8");
        assert!(
            text.starts_with("POST /sessions?x=1 HTTP/1.1\r\n"),
            "{text}"
        );
        assert!(text.contains("\r\nHost: 127.0.0.1:1\r\n"), "{text}");
        assert!(text.contains("\r\nX-Request-Id: fwd-0\r\n"), "{text}");
        assert!(
            text.contains("\r\nContent-Length: 7\r\n\r\n{\"a\":2}"),
            "{text}"
        );
    }
}
