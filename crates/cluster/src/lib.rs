//! `viewseeker-cluster`: the sharded session tier.
//!
//! Sessions are bit-identically snapshot/restorable and datasets are
//! content-checksummed, which makes a session a *movable* unit of state.
//! This crate supplies the three protocol-free building blocks the server
//! composes into a shard router in front of its `SessionRegistry`:
//!
//! * [`ring`] — a deterministic consistent-hash ring over named members.
//!   Session ids hash onto ring points; adding or removing one member
//!   remaps only ~1/N of the key space, and the mapping is a pure
//!   function of the member names (identical across threads, processes,
//!   and restarts — there is no gossip and nothing to converge).
//! * [`peer`] — a forwarding client for remote members speaking the
//!   existing HTTP/1.1 protocol: non-blocking sockets driven by the same
//!   [`viewseeker_net::sys::Poller`] readiness machinery the loadgen
//!   client uses, with keep-alive reuse, a bounded per-request deadline,
//!   and a one-shot retry on stale cached connections.
//! * [`stats`] — the `viewseeker_cluster_*` counter/gauge/histogram state
//!   (routed/forwarded/migrated counts, per-shard session gauges,
//!   forward-latency histogram) that the server's Prometheus exporter
//!   scrapes.
//!
//! Like `viewseeker-net`, this crate is deliberately policy-free: it
//! knows nothing about sessions, JSON, or the route table. The server's
//! `ShardRouter` decides *what* to route and migrate; this crate answers
//! *where* (ring), *how* (peer), and *how it went* (stats).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod peer;
pub mod ring;
pub mod stats;

pub use peer::{Peer, PeerError, PeerResponse};
pub use ring::HashRing;
pub use stats::ClusterStats;
