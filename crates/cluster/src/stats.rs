//! Shared counters behind the `viewseeker_cluster_*` Prometheus series.
//!
//! The server's shard router increments these; the Prometheus exporter
//! scrapes them. Per-member counters live behind an `RwLock<Vec<..>>` so
//! a rebalance can change the member set at runtime without losing the
//! counts of surviving members (matched by name). Everything else is
//! lock-free atomics except the forward-latency histogram, which sits
//! behind a mutex touched once per forwarded request (and recovers from
//! poisoning — metrics must never take a request path down, matching the
//! net/server policy).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use viewseeker_net::hist::Histogram;

/// Counters for one ring member (a local shard or a remote peer).
#[derive(Debug, Default)]
pub struct MemberStats {
    /// Member name as it appears on the ring (`local-0`, `peer-<addr>`).
    name: String,
    /// Whether the member is a local shard of this process.
    local: bool,
    /// Requests routed to this member
    /// (`viewseeker_cluster_routed_total`).
    routed: AtomicU64,
    /// Sessions resident on this member, set at scrape time for local
    /// shards (`viewseeker_cluster_shard_sessions`).
    sessions: AtomicU64,
}

/// A point-in-time copy of one member's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberSnapshot {
    /// Ring member name.
    pub name: String,
    /// Whether the member is a local shard.
    pub local: bool,
    /// Requests routed to the member since startup.
    pub routed: u64,
    /// Sessions resident (meaningful for local members only).
    pub sessions: u64,
}

/// Counters, gauges, and the forward-latency histogram for one shard
/// router instance.
#[derive(Debug, Default)]
pub struct ClusterStats {
    members: RwLock<Vec<Arc<MemberStats>>>,
    /// Requests forwarded to remote peers, total
    /// (`viewseeker_cluster_forwarded_total`).
    pub forwarded: AtomicU64,
    /// Forwards that failed (peer down, timeout) and were answered with
    /// `503` (`viewseeker_cluster_forward_errors_total`).
    pub forward_errors: AtomicU64,
    /// Sessions migrated off this process successfully
    /// (`viewseeker_cluster_migrated_sessions_total{outcome="ok"}`).
    pub migrated_ok: AtomicU64,
    /// Migration attempts that failed and left the session in place
    /// (`viewseeker_cluster_migrated_sessions_total{outcome="error"}`).
    pub migrated_err: AtomicU64,
    /// Forward round-trip latencies
    /// (`viewseeker_cluster_forward_seconds`).
    forward: Mutex<Histogram>,
}

impl ClusterStats {
    /// Fresh stats with no members; call [`ClusterStats::set_members`]
    /// before routing.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the member set, preserving the counters of members whose
    /// name survives (a rebalance must not zero routing history).
    pub fn set_members(&self, members: &[(String, bool)]) {
        let mut guard = self.members.write().unwrap_or_else(PoisonError::into_inner);
        let old: Vec<Arc<MemberStats>> = guard.clone();
        *guard = members
            .iter()
            .map(|(name, local)| {
                old.iter()
                    .find(|m| &m.name == name)
                    .cloned()
                    .unwrap_or_else(|| {
                        Arc::new(MemberStats {
                            name: name.clone(),
                            local: *local,
                            ..MemberStats::default()
                        })
                    })
            })
            .collect();
    }

    /// Number of members currently on the ring.
    #[must_use]
    pub fn member_count(&self) -> usize {
        self.members
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Counts one request routed to member `index`.
    pub fn bump_routed(&self, index: usize) {
        let guard = self.members.read().unwrap_or_else(PoisonError::into_inner);
        if let Some(member) = guard.get(index) {
            member.routed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Sets the resident-session gauge of member `index` (scrape time).
    pub fn set_sessions(&self, index: usize, sessions: u64) {
        let guard = self.members.read().unwrap_or_else(PoisonError::into_inner);
        if let Some(member) = guard.get(index) {
            member.sessions.store(sessions, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every member's counters, in ring order.
    #[must_use]
    pub fn members_snapshot(&self) -> Vec<MemberSnapshot> {
        self.members
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|m| MemberSnapshot {
                name: m.name.clone(),
                local: m.local,
                routed: m.routed.load(Ordering::Relaxed),
                sessions: m.sessions.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Records one forward round trip of `us` microseconds.
    pub fn record_forward(&self, us: u64) {
        self.forward
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(us);
    }

    /// A snapshot of the forward-latency histogram.
    #[must_use]
    pub fn forward_histogram(&self) -> Histogram {
        self.forward
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Convenience relaxed read of a counter field.
    #[must_use]
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_accumulate_and_snapshot() {
        let stats = ClusterStats::new();
        stats.set_members(&[("local-0".into(), true), ("peer-x".into(), false)]);
        stats.bump_routed(0);
        stats.bump_routed(0);
        stats.bump_routed(1);
        stats.set_sessions(0, 7);
        let snap = stats.members_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(
            (snap[0].routed, snap[0].sessions, snap[0].local),
            (2, 7, true)
        );
        assert_eq!((snap[1].routed, snap[1].local), (1, false));
    }

    #[test]
    fn rebalance_preserves_surviving_members() {
        let stats = ClusterStats::new();
        stats.set_members(&[("local-0".into(), true), ("local-1".into(), true)]);
        stats.bump_routed(1);
        stats.set_members(&[
            ("local-0".into(), true),
            ("local-1".into(), true),
            ("local-2".into(), true),
        ]);
        let snap = stats.members_snapshot();
        assert_eq!(snap[1].routed, 1, "survivor keeps its count");
        assert_eq!(snap[2].routed, 0, "newcomer starts fresh");
    }

    #[test]
    fn out_of_range_member_indices_are_ignored() {
        let stats = ClusterStats::new();
        stats.bump_routed(3);
        stats.set_sessions(3, 9);
        assert!(stats.members_snapshot().is_empty());
    }

    #[test]
    fn forward_latencies_accumulate() {
        let stats = ClusterStats::new();
        stats.record_forward(250);
        stats.record_forward(750);
        let h = stats.forward_histogram();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_us(), 1000);
    }
}
