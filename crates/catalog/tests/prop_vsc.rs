//! Property tests for the VSC1 on-disk format: `Table → save → load` must
//! round-trip bit-identically (columns, dictionaries, schema, roles) for
//! arbitrary tables, and corruption — a flipped bit, a truncated block, a
//! tampered manifest — must be rejected at load.
//!
//! The vendored proptest shim offers ranges/tuples/`collection::vec` but no
//! heterogeneous strategy composition, so a table is generated from a small
//! spec (row count, per-column kind codes, one 64-bit seed) and the cell
//! data is derived from the seed with a splitmix64 stream in plain code.
//! That keeps full adversarial coverage (NaN payloads, ±inf, -0.0,
//! subnormals, awkward dictionary strings) across every generated case.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use viewseeker_catalog::vsc;
use viewseeker_catalog::CatalogError;
use viewseeker_dataset::schema::{AttributeRole, ColumnMeta, ColumnType};
use viewseeker_dataset::{Column, Schema, Table};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("vsc-prop-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic stream used to expand one generated seed into cell data.
struct Splitmix(u64);

impl Splitmix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Adversarial f64s: mostly ordinary magnitudes, with NaN, ±inf, -0.0,
    /// a subnormal, and a huge value mixed in.
    fn f64(&mut self) -> f64 {
        match self.next() % 8 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -0.0,
            4 => f64::MIN_POSITIVE / 2.0,
            5 => 1e300,
            _ => (self.next() as i64 as f64) / 1e4,
        }
    }
}

/// Column kind codes drawn by the strategy: 0 = categorical dimension,
/// 1 = numeric dimension, 2 = measure.
fn build_table(rows: usize, kinds: &[u32], seed: u64) -> Table {
    let mut stream = Splitmix(seed);
    let mut metas = Vec::with_capacity(kinds.len());
    let mut columns = Vec::with_capacity(kinds.len());
    for (i, kind) in kinds.iter().enumerate() {
        let name = format!("c{i}");
        match kind {
            0 => {
                let dict_len = 1 + (stream.next() as usize) % 7;
                let dictionary: Vec<String> = (0..dict_len)
                    .map(|d| {
                        // Awkward entries: multi-byte UTF-8, quotes, commas,
                        // newlines, varying width.
                        let pad = (stream.next() as usize) % 4;
                        format!("v{d}{}", "é,\"\n".repeat(pad))
                    })
                    .collect();
                let codes: Vec<u32> = (0..rows)
                    .map(|_| (stream.next() % dict_len as u64) as u32)
                    .collect();
                metas.push(ColumnMeta {
                    name,
                    column_type: ColumnType::Categorical,
                    role: AttributeRole::Dimension,
                });
                columns.push(
                    Column::categorical_from_codes(codes, dictionary)
                        .expect("codes in range by construction"),
                );
            }
            kind => {
                let role = if *kind == 1 {
                    AttributeRole::Dimension
                } else {
                    AttributeRole::Measure
                };
                metas.push(ColumnMeta {
                    name,
                    column_type: ColumnType::Numeric,
                    role,
                });
                columns.push(Column::numeric((0..rows).map(|_| stream.f64()).collect()));
            }
        }
    }
    Table::new(Schema::new(metas).expect("unique names"), columns).expect("columns match schema")
}

fn arb_table() -> impl Strategy<Value = Table> {
    (
        1usize..40,
        proptest::collection::vec(0u32..3, 1..5),
        0u64..u64::MAX,
    )
        .prop_map(|(rows, kinds, seed)| build_table(rows, &kinds, seed))
}

/// Numeric columns compared by bit pattern so NaN and -0.0 count.
fn columns_bit_identical(a: &Column, b: &Column) -> bool {
    match (a, b) {
        (Column::Numeric(x), Column::Numeric(y)) => {
            x.len() == y.len()
                && x.as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        }
        (
            Column::Categorical {
                codes: xc,
                dictionary: xd,
            },
            Column::Categorical {
                codes: yc,
                dictionary: yd,
            },
        ) => xc == yc && xd == yd,
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn save_load_round_trips_bit_identically(table in arb_table()) {
        let dir = fresh_dir("rt");
        let manifest = vsc::save(&dir, &table).unwrap();
        prop_assert_eq!(manifest.rows, table.row_count() as u64);
        prop_assert_eq!(manifest.columns.len(), table.schema().len());

        let back = vsc::load(&dir).unwrap();
        prop_assert_eq!(back.schema(), table.schema());
        for i in 0..table.schema().len() {
            prop_assert!(
                columns_bit_identical(back.column(i), table.column(i)),
                "column {} changed across the round trip", i
            );
        }
        prop_assert_eq!(vsc::table_checksum(&back), vsc::table_checksum(&table));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn any_single_bit_flip_in_a_block_is_rejected(
        table in arb_table(),
        pick in 0u64..u64::MAX,
    ) {
        let dir = fresh_dir("flip");
        let manifest = vsc::save(&dir, &table).unwrap();
        // Pick a block, a byte offset, and a bit from the drawn value.
        let block = &manifest.columns[(pick as usize) % manifest.columns.len()].block;
        let path = dir.join(block);
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = ((pick >> 8) as usize) % bytes.len();
        bytes[offset] ^= 1 << ((pick >> 40) % 8);
        std::fs::write(&path, bytes).unwrap();
        prop_assert!(
            matches!(vsc::load(&dir), Err(CatalogError::Corrupt(_))),
            "flipped a bit at byte {} of {} and load still succeeded", offset, block
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn any_truncation_of_a_block_is_rejected(
        table in arb_table(),
        pick in 0u64..u64::MAX,
    ) {
        let dir = fresh_dir("trunc");
        let manifest = vsc::save(&dir, &table).unwrap();
        let block = &manifest.columns[(pick as usize) % manifest.columns.len()].block;
        let path = dir.join(block);
        let bytes = std::fs::read(&path).unwrap();
        let keep = ((pick >> 8) as usize) % bytes.len();
        std::fs::write(&path, &bytes[..keep]).unwrap();
        prop_assert!(
            matches!(vsc::load(&dir), Err(CatalogError::Corrupt(_))),
            "truncated {} to {} bytes and load still succeeded", block, keep
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_row_count_tampering_is_rejected(table in arb_table()) {
        let dir = fresh_dir("manifest");
        vsc::save(&dir, &table).unwrap();
        let path = dir.join(vsc::MANIFEST);
        let json = std::fs::read_to_string(&path).unwrap();
        // Claim one more row: load must fail even though every block still
        // matches its (unchanged) checksum.
        let mut manifest: vsc::Manifest = serde_json::from_str(&json).unwrap();
        manifest.rows += 1;
        std::fs::write(&path, serde_json::to_string(&manifest).unwrap()).unwrap();
        prop_assert!(matches!(vsc::load(&dir), Err(CatalogError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
