//! Property tests pinning the VSC2 on-disk format against two oracles:
//!
//! 1. **Itself** — `Table → save → load` must round-trip bit-identically
//!    (columns, dictionaries, schema, zone maps) for arbitrary tables at
//!    arbitrary row-group sizes, whatever mix of encodings the encoder
//!    picks per chunk.
//! 2. **VSC1** — the uncompressed format stays readable precisely so it
//!    can act as a differential oracle: the same table saved both ways
//!    must decode to bit-identical columns and the same table checksum.
//!
//! A corruption battery rides along: any single bit flip inside a chunk
//! payload, any truncation of a column file, and a manifest that lies
//! about the row count must all surface as typed [`CatalogError`]s —
//! never a panic, never a silently wrong table. An interrupted append
//! (column bytes written, manifest swap lost) must leave the *old*
//! dataset fully loadable, because append only ever adds bytes and the
//! manifest rename is the commit point.
//!
//! Table generation mirrors `prop_vsc.rs`: the vendored proptest shim has
//! no heterogeneous strategy composition, so tables grow from a small
//! spec (rows, per-column kind codes, one seed) expanded by a splitmix64
//! stream — full adversarial coverage (NaN payloads, ±inf, -0.0,
//! subnormals, awkward dictionary strings) on every case. The shim's
//! `proptest!` macro is also token-recursive, so each property body lives
//! in a plain `check_*` function and the macro input stays minimal.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use viewseeker_catalog::{vsc, vsc2, CatalogError};
use viewseeker_dataset::schema::{AttributeRole, ColumnMeta, ColumnType};
use viewseeker_dataset::{Column, Schema, Table, ZoneMaps};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("vsc2-prop-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic stream used to expand one generated seed into cell data.
struct Splitmix(u64);

impl Splitmix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Adversarial f64s: mostly ordinary magnitudes, with NaN, ±inf, -0.0,
    /// a subnormal, a huge value, and repeated values (so RLE and dict
    /// chunks appear alongside raw ones) mixed in.
    fn f64(&mut self) -> f64 {
        match self.next() % 10 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => -0.0,
            4 => f64::MIN_POSITIVE / 2.0,
            5 => 1e300,
            6 | 7 => (self.next() % 3) as f64, // low cardinality
            _ => (self.next() as i64 as f64) / 1e4,
        }
    }
}

/// Column kind codes drawn by the strategy: 0 = categorical dimension,
/// 1 = numeric dimension, 2 = measure.
fn build_table(rows: usize, kinds: &[u32], seed: u64) -> Table {
    let mut stream = Splitmix(seed);
    let mut metas = Vec::with_capacity(kinds.len());
    let mut columns = Vec::with_capacity(kinds.len());
    for (i, kind) in kinds.iter().enumerate() {
        let name = format!("c{i}");
        match kind {
            0 => {
                let dict_len = 1 + (stream.next() as usize) % 7;
                let dictionary: Vec<String> = (0..dict_len)
                    .map(|d| {
                        let pad = (stream.next() as usize) % 4;
                        format!("v{d}{}", "é,\"\n".repeat(pad))
                    })
                    .collect();
                let codes: Vec<u32> = (0..rows)
                    .map(|_| (stream.next() % dict_len as u64) as u32)
                    .collect();
                metas.push(ColumnMeta {
                    name,
                    column_type: ColumnType::Categorical,
                    role: AttributeRole::Dimension,
                });
                columns.push(
                    Column::categorical_from_codes(codes, dictionary)
                        .expect("codes in range by construction"),
                );
            }
            kind => {
                let role = if *kind == 1 {
                    AttributeRole::Dimension
                } else {
                    AttributeRole::Measure
                };
                metas.push(ColumnMeta {
                    name,
                    column_type: ColumnType::Numeric,
                    role,
                });
                columns.push(Column::numeric((0..rows).map(|_| stream.f64()).collect()));
            }
        }
    }
    Table::new(Schema::new(metas).expect("unique names"), columns).expect("columns match schema")
}

/// `(table, group_rows)` with group sizes straddling the row count, so
/// single-group, multi-group, and partial-tail-group layouts all appear.
fn arb_table_and_groups() -> impl Strategy<Value = (Table, usize)> {
    (
        1usize..60,
        proptest::collection::vec(0u32..3, 1..5),
        0u64..u64::MAX,
        1usize..24,
    )
        .prop_map(|(rows, kinds, seed, group_rows)| (build_table(rows, &kinds, seed), group_rows))
}

/// Numeric columns compared by bit pattern so NaN and -0.0 count.
fn columns_bit_identical(a: &Column, b: &Column) -> bool {
    match (a, b) {
        (Column::Numeric(x), Column::Numeric(y)) => {
            x.len() == y.len()
                && x.as_slice()
                    .iter()
                    .zip(y.as_slice())
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        }
        (
            Column::Categorical {
                codes: xc,
                dictionary: xd,
            },
            Column::Categorical {
                codes: yc,
                dictionary: yd,
            },
        ) => xc == yc && xd == yd,
        _ => false,
    }
}

fn tables_bit_identical(a: &Table, b: &Table) -> bool {
    a.schema() == b.schema()
        && (0..a.schema().len()).all(|i| columns_bit_identical(a.column(i), b.column(i)))
}

/// Round trip plus the VSC1 differential: both formats must decode the
/// same table to bit-identical columns, and the (format-independent)
/// table checksum must agree. The loaded zone maps must equal a fresh
/// in-memory build — a wrong zone would make pruning skip live rows.
fn check_round_trip_against_vsc1(table: &Table, group_rows: usize) {
    let dir2 = fresh_dir("rt2");
    let dir1 = fresh_dir("rt1");
    let manifest = vsc2::save(&dir2, table, group_rows).unwrap();
    assert_eq!(manifest.rows, table.row_count() as u64);
    assert_eq!(
        manifest.group_count(),
        table.row_count().div_ceil(group_rows)
    );
    vsc::save(&dir1, table).unwrap();

    let loaded = vsc2::load(&dir2).unwrap();
    let via_vsc1 = vsc::load(&dir1).unwrap();
    assert!(
        tables_bit_identical(&loaded.table, table),
        "VSC2 round trip changed the table"
    );
    assert!(
        tables_bit_identical(&loaded.table, &via_vsc1),
        "VSC2 and VSC1 decoded different tables"
    );
    assert_eq!(
        vsc::table_checksum(&loaded.table),
        vsc::table_checksum(&via_vsc1)
    );
    assert_eq!(loaded.zones, ZoneMaps::build(table, group_rows));
    let _ = std::fs::remove_dir_all(&dir2);
    let _ = std::fs::remove_dir_all(&dir1);
}

/// Any single bit flip inside any chunk payload is rejected with a typed
/// error at load — the per-chunk digest gate runs before any decoding, so
/// a flipped bit can never panic a decoder or produce a silently wrong
/// column.
fn check_bit_flip_rejected(table: &Table, group_rows: usize, pick: u64) {
    let dir = fresh_dir("flip");
    let manifest = vsc2::save(&dir, table, group_rows).unwrap();
    let col = &manifest.columns[(pick as usize) % manifest.columns.len()];
    let chunk = &col.chunks[((pick >> 16) as usize) % col.chunks.len()];
    let path = dir.join(&col.file);
    let mut bytes = std::fs::read(&path).unwrap();
    let offset = chunk.offset as usize + ((pick >> 8) as usize) % (chunk.bytes as usize);
    bytes[offset] ^= 1 << ((pick >> 40) % 8);
    std::fs::write(&path, bytes).unwrap();
    assert!(
        matches!(vsc2::load(&dir), Err(CatalogError::Corrupt(_))),
        "flipped a bit at byte {offset} of {} and load still succeeded",
        col.file
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Any truncation of a column file below its live payload is rejected with
/// a typed error (bad magic, chunk out of bounds, or digest mismatch —
/// depending on where the cut lands), never a panic.
fn check_truncation_rejected(table: &Table, group_rows: usize, pick: u64) {
    let dir = fresh_dir("trunc");
    let manifest = vsc2::save(&dir, table, group_rows).unwrap();
    let col = &manifest.columns[(pick as usize) % manifest.columns.len()];
    let required: u64 = col.chunks.iter().map(|c| c.offset + c.bytes).max().unwrap();
    let path = dir.join(&col.file);
    let bytes = std::fs::read(&path).unwrap();
    let keep = ((pick >> 8) % required) as usize;
    std::fs::write(&path, &bytes[..keep]).unwrap();
    assert!(
        matches!(
            vsc2::load(&dir),
            Err(CatalogError::Corrupt(_) | CatalogError::Io(_))
        ),
        "truncated {} to {keep} bytes (of {required} live) and load still succeeded",
        col.file
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A manifest that claims one extra row fails the cross-checks even though
/// every chunk still matches its (unchanged) digest.
fn check_row_tampering_rejected(table: &Table, group_rows: usize) {
    let dir = fresh_dir("rows");
    vsc2::save(&dir, table, group_rows).unwrap();
    let path = dir.join(vsc::MANIFEST);
    let json = std::fs::read_to_string(&path).unwrap();
    let mut manifest: vsc2::Manifest2 = serde_json::from_str(&json).unwrap();
    manifest.rows += 1;
    std::fs::write(&path, serde_json::to_string(&manifest).unwrap()).unwrap();
    assert!(matches!(vsc2::load(&dir), Err(CatalogError::Corrupt(_))));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash atomicity of the append path. Append re-encodes the partial tail
/// group and the new groups at the *end* of each column file and swaps the
/// manifest last, so:
///
/// * a crash before the manifest swap (old manifest, grown column files)
///   must load the **old** table bit-identically, and
/// * the committed state must load the **merged** table bit-identically.
fn check_interrupted_append(table: &Table, group_rows: usize, tail_rows: usize, tail_seed: u64) {
    let dir = fresh_dir("append");
    let manifest = vsc2::save(&dir, table, group_rows).unwrap();
    let manifest_path = dir.join(vsc::MANIFEST);
    let old_manifest_bytes = std::fs::read(&manifest_path).unwrap();

    // Same kind codes → same schema; fresh seed → fresh cell data and
    // (for categorical columns) dictionaries that overlap but extend.
    let kinds: Vec<u32> = table
        .schema()
        .columns()
        .iter()
        .map(|m| match (m.column_type, m.role) {
            (ColumnType::Categorical, _) => 0,
            (ColumnType::Numeric, AttributeRole::Dimension) => 1,
            _ => 2,
        })
        .collect();
    let chunk = build_table(tail_rows, &kinds, tail_seed);
    let appended = vsc2::append(&dir, &manifest, table, &chunk).unwrap();
    assert_eq!(
        appended.manifest.rows as usize,
        table.row_count() + tail_rows
    );
    let new_manifest_bytes = std::fs::read(&manifest_path).unwrap();

    // Simulated crash: column bytes are on disk, manifest swap lost.
    std::fs::write(&manifest_path, &old_manifest_bytes).unwrap();
    let recovered = vsc2::load(&dir).unwrap();
    assert!(
        tables_bit_identical(&recovered.table, table),
        "pre-append manifest no longer describes the old table"
    );

    // The committed state loads the merged table.
    std::fs::write(&manifest_path, &new_manifest_bytes).unwrap();
    let committed = vsc2::load(&dir).unwrap();
    assert!(
        tables_bit_identical(&committed.table, &appended.table),
        "committed manifest does not describe the merged table"
    );
    assert_eq!(committed.zones, appended.zones);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vsc2_round_trips_and_decodes_identically_to_vsc1(
        (table, group_rows) in arb_table_and_groups(),
    ) {
        check_round_trip_against_vsc1(&table, group_rows);
    }

    #[test]
    fn any_single_bit_flip_in_a_chunk_payload_is_rejected(
        (table, group_rows) in arb_table_and_groups(),
        pick in 0u64..u64::MAX,
    ) {
        check_bit_flip_rejected(&table, group_rows, pick);
    }

    #[test]
    fn any_truncation_of_a_column_file_is_rejected(
        (table, group_rows) in arb_table_and_groups(),
        pick in 0u64..u64::MAX,
    ) {
        check_truncation_rejected(&table, group_rows, pick);
    }

    #[test]
    fn manifest_row_count_tampering_is_rejected(
        (table, group_rows) in arb_table_and_groups(),
    ) {
        check_row_tampering_rejected(&table, group_rows);
    }

    #[test]
    fn interrupted_append_preserves_the_old_dataset(
        (table, group_rows) in arb_table_and_groups(),
        tail_rows in 1usize..40,
        tail_seed in 0u64..u64::MAX,
    ) {
        check_interrupted_append(&table, group_rows, tail_rows, tail_seed);
    }
}

/// One deterministic table whose chunks exercise every encoding the format
/// defines — raw and dictionary-coded floats, run-length floats, bit-packed
/// and run-length categorical codes — each pinned by name so an encoder
/// regression (an encoding that stops being chosen) fails loudly, and the
/// whole table still round-trips bit-identically.
#[test]
fn every_encoding_appears_and_round_trips() {
    // Enough rows that one long run beats bit-packing: a constant 1-bit
    // column packs to ~rows/8 bytes, while its RLE form stays at 12.
    let rows = 200;
    let mut stream = Splitmix(0xfeed);
    let metas = vec![
        ColumnMeta {
            name: "cat_alternating".into(),
            column_type: ColumnType::Categorical,
            role: AttributeRole::Dimension,
        },
        ColumnMeta {
            name: "cat_constant".into(),
            column_type: ColumnType::Categorical,
            role: AttributeRole::Dimension,
        },
        ColumnMeta {
            name: "n_unique".into(),
            column_type: ColumnType::Numeric,
            role: AttributeRole::Dimension,
        },
        ColumnMeta {
            name: "m_low_card".into(),
            column_type: ColumnType::Numeric,
            role: AttributeRole::Measure,
        },
        ColumnMeta {
            name: "m_constant".into(),
            column_type: ColumnType::Numeric,
            role: AttributeRole::Measure,
        },
    ];
    let dict = vec!["a".to_owned(), "b".to_owned(), "c".to_owned()];
    let columns = vec![
        // Alternating codes defeat RLE → bit-packed "codes".
        Column::categorical_from_codes((0..rows).map(|i| (i % 3) as u32).collect(), dict.clone())
            .unwrap(),
        // One long run → "rlecodes".
        Column::categorical_from_codes(vec![1; rows], dict).unwrap(),
        // All-distinct adversarial floats → "raw" (a dictionary cannot pay).
        Column::numeric(
            (0..rows)
                .map(|_| f64::from_bits(stream.next() | 1))
                .collect(),
        ),
        // Three distinct values, alternating → "dict".
        Column::numeric((0..rows).map(|i| [1.5, -2.5, 4.0][i % 3]).collect()),
        // One value throughout → "rle".
        Column::numeric(vec![7.25; rows]),
    ];
    let table = Table::new(Schema::new(metas).unwrap(), columns).unwrap();

    let dir = fresh_dir("enc");
    let manifest = vsc2::save(&dir, &table, rows).unwrap();
    let by_name: Vec<(&str, &str)> = manifest
        .columns
        .iter()
        .map(|c| (c.name.as_str(), c.chunks[0].encoding.as_str()))
        .collect();
    assert_eq!(
        by_name,
        [
            ("cat_alternating", "codes"),
            ("cat_constant", "rlecodes"),
            ("n_unique", "raw"),
            ("m_low_card", "dict"),
            ("m_constant", "rle"),
        ],
        "encoder stopped choosing an expected encoding"
    );

    let loaded = vsc2::load(&dir).unwrap();
    assert!(
        tables_bit_identical(&loaded.table, &table),
        "round trip through the full encoding mix changed the table"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
