//! The VSC1 on-disk columnar format.
//!
//! One dataset is one directory:
//!
//! ```text
//! <name>/
//!   manifest.json     version tag, schema, row count, per-block digests
//!   col_000.blk       one binary block per column
//!   col_001.blk
//!   ...
//! ```
//!
//! Each block is a self-describing little-endian encoding of one column:
//!
//! ```text
//! "VSB1"  (4 bytes)   block magic
//! kind    (1 byte)    0 = numeric, 1 = categorical
//! rows    (u64)       row count, must match the manifest
//! numeric payload:    rows × f64 (stored as raw bit patterns, so NaN and
//!                     signed zero round-trip bit-identically)
//! categorical payload: dict_len (u32), then per dictionary entry
//!                     byte_len (u32) + UTF-8 bytes, then rows × u32 codes
//! ```
//!
//! The manifest records each block's byte length and FNV-1a 64 digest;
//! [`load`] verifies both (plus the magic, kind, row count, and exact
//! payload length) before any bytes reach a [`Table`], so truncated or
//! bit-flipped files are rejected instead of decoded. The manifest is
//! written last — a crash mid-save leaves a directory without a manifest,
//! which the catalog treats as absent.

use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use viewseeker_dataset::schema::{AttributeRole, ColumnMeta, ColumnType};
use viewseeker_dataset::{Column, Schema, Table};

use crate::CatalogError;

/// The format tag the manifest must carry.
pub const FORMAT: &str = "VSC1";

/// Manifest file name inside a dataset directory.
pub const MANIFEST: &str = "manifest.json";

const BLOCK_MAGIC: &[u8; 4] = b"VSB1";
const KIND_NUMERIC: u8 = 0;
const KIND_CATEGORICAL: u8 = 1;

/// Per-column entry of the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestColumn {
    /// Column name (schema order is manifest order).
    pub name: String,
    /// `"categorical"` or `"numeric"`.
    pub kind: String,
    /// `"dimension"` or `"measure"`.
    pub role: String,
    /// Block file name, relative to the dataset directory.
    pub block: String,
    /// Exact byte length of the block file.
    pub bytes: u64,
    /// FNV-1a 64 digest of the block file, lowercase hex.
    pub checksum: String,
}

/// The versioned dataset manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format tag; must equal [`FORMAT`].
    pub format: String,
    /// Row count shared by every column.
    pub rows: u64,
    /// Content digest of the whole table ([`table_checksum`]), hex.
    pub table_checksum: String,
    /// One entry per column, in schema order.
    pub columns: Vec<ManifestColumn>,
}

impl Manifest {
    /// Total bytes across all column blocks.
    #[must_use]
    pub fn block_bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.bytes).sum()
    }

    /// Rebuilds the schema the manifest describes.
    ///
    /// # Errors
    ///
    /// [`CatalogError::Corrupt`] for unknown kind/role tags; schema
    /// validation errors (duplicate names, categorical measures).
    pub fn schema(&self) -> Result<Schema, CatalogError> {
        let metas = self
            .columns
            .iter()
            .map(|c| {
                let column_type = match c.kind.as_str() {
                    "categorical" => ColumnType::Categorical,
                    "numeric" => ColumnType::Numeric,
                    other => {
                        return Err(CatalogError::Corrupt(format!(
                            "unknown column kind {other:?} in manifest"
                        )))
                    }
                };
                let role = match c.role.as_str() {
                    "dimension" => AttributeRole::Dimension,
                    "measure" => AttributeRole::Measure,
                    other => {
                        return Err(CatalogError::Corrupt(format!(
                            "unknown column role {other:?} in manifest"
                        )))
                    }
                };
                Ok(ColumnMeta {
                    name: c.name.clone(),
                    column_type,
                    role,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Schema::new(metas).map_err(|e| CatalogError::Corrupt(format!("manifest schema: {e}")))
    }
}

// ---------------------------------------------------------------------------
// FNV-1a 64
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 digest.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh digest state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current digest value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a 64 of one byte slice.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Formats a digest as 16 lowercase hex digits.
#[must_use]
pub fn hex(digest: u64) -> String {
    format!("{digest:016x}")
}

// ---------------------------------------------------------------------------
// Block encoding
// ---------------------------------------------------------------------------

fn encode_block(column: &Column) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + column.len() * 8);
    out.extend_from_slice(BLOCK_MAGIC);
    match column {
        Column::Numeric(values) => {
            out.push(KIND_NUMERIC);
            out.extend_from_slice(&(values.len() as u64).to_le_bytes());
            for v in values.as_slice() {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Column::Categorical { codes, dictionary } => {
            out.push(KIND_CATEGORICAL);
            out.extend_from_slice(&(codes.len() as u64).to_le_bytes());
            out.extend_from_slice(&(dictionary.len() as u32).to_le_bytes());
            for entry in dictionary {
                out.extend_from_slice(&(entry.len() as u32).to_le_bytes());
                out.extend_from_slice(entry.as_bytes());
            }
            for code in codes {
                out.extend_from_slice(&code.to_le_bytes());
            }
        }
    }
    out
}

/// A cursor over a block payload that fails loudly on short reads.
struct BlockReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    block: &'a str,
}

impl<'a> BlockReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CatalogError> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| self.bytes.get(self.pos..end));
        match slice {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => Err(CatalogError::Corrupt(format!(
                "block {} is truncated (needed {} bytes at offset {}, have {})",
                self.block,
                n,
                self.pos,
                self.bytes.len()
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8, CatalogError> {
        // vslint::allow(no-panic): take(1) just returned exactly one byte
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CatalogError> {
        // vslint::allow(no-panic): take(4) just returned exactly four bytes
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CatalogError> {
        // vslint::allow(no-panic): take(8) just returned exactly eight bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn finished(&self) -> Result<(), CatalogError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(CatalogError::Corrupt(format!(
                "block {} has {} trailing bytes",
                self.block,
                self.bytes.len() - self.pos
            )))
        }
    }
}

fn decode_block(name: &str, bytes: &[u8], expect: &ManifestColumn) -> Result<Column, CatalogError> {
    let mut r = BlockReader {
        bytes,
        pos: 0,
        block: name,
    };
    if r.take(4)? != BLOCK_MAGIC {
        return Err(CatalogError::Corrupt(format!("block {name} has bad magic")));
    }
    let kind = r.u8()?;
    let rows = usize::try_from(r.u64()?)
        .map_err(|_| CatalogError::Corrupt(format!("block {name} row count overflows")))?;
    let column = match (kind, expect.kind.as_str()) {
        (KIND_NUMERIC, "numeric") => {
            let mut values = Vec::with_capacity(rows);
            for _ in 0..rows {
                values.push(f64::from_bits(r.u64()?));
            }
            Column::numeric(values)
        }
        (KIND_CATEGORICAL, "categorical") => {
            let dict_len = r.u32()? as usize;
            let mut dictionary = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                let len = r.u32()? as usize;
                let raw = r.take(len)?;
                dictionary.push(
                    std::str::from_utf8(raw)
                        .map_err(|_| {
                            CatalogError::Corrupt(format!(
                                "block {name} has a non-UTF-8 dictionary entry"
                            ))
                        })?
                        .to_owned(),
                );
            }
            let mut codes = Vec::with_capacity(rows);
            for _ in 0..rows {
                codes.push(r.u32()?);
            }
            Column::categorical_from_codes(codes, dictionary)
                .map_err(|e| CatalogError::Corrupt(format!("block {name}: {e}")))?
        }
        _ => {
            return Err(CatalogError::Corrupt(format!(
                "block {name} kind {kind} does not match manifest kind {:?}",
                expect.kind
            )))
        }
    };
    r.finished()?;
    Ok(column)
}

// ---------------------------------------------------------------------------
// Table digests and sizing
// ---------------------------------------------------------------------------

/// Content digest of a table: FNV-1a 64 over the schema (names, types,
/// roles) and every column's VSC1 block encoding. Two tables digest equal
/// iff they are bit-identical (including NaN payloads and signed zeros).
#[must_use]
pub fn table_checksum(table: &Table) -> u64 {
    let mut h = Fnv64::new();
    for meta in table.schema().columns() {
        h.update(&(meta.name.len() as u32).to_le_bytes());
        h.update(meta.name.as_bytes());
        h.update(&[
            match meta.column_type {
                ColumnType::Categorical => 1,
                ColumnType::Numeric => 0,
            },
            match meta.role {
                AttributeRole::Dimension => 0,
                AttributeRole::Measure => 1,
            },
        ]);
    }
    for i in 0..table.schema().len() {
        h.update(&encode_block(table.column(i)));
    }
    h.finish()
}

/// Estimated resident bytes of a table's column data: 8 bytes per numeric
/// cell, 4 per categorical code, plus dictionary string bytes (with a small
/// per-entry overhead). Deterministic, so the cache's byte budget behaves
/// reproducibly across runs.
#[must_use]
pub fn table_resident_bytes(table: &Table) -> u64 {
    let mut total = 0u64;
    for i in 0..table.schema().len() {
        total += match table.column(i) {
            Column::Numeric(values) => values.len() as u64 * 8,
            Column::Categorical { codes, dictionary } => {
                codes.len() as u64 * 4 + dictionary.iter().map(|s| s.len() as u64 + 24).sum::<u64>()
            }
        };
    }
    total
}

// ---------------------------------------------------------------------------
// Save / load
// ---------------------------------------------------------------------------

fn block_file(index: usize) -> String {
    format!("col_{index:03}.blk")
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST)
}

/// Whether `dir` holds a committed VSC1 dataset (a manifest exists).
#[must_use]
pub fn exists(dir: &Path) -> bool {
    manifest_path(dir).is_file()
}

/// Writes `table` into `dir` as a VSC1 dataset, creating the directory.
/// Blocks are written first and the manifest last, so a directory with a
/// manifest is always complete. Returns the manifest that was written.
///
/// # Errors
///
/// [`CatalogError::Io`] on filesystem failure.
pub fn save(dir: &Path, table: &Table) -> Result<Manifest, CatalogError> {
    std::fs::create_dir_all(dir)?;
    let mut columns = Vec::with_capacity(table.schema().len());
    for (i, meta) in table.schema().columns().iter().enumerate() {
        let bytes = encode_block(table.column(i));
        let block = block_file(i);
        let mut file = std::fs::File::create(dir.join(&block))?;
        file.write_all(&bytes)?;
        file.flush()?;
        columns.push(ManifestColumn {
            name: meta.name.clone(),
            kind: match meta.column_type {
                ColumnType::Categorical => "categorical".to_owned(),
                ColumnType::Numeric => "numeric".to_owned(),
            },
            role: match meta.role {
                AttributeRole::Dimension => "dimension".to_owned(),
                AttributeRole::Measure => "measure".to_owned(),
            },
            block,
            bytes: bytes.len() as u64,
            checksum: hex(fnv64(&bytes)),
        });
    }
    let manifest = Manifest {
        format: FORMAT.to_owned(),
        rows: table.row_count() as u64,
        table_checksum: hex(table_checksum(table)),
        columns,
    };
    let json = serde_json::to_string_pretty(&manifest)
        .map_err(|e| CatalogError::Corrupt(format!("manifest serialization: {e}")))?;
    std::fs::write(manifest_path(dir), json)?;
    Ok(manifest)
}

/// Reads and validates the manifest of the dataset in `dir` without
/// touching any column block — enough for listings (schema, row count,
/// on-disk bytes).
///
/// # Errors
///
/// [`CatalogError::Io`] when the manifest is missing or unreadable;
/// [`CatalogError::Corrupt`] for unparseable JSON or a format tag other
/// than [`FORMAT`].
pub fn peek(dir: &Path) -> Result<Manifest, CatalogError> {
    let path = manifest_path(dir);
    let json = std::fs::read_to_string(&path)?;
    let manifest: Manifest = serde_json::from_str(&json)
        .map_err(|e| CatalogError::Corrupt(format!("manifest {path:?}: {e}")))?;
    if manifest.format != FORMAT {
        return Err(CatalogError::Corrupt(format!(
            "unsupported format {:?} (this build reads {FORMAT:?})",
            manifest.format
        )));
    }
    Ok(manifest)
}

/// Loads the dataset in `dir`, verifying every block's length and digest
/// against the manifest before decoding.
///
/// # Errors
///
/// [`CatalogError::Io`] for missing files, [`CatalogError::Corrupt`] for
/// any validation failure (digest mismatch, truncation, trailing bytes,
/// row-count mismatch, schema mismatch).
pub fn load(dir: &Path) -> Result<Table, CatalogError> {
    let manifest = peek(dir)?;
    let schema = manifest.schema()?;
    let mut columns = Vec::with_capacity(manifest.columns.len());
    for entry in &manifest.columns {
        let path = dir.join(&entry.block);
        let bytes = std::fs::read(&path)?;
        if bytes.len() as u64 != entry.bytes {
            return Err(CatalogError::Corrupt(format!(
                "block {} is {} bytes, manifest says {}",
                entry.block,
                bytes.len(),
                entry.bytes
            )));
        }
        let digest = hex(fnv64(&bytes));
        if digest != entry.checksum {
            return Err(CatalogError::Corrupt(format!(
                "block {} digest {digest} does not match manifest {}",
                entry.block, entry.checksum
            )));
        }
        let column = decode_block(&entry.block, &bytes, entry)?;
        if column.len() as u64 != manifest.rows {
            return Err(CatalogError::Corrupt(format!(
                "block {} has {} rows, manifest says {}",
                entry.block,
                column.len(),
                manifest.rows
            )));
        }
        columns.push(column);
    }
    let table = Table::new(schema, columns)
        .map_err(|e| CatalogError::Corrupt(format!("table assembly: {e}")))?;
    let digest = hex(table_checksum(&table));
    if digest != manifest.table_checksum {
        return Err(CatalogError::Corrupt(format!(
            "table digest {digest} does not match manifest {}",
            manifest.table_checksum
        )));
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_table() -> Table {
        let schema = Schema::builder()
            .categorical_dimension("city")
            .numeric_dimension("n_age")
            .measure("m_sales")
            .build()
            .unwrap();
        Table::new(
            schema,
            vec![
                Column::categorical_from_values(&["NY", "LA", "NY", "SF"]),
                Column::numeric(vec![21.0, 34.5, -0.0, f64::NAN]),
                Column::numeric(vec![1.5, -2.0, 1e300, f64::INFINITY]),
            ],
        )
        .unwrap()
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vsc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn bits(column: &Column) -> Vec<u64> {
        column
            .values()
            .map(|vs| vs.iter().map(|v| v.to_bits()).collect())
            .unwrap_or_default()
    }

    #[test]
    fn save_load_round_trips_bit_identically() {
        let dir = tmp("roundtrip");
        let table = demo_table();
        let manifest = save(&dir, &table).unwrap();
        assert_eq!(manifest.rows, 4);
        assert_eq!(manifest.columns.len(), 3);
        assert!(exists(&dir));

        let back = load(&dir).unwrap();
        assert_eq!(back.schema(), table.schema());
        assert_eq!(back.column(0), table.column(0));
        // NaN and -0.0 survive exactly (PartialEq would miss NaN).
        assert_eq!(bits(back.column(1)), bits(table.column(1)));
        assert_eq!(bits(back.column(2)), bits(table.column(2)));
        assert_eq!(table_checksum(&back), table_checksum(&table));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn peek_reads_without_blocks() {
        let dir = tmp("peek");
        save(&dir, &demo_table()).unwrap();
        // Remove a block: peek still works, load fails.
        std::fs::remove_file(dir.join("col_001.blk")).unwrap();
        let manifest = peek(&dir).unwrap();
        assert_eq!(manifest.rows, 4);
        assert!(manifest.block_bytes() > 0);
        assert!(matches!(load(&dir), Err(CatalogError::Io(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_rejected() {
        let dir = tmp("flip");
        save(&dir, &demo_table()).unwrap();
        let path = dir.join("col_002.blk");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(load(&dir), Err(CatalogError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_is_rejected() {
        let dir = tmp("trunc");
        save(&dir, &demo_table()).unwrap();
        let path = dir.join("col_000.blk");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(load(&dir), Err(CatalogError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_manifest_is_rejected() {
        let dir = tmp("manifest");
        save(&dir, &demo_table()).unwrap();
        std::fs::write(dir.join(MANIFEST), "{not json").unwrap();
        assert!(matches!(peek(&dir), Err(CatalogError::Corrupt(_))));
        let good = serde_json::to_string(&Manifest {
            format: "VSC9".into(),
            rows: 0,
            table_checksum: hex(0),
            columns: vec![],
        })
        .unwrap();
        std::fs::write(dir.join(MANIFEST), good).unwrap();
        assert!(matches!(peek(&dir), Err(CatalogError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_distinguishes_content_and_schema() {
        let table = demo_table();
        let schema = table.schema().clone();
        let other = Table::new(
            schema,
            vec![
                Column::categorical_from_values(&["NY", "LA", "NY", "LA"]),
                Column::numeric(vec![21.0, 34.5, -0.0, f64::NAN]),
                Column::numeric(vec![1.5, -2.0, 1e300, f64::INFINITY]),
            ],
        )
        .unwrap();
        assert_ne!(table_checksum(&table), table_checksum(&other));
        // Same columns under different roles digest differently.
        let alt_schema = Schema::builder()
            .categorical_dimension("city")
            .measure("n_age")
            .measure("m_sales")
            .build()
            .unwrap();
        let relabeled = Table::new(
            alt_schema,
            (0..3).map(|i| table.column(i).clone()).collect(),
        )
        .unwrap();
        assert_ne!(table_checksum(&table), table_checksum(&relabeled));
    }

    #[test]
    fn resident_bytes_scale_with_rows() {
        let small = demo_table();
        let bytes = table_resident_bytes(&small);
        // 4 codes ×4 + 3 dict entries (2 bytes + 24 overhead each)
        // + 2 numeric columns × 4 rows × 8.
        assert_eq!(bytes, 16 + 3 * 26 + 64);
    }
}
