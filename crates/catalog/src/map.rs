//! Read-only file memory mappings for zero-copy VSC2 loads.
//!
//! This is the catalog's **only** `unsafe` module (the crate root is
//! `#![deny(unsafe_code)]`; this module opts back in with a scoped
//! `allow`, and the vslint `forbid-unsafe` rule statically rejects an
//! `unsafe` token anywhere else in the crate — the same confinement
//! contract as `net::sys`). The workspace vendors no `libc`/`memmap`, so
//! mapping goes straight to the platform's `mmap`/`munmap`, wrapped so
//! that:
//!
//! * a [`Mapping`] is only ever created from a file the caller opened,
//!   `PROT_READ` + `MAP_PRIVATE`, length fixed at map time — the kernel
//!   never writes through it and the process never writes to it;
//! * the byte slice handed out borrows the mapping, so the pages outlive
//!   every reader (`Arc<Mapping>` keeps them alive across `Table`
//!   columns);
//! * `munmap` runs exactly once, in `Drop`;
//! * the `&[f64]` reinterpretation ([`MappedF64`]) is only constructed
//!   through a checked constructor that proves 8-byte alignment and
//!   in-bounds length, and only on little-endian targets (the on-disk
//!   payload is little-endian bit patterns — on big-endian targets the
//!   loader falls back to a decoding copy and this fast path is never
//!   taken).
//!
//! On non-Linux platforms [`Mapping::open`] falls back to reading the
//! file into an owned buffer: same API, same digests, no page sharing —
//! `is_mapped` reports which world the bytes live in so the cache can
//! charge them correctly.

#![allow(unsafe_code)]

use std::path::Path;
use std::sync::Arc;

use viewseeker_dataset::NumericStorage;

use crate::CatalogError;

/// A read-only view of one file: memory-mapped on Linux, an owned buffer
/// elsewhere.
#[derive(Debug)]
pub struct Mapping {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    #[cfg(target_os = "linux")]
    Mapped(linux::Map),
    Owned(Vec<u8>),
}

impl Mapping {
    /// Maps `path` read-only. Zero-length files produce an empty owned
    /// buffer (POSIX forbids zero-length mappings).
    ///
    /// # Errors
    ///
    /// [`CatalogError::Io`] for open/stat/map failures.
    pub fn open(path: &Path) -> Result<Self, CatalogError> {
        #[cfg(target_os = "linux")]
        {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            let len = usize::try_from(len)
                .map_err(|_| CatalogError::Corrupt(format!("file {path:?} too large to map")))?;
            if len == 0 {
                return Ok(Mapping {
                    inner: Inner::Owned(Vec::new()),
                });
            }
            let map = linux::Map::new(&file, len)?;
            Ok(Mapping {
                inner: Inner::Mapped(map),
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Ok(Mapping {
                inner: Inner::Owned(std::fs::read(path)?),
            })
        }
    }

    /// The mapped (or read) bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(target_os = "linux")]
            Inner::Mapped(map) => map.bytes(),
            Inner::Owned(bytes) => bytes,
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the bytes live in a real file mapping (false on the owned
    /// fallback). Mapped bytes are not heap-resident, so the catalog's
    /// byte-budget cache charges them as mapped rather than owned.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(target_os = "linux")]
            Inner::Mapped(_) => true,
            Inner::Owned(_) => false,
        }
    }
}

/// A `&[f64]` view of an aligned byte range of a [`Mapping`] — the
/// zero-copy backing storage for raw-encoded VSC2 numeric columns. The
/// `Arc<Mapping>` keeps the pages alive for as long as any column (or
/// clone of it) exists.
#[derive(Debug)]
pub struct MappedF64 {
    map: Arc<Mapping>,
    offset: usize,
    values: usize,
}

impl MappedF64 {
    /// Builds the view over `values` `f64`s starting at byte `offset`.
    ///
    /// Only available on little-endian targets: the payload bytes are
    /// little-endian IEEE-754 bit patterns, which is the in-memory layout
    /// there and only there.
    ///
    /// # Errors
    ///
    /// [`CatalogError::Corrupt`] when the range is out of bounds or not
    /// 8-byte aligned (both alignment of the mapping base — page-aligned
    /// by the kernel, checked anyway — and of the offset).
    #[cfg(target_endian = "little")]
    pub fn new(map: Arc<Mapping>, offset: usize, values: usize) -> Result<Self, CatalogError> {
        let bytes = values
            .checked_mul(8)
            .ok_or_else(|| CatalogError::Corrupt("mapped column length overflows".into()))?;
        let end = offset
            .checked_add(bytes)
            .ok_or_else(|| CatalogError::Corrupt("mapped column range overflows".into()))?;
        if end > map.len() {
            return Err(CatalogError::Corrupt(format!(
                "mapped column range {offset}..{end} exceeds file of {} bytes",
                map.len()
            )));
        }
        let base = map.bytes().as_ptr() as usize;
        if !(base + offset).is_multiple_of(std::mem::align_of::<f64>()) {
            return Err(CatalogError::Corrupt(format!(
                "mapped column at byte offset {offset} is not 8-byte aligned"
            )));
        }
        Ok(MappedF64 {
            map,
            offset,
            values,
        })
    }
}

#[cfg(target_endian = "little")]
impl NumericStorage for MappedF64 {
    fn as_f64s(&self) -> &[f64] {
        // The constructor proved this range in-bounds; `get` keeps the
        // method total (an impossible miss yields an empty slice, and the
        // value count below is re-derived from the slice actually held).
        let bytes = self
            .map
            .bytes()
            .get(self.offset..self.offset + self.values * 8)
            .unwrap_or(&[]);
        // SAFETY: the constructor proved the range is in-bounds and 8-byte
        // aligned; every f64 bit pattern is a valid value (NaN payloads
        // included); the mapping is immutable (PROT_READ, MAP_PRIVATE) and
        // outlives `self` via the owned Arc; on this (little-endian)
        // target the on-disk byte order equals the in-memory one.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f64>(), bytes.len() / 8) }
    }

    fn owned_bytes(&self) -> usize {
        // The pages belong to the file mapping, not the heap.
        0
    }
}

#[cfg(target_os = "linux")]
mod linux {
    use std::io;
    use std::os::fd::AsRawFd;
    use std::os::raw::{c_int, c_void};

    // Stable Linux userspace ABI constants (asm-generic).
    const PROT_READ: c_int = 0x1;
    const MAP_PRIVATE: c_int = 0x02;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }

    /// One live `mmap` region; unmapped exactly once on drop.
    #[derive(Debug)]
    pub struct Map {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the region is immutable (PROT_READ, MAP_PRIVATE) for its
    // whole lifetime, so shared references from any thread are sound, and
    // the raw pointer is only ever used to reconstruct byte slices.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        /// Maps `len` bytes of `file` read-only from offset 0.
        pub fn new(file: &std::fs::File, len: usize) -> io::Result<Map> {
            // SAFETY: fd is a live file descriptor borrowed from `file`
            // for the duration of the call; addr = null lets the kernel
            // pick a page-aligned address; the returned pointer is only
            // accepted when it is not MAP_FAILED.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Map {
                ptr: ptr.cast_const().cast::<u8>(),
                len,
            })
        }

        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr/len describe the live mapping created in `new`;
            // the mapping stays valid until Drop, which is tied to &self's
            // lifetime by borrow rules.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // SAFETY: ptr/len came from a successful mmap and munmap runs
            // exactly once (Drop). Failure is ignored: the region is
            // read-only and private, so leaking it on a bogus error is
            // harmless.
            unsafe {
                munmap(self.ptr.cast_mut().cast::<c_void>(), self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("vsmap-{tag}-{}", std::process::id()))
    }

    #[test]
    fn maps_file_bytes_exactly() {
        let path = tmp("bytes");
        std::fs::write(&path, b"hello mapping").unwrap();
        let map = Mapping::open(&path).unwrap();
        assert_eq!(map.bytes(), b"hello mapping");
        assert_eq!(map.len(), 13);
        #[cfg(target_os = "linux")]
        assert!(map.is_mapped());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_is_an_empty_view() {
        let path = tmp("empty");
        std::fs::write(&path, b"").unwrap();
        let map = Mapping::open(&path).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped(), "zero-length files use the owned fallback");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(matches!(
            Mapping::open(&tmp("missing-nope")),
            Err(CatalogError::Io(_))
        ));
    }

    #[cfg(target_endian = "little")]
    #[test]
    fn mapped_f64_round_trips_bit_patterns() {
        let path = tmp("f64");
        let values = [1.5f64, -0.0, f64::NAN, f64::INFINITY, 1e300];
        let mut bytes = Vec::new();
        for v in values {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let map = Arc::new(Mapping::open(&path).unwrap());
        let view = MappedF64::new(map, 0, values.len()).unwrap();
        let got = view.as_f64s();
        for (a, b) in values.iter().zip(got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(view.owned_bytes(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(target_endian = "little")]
    #[test]
    fn misaligned_or_oversized_views_are_rejected() {
        let path = tmp("bad");
        std::fs::write(&path, vec![0u8; 64]).unwrap();
        let map = Arc::new(Mapping::open(&path).unwrap());
        assert!(
            MappedF64::new(Arc::clone(&map), 4, 2).is_err(),
            "misaligned"
        );
        assert!(MappedF64::new(Arc::clone(&map), 0, 9).is_err(), "past end");
        assert!(MappedF64::new(map, 0, 8).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
